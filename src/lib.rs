#![warn(missing_docs)]

//! # resource-discovery
//!
//! A Rust reproduction of *"Distributed Resource Discovery in
//! Sub-Logarithmic Time"* (Bernhard Haeupler & Dahlia Malkhi, ACM PODC
//! 2015): the resource-discovery problem, a reconstructed
//! cluster-merging algorithm with sub-logarithmic round complexity on
//! low-diameter knowledge graphs, every classic baseline, a
//! deterministic synchronous network simulator, and a benchmark harness
//! that regenerates the full evaluation.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`graphs`] (`rd-graphs`) — knowledge-graph topologies and analysis,
//! * [`sim`] (`rd-sim`) — the deterministic round-based simulator,
//! * [`core`] (`rd-core`) — the discovery algorithms, verification, and
//!   the one-call [`run`] entry point,
//! * [`analysis`] (`rd-analysis`) — statistics, scaling-law fitting, and
//!   the sweep driver.
//!
//! # Quickstart
//!
//! ```
//! use resource_discovery::prelude::*;
//!
//! // 256 machines, each initially knowing 3 random peers.
//! let config = RunConfig::new(Topology::KOut { k: 3 }, 256, 42);
//! let report = run(AlgorithmKind::Hm(Default::default()), &config);
//!
//! assert!(report.completed, "every machine discovered every other");
//! assert!(report.sound);
//! println!(
//!     "discovered {} machines in {} rounds with {} messages",
//!     report.n, report.rounds, report.messages
//! );
//! ```
//!
//! See `README.md` for the architecture tour, `DESIGN.md` for the
//! reconstruction notes, and `EXPERIMENTS.md` for the measured
//! evaluation. Runnable scenarios live in `examples/`.

pub use rd_analysis as analysis;
pub use rd_core as core;
pub use rd_event as event;
pub use rd_exec as exec;
pub use rd_graphs as graphs;
pub use rd_obs as obs;
pub use rd_registry as registry;
pub use rd_scenarios as scenarios;
pub use rd_sim as sim;

pub use rd_core::runner::run;

/// The names most programs need, in one import.
pub mod prelude {
    pub use rd_analysis::{summarize, Table};
    pub use rd_core::algorithms::hm::{HmConfig, HmDiscovery, MergeRule};
    pub use rd_core::gossip::{run_gossip, GossipStrategy};
    pub use rd_core::runner::{
        run, AlgorithmKind, Completion, EngineKind, ObsSpec, RunConfig, RunReport, RunVerdict,
    };
    pub use rd_core::{problem, verify, DiscoveryAlgorithm, KnowledgeSet, KnowledgeView};
    pub use rd_event::{EventEngine, LatencyModel};
    pub use rd_exec::ShardedEngine;
    pub use rd_graphs::{connectivity, metrics, DiGraph, Topology};
    pub use rd_obs::{ChromeTraceSink, JsonlArchiveSink, PrometheusSink, Recorder, RunMeta};
    pub use rd_sim::{
        ChurnSpec, DropCause, DropTally, Engine, FaultPlan, LinkLossSpec, NodeId, RetryPolicy,
        RoundEngine, SuppressionSpec,
    };
}
