//! Executes the declarative fault-campaign matrix and gates each run.
//!
//! ```text
//! scenario_runner --all [--log2-n K] [--seed S] [--obs DIR]
//!                 [--bench PATH] [--tighten F]
//!                 [--live[=ADDR]] [--alerts-fatal] [--alert-stall-window R]
//! scenario_runner <name>... [same flags]
//! scenario_runner --list
//! ```
//!
//! The pass/fail report on stdout is deterministic for a given
//! `(scenarios, n, seed)` — wall-clock timing goes only to the
//! `--bench` summary (the `BENCH_faults.json` side of the `rd-inspect
//! bench-diff` gate) and to stderr. Exits nonzero when any gate fails.
//!
//! `--live` serves each run's `/metrics`, `/status`, and `/healthz` on
//! a loopback listener and arms the default online monitors;
//! `--alert-stall-window R` tightens the stall monitor to `R` rounds,
//! and `--alerts-fatal` turns any fired alert into a nonzero exit
//! (the alerts also land as schema-v4 `alert` records in the `--obs`
//! archive either way).

use rd_core::runner::{AlertLog, AlertRule, LiveSpec};
use rd_scenarios::{library, render_bench, render_report, select, Scenario, ScenarioOutcome};
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    all: bool,
    list: bool,
    names: Vec<String>,
    log2_n: u32,
    seed: u64,
    obs: Option<PathBuf>,
    bench: Option<PathBuf>,
    tighten: Option<f64>,
    /// `Some(None)` = `--live` on an ephemeral port, `Some(Some(a))` =
    /// `--live=a`.
    live: Option<Option<String>>,
    alerts_fatal: bool,
    alert_stall_window: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        list: false,
        names: Vec::new(),
        log2_n: 10,
        seed: 42,
        obs: None,
        bench: None,
        tighten: None,
        live: None,
        alerts_fatal: false,
        alert_stall_window: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--all" => opts.all = true,
            "--list" => opts.list = true,
            "--log2-n" => {
                opts.log2_n = value("--log2-n")?
                    .parse()
                    .map_err(|e| format!("--log2-n: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--obs" => opts.obs = Some(PathBuf::from(value("--obs")?)),
            "--bench" => opts.bench = Some(PathBuf::from(value("--bench")?)),
            "--live" => opts.live = Some(None),
            "--alerts-fatal" => opts.alerts_fatal = true,
            "--alert-stall-window" => {
                let window: u64 = value("--alert-stall-window")?
                    .parse()
                    .map_err(|e| format!("--alert-stall-window: {e}"))?;
                if window == 0 {
                    return Err("--alert-stall-window needs a positive round count".into());
                }
                opts.alert_stall_window = Some(window);
            }
            "--tighten" => {
                let f: f64 = value("--tighten")?
                    .parse()
                    .map_err(|e| format!("--tighten: {e}"))?;
                if f <= 0.0 {
                    return Err("--tighten needs a positive factor".into());
                }
                opts.tighten = Some(f);
            }
            "--help" | "-h" => {
                println!(
                    "usage: scenario_runner (--all | --list | <name>...) \
                     [--log2-n K] [--seed S] [--obs DIR] [--bench PATH] [--tighten F] \
                     [--live[=ADDR]] [--alerts-fatal] [--alert-stall-window R]"
                );
                std::process::exit(0);
            }
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            other if other.starts_with("--live=") => {
                opts.live = Some(Some(other["--live=".len()..].to_string()));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !opts.list && !opts.all && opts.names.is_empty() {
        return Err("pick scenarios by name, or --all, or --list".into());
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("scenario_runner: {err}");
            std::process::exit(2);
        }
    };
    let n = 1usize << opts.log2_n;

    if opts.list {
        for s in library(n, opts.seed) {
            println!("{:<24} {}", s.name, s.summary);
        }
        return;
    }

    let mut scenarios: Vec<Scenario> = if opts.all {
        library(n, opts.seed)
    } else {
        match select(n, opts.seed, &opts.names) {
            Ok(scenarios) => scenarios,
            Err(err) => {
                eprintln!("scenario_runner: {err}");
                std::process::exit(2);
            }
        }
    };
    if let Some(factor) = opts.tighten {
        for s in &mut scenarios {
            s.thresholds.tighten(factor);
        }
    }
    if let Some(dir) = &opts.obs {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("scenario_runner: cannot create {}: {err}", dir.display());
            std::process::exit(2);
        }
    }

    let mut outcomes: Vec<ScenarioOutcome> = Vec::new();
    let mut walls: Vec<f64> = Vec::new();
    let mut alerts_fired: usize = 0;
    for scenario in &scenarios {
        for kind in &scenario.algorithms {
            let started = Instant::now();
            let mut config = scenario.run_config(opts.obs.as_deref(), kind);
            // `--live` gets a fresh alert log per run so the fatal gate
            // and the stderr drain below attribute alerts to the run
            // that fired them.
            let alert_log = opts.live.as_ref().map(|addr| {
                let log = AlertLog::new();
                let mut rules = AlertRule::defaults();
                if let Some(window) = opts.alert_stall_window {
                    for rule in &mut rules {
                        if let AlertRule::Stall { window: w } = rule {
                            *w = window;
                        }
                    }
                }
                let mut live = LiveSpec::new().with_rules(rules).with_log(log.clone());
                if let Some(addr) = addr {
                    live = live.with_addr(addr);
                }
                config.obs = Some(config.obs.take().unwrap_or_default().with_live(live));
                log
            });
            let report = rd_scenarios::gate(
                scenario,
                resource_run(*kind, &config),
                opts.obs
                    .as_ref()
                    .map(|dir| dir.join(format!("{}-{}.jsonl", scenario.name, kind.name()))),
            );
            let wall = started.elapsed().as_secs_f64();
            eprintln!(
                "timing: {}/{} {:.3}s",
                scenario.name, report.algorithm, wall
            );
            if let Some(log) = alert_log {
                for alert in log.snapshot() {
                    alerts_fired += 1;
                    eprintln!(
                        "alert: {}/{} {} at round {}: {}",
                        scenario.name, report.algorithm, alert.rule, alert.round, alert.message
                    );
                }
            }
            outcomes.push(report);
            walls.push(wall);
        }
    }

    print!("{}", render_report(&outcomes));

    if let Some(path) = &opts.bench {
        let text = render_bench(&outcomes, &walls);
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("scenario_runner: cannot write {}: {err}", path.display());
            std::process::exit(2);
        }
        eprintln!("wrote {}", path.display());
    }

    if opts.alerts_fatal && alerts_fired > 0 {
        eprintln!("scenario_runner: --alerts-fatal: {alerts_fired} alert(s) fired");
        std::process::exit(1);
    }
    if outcomes.iter().any(|o| !o.passed()) {
        std::process::exit(1);
    }
}

/// Runs one algorithm on one config (thin indirection so the timing
/// wraps exactly the run, not the gating).
fn resource_run(
    kind: rd_core::runner::AlgorithmKind,
    config: &rd_core::runner::RunConfig,
) -> rd_core::runner::RunReport {
    rd_core::runner::run(kind, config)
}
