//! Minimal JSON support: a value model, a recursive-descent parser,
//! and string/number formatting helpers.
//!
//! The offline workspace has no serde, so the archive writer and
//! `rd-inspect` share this hand-rolled implementation. It covers the
//! full JSON grammar the archives use (objects, arrays, strings with
//! escapes, numbers, booleans, null); objects preserve insertion order
//! so round-tripping an archive line is stable.

use std::fmt::Write as _;

/// A parsed JSON value. Objects keep key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar: find its byte length
                    // from the leading byte.
                    let start = self.pos;
                    let len = match self.bytes[start] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number: integral values print without a
/// fractional part, everything else uses Rust's shortest-roundtrip
/// `Display` (which never emits exponent notation).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_an_archive_like_line() {
        let line = r#"{"type":"round","round":3,"wall_ns":1234,"knowledge_delta":null,"ok":true,"name":"a\"b\\c","vals":[1,2.5,-3]}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("round"));
        assert_eq!(v.get("round").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("knowledge_delta"), Some(&Json::Null));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c"));
        let vals = v.get("vals").unwrap().as_arr().unwrap();
        assert_eq!(vals[2].as_f64(), Some(-3.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_and_parse_are_inverse() {
        for s in ["plain", "with \"quotes\"", "tab\tnewline\n", "unicode ü λ"] {
            let lit = escape(s);
            let v = Json::parse(&lit).unwrap();
            assert_eq!(v.as_str(), Some(s));
        }
    }

    #[test]
    fn fmt_f64_prints_integers_plainly() {
        assert_eq!(fmt_f64(42.0), "42");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
