//! The [`Recorder`]: the one object an engine talks to when
//! observability is enabled.
//!
//! Engines hold an `Option<Recorder>`; when it is `None` no clock is
//! ever read and no branch beyond the `Option` check runs — that is
//! the zero-cost-when-disabled contract. When present, the recorder
//! accumulates spans, per-round rows, and registry metrics entirely
//! *outside* deterministic engine state: nothing an engine computes
//! ever depends on a recorder value, so enabling observability cannot
//! perturb a run (pinned by `tests/prop_engine_equivalence.rs`).
//!
//! At run end the driver calls [`Recorder::finish`], which assembles
//! the [`ObsReport`] — distributions, phase timings, worker
//! utilization, hot nodes — and hands it to every attached
//! [`ObsSink`](crate::ObsSink) for export.

use crate::hist::Histogram;
use crate::monitor::Alert;
use crate::prof::{ProfileReport, Profiler};
use crate::registry::MetricsRegistry;
use crate::sink::ObsSink;
use crate::span::{Phase, SpanEvent};
use crate::trace::CausalTrace;
use std::time::Instant;

/// Identity of a run, echoed into every exported artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    pub algorithm: String,
    pub topology: String,
    pub n: usize,
    pub seed: u64,
    /// `"sequential"`, `"sharded:<workers>"`, or `"event:<model>"`.
    pub engine: String,
    pub workers: usize,
    /// The latency model's spec string when the run used the
    /// discrete-event engine (`None` for the round engines, which keeps
    /// their archives byte-identical to what earlier builds wrote).
    pub latency_model: Option<String>,
}

/// One round's observed counters plus its wall-clock cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundObs {
    pub round: u64,
    pub wall_ns: u64,
    pub messages: u64,
    pub pointers: u64,
    pub dropped_coin: u64,
    pub dropped_crash: u64,
    pub dropped_partition: u64,
    pub dropped_link: u64,
    pub dropped_suppression: u64,
    pub retransmissions: u64,
    /// New identifiers learned across all nodes this round; filled in
    /// at [`Recorder::finish`] from the driver's knowledge series
    /// (engines cannot see algorithm knowledge).
    pub knowledge_delta: Option<u64>,
}

/// The run verdict and totals as the driver saw them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOutcomeObs {
    pub verdict: String,
    pub completed: bool,
    pub sound: bool,
    pub rounds: u64,
    pub messages: u64,
    pub pointers: u64,
    pub trace_events: u64,
    pub trace_overflow: u64,
    /// The last round at which total knowledge still grew, when the
    /// driver's watchdog tracked it (surfaced for stalled runs).
    pub last_progress: Option<u64>,
}

/// Aggregate timing of one phase across the whole run.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSummary {
    pub phase: Phase,
    pub count: u64,
    pub total_ns: u64,
    pub hist: Histogram,
}

/// One worker's total observed busy time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerSummary {
    pub worker: u32,
    pub spans: u64,
    pub busy_ns: u64,
}

/// Everything the recorder learned about one run, ready for export.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    pub meta: RunMeta,
    pub outcome: RunOutcomeObs,
    pub rounds: Vec<RoundObs>,
    pub registry: MetricsRegistry,
    pub phases: Vec<PhaseSummary>,
    pub workers: Vec<WorkerSummary>,
    /// Top senders/receivers as `(node id, message count)`, hottest
    /// first, ties broken toward lower ids.
    pub hot_senders: Vec<(u32, u64)>,
    pub hot_receivers: Vec<(u32, u64)>,
    pub spans: Vec<SpanEvent>,
    pub span_overflow: u64,
    /// The knowledge-provenance DAG, when causal tracing was enabled
    /// (exported as the schema-v2 archive section).
    pub causal: Option<CausalTrace>,
    /// Cost attribution, when profiling was enabled (exported as the
    /// schema-v3 archive section).
    pub profile: Option<ProfileReport>,
    /// Alerts the online monitor fired, in firing order (exported as
    /// schema-v4 `alert` records; empty for alert-free runs, which
    /// keeps their archives byte-identical to earlier schemas).
    pub alerts: Vec<Alert>,
}

/// How many hot senders/receivers the report keeps.
pub const HOT_NODES_K: usize = 8;

/// Spans pre-allocated at construction (≈ 16 phases × 1k rounds,
/// 512 KiB) so span recording is allocation-free for typical runs.
const SPAN_PREALLOC: usize = 1 << 14;

/// Round rows pre-allocated at construction.
const ROUND_PREALLOC: usize = 1 << 10;

/// Collects telemetry for one run. See the module docs for the
/// determinism contract.
pub struct Recorder {
    epoch: Instant,
    meta: RunMeta,
    spans: Vec<SpanEvent>,
    span_cap: usize,
    span_overflow: u64,
    round_start: Option<Instant>,
    rounds: Vec<RoundObs>,
    registry: MetricsRegistry,
    sinks: Vec<Box<dyn ObsSink>>,
    causal: Option<CausalTrace>,
    prof: Option<Profiler>,
    /// Per-worker parallel-phase busy time over the *current* round —
    /// the live bus's shard-utilization tap, reset in
    /// [`begin_round`](Self::begin_round) and accumulated as spans
    /// arrive (O(1) per span; no end-of-round scan).
    round_busy: Vec<u64>,
    last_round_wall_ns: u64,
    alerts: Vec<Alert>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("meta", &self.meta)
            .field("spans", &self.spans.len())
            .field("rounds", &self.rounds.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Recorder {
    /// A recorder with no sinks: telemetry is still aggregated and the
    /// [`ObsReport`] still comes back from [`finish`](Self::finish),
    /// there is just no file export. This is the configuration the
    /// overhead benchmarks measure.
    pub fn new(meta: RunMeta) -> Self {
        let lanes = meta.workers.max(1);
        Recorder {
            epoch: Instant::now(),
            meta,
            // Pre-sized so the steady-state hot path (a handful of
            // spans plus one round row per round) never reallocates
            // mid-run: buffer growth would be charged to whichever
            // round happens to cross a power of two, skewing both the
            // per-phase profile and the measured obs overhead.
            spans: Vec::with_capacity(SPAN_PREALLOC),
            span_cap: 1 << 20,
            span_overflow: 0,
            round_start: None,
            rounds: Vec::with_capacity(ROUND_PREALLOC),
            registry: MetricsRegistry::new(),
            sinks: Vec::new(),
            causal: None,
            prof: None,
            round_busy: vec![0; lanes],
            last_round_wall_ns: 0,
            alerts: Vec::new(),
        }
    }

    /// Enables cost-attribution profiling. Purely additive: a profiled
    /// run is bit-identical to an un-profiled one (wall-clock still
    /// only flows *into* the recorder), but the finished report gains
    /// a [`ProfileReport`](crate::ProfileReport) and archives move to
    /// schema v3. Chainable.
    pub fn with_profiling(mut self) -> Self {
        self.prof = Some(Profiler::new());
        self
    }

    /// Whether profiling is enabled — engines and drivers gate their
    /// profiling-only work (extra spans, memory sampling) on this so
    /// un-profiled runs pay nothing.
    pub fn profiling_enabled(&self) -> bool {
        self.prof.is_some()
    }

    /// Registers one message kind's byte costs with the profiler
    /// (no-op when profiling is off). Engines call this once at
    /// construction; sizes are compile-time facts.
    pub fn profile_msg_kind(&mut self, kind: &str, env_bytes: u64, ptr_bytes: u64) {
        if let Some(prof) = &mut self.prof {
            prof.add_msg_kind(kind, env_bytes, ptr_bytes);
        }
    }

    /// Records one per-round memory sample (no-op when profiling is
    /// off). Driver-side: engines cannot see algorithm knowledge.
    pub fn profile_memory(&mut self, round: u64, knowledge_bytes: u64) {
        if let Some(prof) = &mut self.prof {
            prof.add_mem_sample(round, knowledge_bytes);
        }
    }

    /// Records end-of-run buffer-pool high-water marks (no-op when
    /// profiling is off).
    pub fn profile_pool_high_water(&mut self, pools: &[(&str, u64)]) {
        if let Some(prof) = &mut self.prof {
            prof.set_pool_high_water(pools);
        }
    }

    /// Hands the engine's finished causal trace to the recorder so the
    /// archive sink can export it as the schema-v2 provenance section.
    /// Called by the driver after the run, never during it — the trace
    /// is engine-collected but strictly observational.
    pub fn attach_causal(&mut self, causal: CausalTrace) {
        self.causal = Some(causal);
    }

    /// Attaches an export sink (archives, traces, exposition — any
    /// [`ObsSink`]). Chainable.
    pub fn with_sink(mut self, sink: Box<dyn ObsSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Caps the retained span buffer (default 2²⁰ spans); further
    /// spans are counted in `span_overflow` but not stored.
    pub fn with_span_capacity(mut self, cap: usize) -> Self {
        self.span_cap = cap;
        self
    }

    /// The shared clock epoch: worker threads convert their `Instant`
    /// reads to offsets from this via [`SpanEvent::from_instants`].
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Direct access to the counter/gauge/histogram registry, for
    /// drivers that publish their own metrics (detector retractions,
    /// registry-service tallies) before `finish`.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Marks the wall-clock start of a round.
    pub fn begin_round(&mut self) {
        self.round_start = Some(Instant::now());
        self.round_busy.fill(0);
    }

    /// Records a span that started at `start` and ends now (the serial
    /// engine's "time this phase inline" helper).
    pub fn span_from(&mut self, phase: Phase, round: u64, worker: u32, start: Instant) {
        let span =
            SpanEvent::from_instants(self.epoch, phase, round, worker, start, Instant::now());
        self.record_span(span);
    }

    /// Records a pre-built span (the sharded engine folds per-worker
    /// spans in through here after joining its scope).
    pub fn record_span(&mut self, span: SpanEvent) {
        if matches!(span.phase, Phase::OnRound | Phase::RouteShard) {
            let lane = span.worker as usize;
            if lane >= self.round_busy.len() {
                self.round_busy.resize(lane + 1, 0);
            }
            self.round_busy[lane] += span.dur_ns;
        }
        for sink in &mut self.sinks {
            sink.on_span(&span);
        }
        if self.spans.len() < self.span_cap {
            self.spans.push(span);
        } else {
            self.span_overflow += 1;
        }
    }

    /// Closes out a round: `obs.wall_ns` is overwritten with the time
    /// since the matching [`begin_round`](Self::begin_round).
    pub fn end_round(&mut self, mut obs: RoundObs) {
        obs.wall_ns = self
            .round_start
            .take()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        self.last_round_wall_ns = obs.wall_ns;
        for sink in &mut self.sinks {
            sink.on_round(&obs);
        }
        self.rounds.push(obs);
    }

    /// Per-worker parallel-phase busy time over the round now closing
    /// (the live snapshot's shard-utilization source).
    pub fn live_shard_busy(&self) -> &[u64] {
        &self.round_busy
    }

    /// Wall time of the most recently closed round.
    pub fn last_round_wall_ns(&self) -> u64 {
        self.last_round_wall_ns
    }

    /// Stores an alert the online monitor fired, for export as a
    /// schema-v4 `alert` archive record.
    pub fn record_alert(&mut self, alert: Alert) {
        self.alerts.push(alert);
    }

    /// Assembles the [`ObsReport`] and runs every sink's export.
    ///
    /// `per_node_sent`/`per_node_recv` feed the hot-node top-k;
    /// `knowledge` is the driver's `(round, total known ids)` series
    /// (empty when the driver does not observe knowledge); `pools` are
    /// `(name, takes, reuses)` counters from every buffer pool the
    /// engine exposes.
    pub fn finish(
        mut self,
        outcome: RunOutcomeObs,
        per_node_sent: &[u64],
        per_node_recv: &[u64],
        knowledge: &[(u64, u64)],
        pools: &[(&str, u64, u64)],
    ) -> std::io::Result<ObsReport> {
        // Knowledge deltas: consecutive differences of the series,
        // keyed by round. The first observation has no predecessor and
        // stays `None`.
        for pair in knowledge.windows(2) {
            let (_, prev_total) = pair[0];
            let (round, total) = pair[1];
            if let Some(row) = self.rounds.iter_mut().find(|r| r.round == round) {
                row.knowledge_delta = Some(total.saturating_sub(prev_total));
            }
        }

        let mut reg = self.registry;
        reg.add_counter("messages_total", outcome.messages);
        reg.add_counter("pointers_total", outcome.pointers);
        let coin: u64 = self.rounds.iter().map(|r| r.dropped_coin).sum();
        let crash: u64 = self.rounds.iter().map(|r| r.dropped_crash).sum();
        let partition: u64 = self.rounds.iter().map(|r| r.dropped_partition).sum();
        let link: u64 = self.rounds.iter().map(|r| r.dropped_link).sum();
        let suppression: u64 = self.rounds.iter().map(|r| r.dropped_suppression).sum();
        let retrans: u64 = self.rounds.iter().map(|r| r.retransmissions).sum();
        reg.add_counter("dropped_coin_total", coin);
        reg.add_counter("dropped_crash_total", crash);
        reg.add_counter("dropped_partition_total", partition);
        reg.add_counter("dropped_link_total", link);
        reg.add_counter("dropped_suppression_total", suppression);
        reg.add_counter("retransmissions_total", retrans);
        reg.add_counter("trace_events_total", outcome.trace_events);
        reg.add_counter("trace_overflow_total", outcome.trace_overflow);
        // Registered only when something fired: alert-free runs keep
        // their registry — and therefore their archive bytes —
        // identical to builds without the monitor.
        if !self.alerts.is_empty() {
            reg.add_counter("alerts_total", self.alerts.len() as u64);
        }
        if let Some(causal) = &self.causal {
            reg.add_counter("causal_edges_total", causal.len() as u64);
            reg.add_counter("causal_candidates_total", causal.candidates());
            reg.add_counter("causal_sampled_out_total", causal.sampled_out());
            reg.add_counter("causal_overflow_total", causal.overflow());
        }
        for &(name, takes, reuses) in pools {
            reg.add_counter(&format!("pool_{name}_takes_total"), takes);
            reg.add_counter(&format!("pool_{name}_reuses_total"), reuses);
            let rate = if takes == 0 {
                0.0
            } else {
                reuses as f64 / takes as f64
            };
            reg.set_gauge(&format!("pool_{name}_hit_rate"), rate);
        }
        for row in &self.rounds {
            reg.record("round_messages", row.messages);
            reg.record("round_pointers", row.pointers);
            reg.record("round_wall_ns", row.wall_ns);
            if let Some(delta) = row.knowledge_delta {
                reg.record("knowledge_delta", delta);
            }
        }

        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let mut hist = Histogram::new();
            let mut total_ns = 0u64;
            for s in self.spans.iter().filter(|s| s.phase == phase) {
                hist.record(s.dur_ns);
                total_ns += s.dur_ns;
            }
            if hist.count() > 0 {
                reg.record_hist_merge(&format!("span_{}_ns", phase.name()), &hist);
                phases.push(PhaseSummary {
                    phase,
                    count: hist.count(),
                    total_ns,
                    hist,
                });
            }
        }

        let mut workers: Vec<WorkerSummary> = Vec::new();
        for s in &self.spans {
            match workers.iter_mut().find(|w| w.worker == s.worker) {
                Some(w) => {
                    w.spans += 1;
                    w.busy_ns += s.dur_ns;
                }
                None => workers.push(WorkerSummary {
                    worker: s.worker,
                    spans: 1,
                    busy_ns: s.dur_ns,
                }),
            }
        }
        workers.sort_by_key(|w| w.worker);
        // Imbalance over the parallel phases only: max/mean of
        // per-worker busy time in `OnRound` + `RouteShard` (1.0 means
        // perfectly even shards).
        let mut parallel_busy: Vec<(u32, u64)> = Vec::new();
        for s in self
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::OnRound | Phase::RouteShard))
        {
            match parallel_busy.iter_mut().find(|(w, _)| *w == s.worker) {
                Some((_, ns)) => *ns += s.dur_ns,
                None => parallel_busy.push((s.worker, s.dur_ns)),
            }
        }
        if parallel_busy.len() > 1 {
            let max = parallel_busy.iter().map(|&(_, ns)| ns).max().unwrap_or(0);
            let mean: f64 = parallel_busy.iter().map(|&(_, ns)| ns as f64).sum::<f64>()
                / parallel_busy.len() as f64;
            if mean > 0.0 {
                reg.set_gauge("worker_imbalance", max as f64 / mean);
            }
        }
        let wall_total: u64 = self.rounds.iter().map(|r| r.wall_ns).sum();
        reg.set_gauge("wall_seconds_total", wall_total as f64 / 1e9);

        // Profile assembly is the one place attribution arithmetic
        // runs — nothing above this line changes shape when profiling
        // is enabled, which is what keeps un-profiled archives
        // byte-identical.
        let profile = self
            .prof
            .take()
            .map(|p| p.assemble(&self.rounds, &self.spans, &outcome));

        let report = ObsReport {
            meta: self.meta,
            outcome,
            rounds: self.rounds,
            registry: reg,
            phases,
            workers,
            hot_senders: top_k(per_node_sent, HOT_NODES_K),
            hot_receivers: top_k(per_node_recv, HOT_NODES_K),
            spans: self.spans,
            span_overflow: self.span_overflow,
            causal: self.causal,
            profile,
            alerts: self.alerts,
        };
        for sink in &mut self.sinks {
            sink.on_finish(&report)?;
        }
        Ok(report)
    }
}

/// Top `k` indices of `values` by value, descending, ties toward the
/// lower index. Zero entries are skipped.
fn top_k(values: &[u64], k: usize) -> Vec<(u32, u64)> {
    let mut ranked: Vec<(u32, u64)> = values
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v > 0)
        .map(|(i, &v)| (i as u32, v))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            algorithm: "test".into(),
            topology: "k-out-3".into(),
            n: 8,
            seed: 1,
            engine: "sequential".into(),
            workers: 1,
            latency_model: None,
        }
    }

    fn round(round: u64, messages: u64) -> RoundObs {
        RoundObs {
            round,
            wall_ns: 0,
            messages,
            pointers: messages * 2,
            dropped_coin: 1,
            dropped_crash: 0,
            dropped_partition: 0,
            dropped_link: 0,
            dropped_suppression: 0,
            retransmissions: 0,
            knowledge_delta: None,
        }
    }

    #[test]
    fn finish_assembles_rounds_phases_and_hot_nodes() {
        let mut rec = Recorder::new(meta());
        for r in 1..=3u64 {
            rec.begin_round();
            rec.span_from(Phase::OnRound, r, 0, Instant::now());
            rec.span_from(Phase::RouteShard, r, 0, Instant::now());
            rec.end_round(round(r, 10 * r));
        }
        let outcome = RunOutcomeObs {
            verdict: "complete-sound".into(),
            completed: true,
            sound: true,
            rounds: 3,
            messages: 60,
            pointers: 120,
            trace_events: 5,
            trace_overflow: 0,
            last_progress: None,
        };
        let report = rec
            .finish(
                outcome,
                &[5, 0, 9, 9],
                &[1, 2, 3, 4],
                &[(0, 100), (1, 130), (2, 160), (3, 200)],
                &[("delay", 10, 7)],
            )
            .unwrap();
        assert_eq!(report.rounds.len(), 3);
        // Knowledge deltas: round 1 has a predecessor at round 0.
        assert_eq!(report.rounds[0].knowledge_delta, Some(30));
        assert_eq!(report.rounds[2].knowledge_delta, Some(40));
        assert_eq!(report.registry.counter("messages_total"), Some(60));
        assert_eq!(report.registry.counter("dropped_coin_total"), Some(3));
        assert_eq!(report.registry.counter("pool_delay_reuses_total"), Some(7));
        assert!((report.registry.gauge("pool_delay_hit_rate").unwrap() - 0.7).abs() < 1e-9);
        assert_eq!(report.hot_senders, vec![(2, 9), (3, 9), (0, 5)]);
        assert_eq!(report.hot_receivers[0], (3, 4));
        let on_round = report
            .phases
            .iter()
            .find(|p| p.phase == Phase::OnRound)
            .unwrap();
        assert_eq!(on_round.count, 3);
        assert_eq!(
            report.registry.histogram("round_messages").unwrap().count(),
            3
        );
    }

    #[test]
    fn span_capacity_overflows_are_counted() {
        let mut rec = Recorder::new(meta()).with_span_capacity(2);
        for r in 0..5 {
            rec.span_from(Phase::FinishRound, r, 0, Instant::now());
        }
        let report = rec
            .finish(RunOutcomeObs::default(), &[], &[], &[], &[])
            .unwrap();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.span_overflow, 3);
    }
}
