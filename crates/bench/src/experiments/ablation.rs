//! **T4** — ablations of the HM algorithm's design choices: merge rule,
//! probe parallelism, and the invite path.

use crate::profile::Profile;
use rd_analysis::experiment::{sweep, SweepSpec};
use rd_analysis::Table;
use rd_core::algorithms::hm::{HmConfig, MergeRule};
use rd_core::runner::AlgorithmKind;
use rd_graphs::Topology;

/// The ablation grid: the default configuration plus one knob flipped at
/// a time.
pub fn variants() -> Vec<HmConfig> {
    vec![
        HmConfig::default(),
        HmConfig {
            merge_rule: MergeRule::RandomAbove,
            ..Default::default()
        },
        HmConfig {
            merge_rule: MergeRule::MinAbove,
            ..Default::default()
        },
        HmConfig {
            parallel_probes: false,
            ..Default::default()
        },
        HmConfig {
            invites: false,
            ..Default::default()
        },
    ]
}

/// Runs every variant on the random-overlay workload at the profile's
/// survey size.
pub fn run(profile: Profile) -> Table {
    let n = profile.survey_n();
    let mut t = Table::new(["variant", "rounds (mean ± std)", "messages", "completion"]);
    for cfg in variants() {
        let cells = sweep(&SweepSpec {
            kinds: vec![AlgorithmKind::Hm(cfg)],
            topology: Topology::KOut { k: 3 },
            ns: vec![n],
            seeds: profile.seeds(),
            // The no-invite variant can legitimately stall; bound it.
            max_rounds: 20_000,
            ..Default::default()
        });
        let c = &cells[0];
        t.row([
            c.algorithm.clone(),
            c.rounds.mean_pm_std(1),
            format!("{:.0}", c.messages.mean),
            format!("{}%", (c.completion_rate * 100.0) as u32),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_flips_one_knob_at_a_time() {
        let v = variants();
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], HmConfig::default());
        let names: Vec<String> = v.iter().map(HmConfig::name).collect();
        assert_eq!(
            names,
            vec![
                "hm",
                "hm-random-above",
                "hm-min-above",
                "hm-serial",
                "hm-noinvite"
            ]
        );
    }
}
