//! First-class timer events: arm, cancel, fire.
//!
//! A [`TimerWheel`] is the event queue of the discrete-event engine's
//! non-message events: an ordered set of `(deadline, payload)` entries
//! that fire in `(time, arm-order)` order — the same
//! `(time, tiebreak-rank)` discipline as message deliveries, so a run
//! never depends on hash iteration or insertion luck. Arming returns a
//! [`TimerId`] that can later cancel the entry; a cancelled timer never
//! fires.

use std::collections::BTreeMap;

/// Handle to an armed timer, used to cancel it. Ordering the ids
/// orders the timers: deadline first, then arm order within a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId {
    at: u64,
    serial: u64,
}

impl TimerId {
    /// The tick this timer is (or was) scheduled to fire at.
    pub fn deadline(&self) -> u64 {
        self.at
    }
}

/// A deterministic timer queue: entries fire in `(deadline, arm-order)`
/// order, and the serial tiebreak makes that order a pure function of
/// the arm/cancel call sequence.
#[derive(Debug, Default)]
pub struct TimerWheel<T> {
    entries: BTreeMap<(u64, u64), T>,
    next_serial: u64,
    fired: u64,
    cancelled: u64,
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            entries: BTreeMap::new(),
            next_serial: 0,
            fired: 0,
            cancelled: 0,
        }
    }

    /// Arms a timer to fire at tick `at`, carrying `payload`. Returns
    /// the handle that cancels it.
    pub fn arm(&mut self, at: u64, payload: T) -> TimerId {
        let id = TimerId {
            at,
            serial: self.next_serial,
        };
        self.next_serial += 1;
        self.entries.insert((id.at, id.serial), payload);
        id
    }

    /// Cancels an armed timer. Returns its payload, or `None` if the
    /// timer already fired or was already cancelled.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let payload = self.entries.remove(&(id.at, id.serial));
        if payload.is_some() {
            self.cancelled += 1;
        }
        payload
    }

    /// Fires every timer with a deadline `<= now`, in
    /// `(deadline, arm-order)` order. Fired timers are consumed.
    pub fn fire_due(&mut self, now: u64) -> Vec<(TimerId, T)> {
        let mut due = Vec::new();
        while let Some((&(at, serial), _)) = self.entries.first_key_value() {
            if at > now {
                break;
            }
            let payload = self.entries.remove(&(at, serial)).expect("nonempty");
            due.push((TimerId { at, serial }, payload));
        }
        self.fired += due.len() as u64;
        due
    }

    /// The deadline of the earliest armed timer, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.entries.keys().next().map(|&(at, _)| at)
    }

    /// Number of currently armed timers.
    pub fn armed(&self) -> usize {
        self.entries.len()
    }

    /// `(fired, cancelled)` lifetime counters (observability export).
    pub fn stats(&self) -> (u64, u64) {
        (self.fired, self.cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_fire_in_deadline_then_arm_order() {
        let mut wheel = TimerWheel::new();
        wheel.arm(5, "b");
        wheel.arm(3, "a");
        wheel.arm(5, "c");
        assert_eq!(wheel.next_deadline(), Some(3));
        let fired: Vec<&str> = wheel.fire_due(5).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!["a", "b", "c"]);
        assert_eq!(wheel.armed(), 0);
    }

    #[test]
    fn fire_due_leaves_future_timers_armed() {
        let mut wheel = TimerWheel::new();
        wheel.arm(1, 10u32);
        wheel.arm(4, 40u32);
        let fired = wheel.fire_due(2);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 10);
        assert_eq!(wheel.armed(), 1);
        assert_eq!(wheel.next_deadline(), Some(4));
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut wheel = TimerWheel::new();
        let keep = wheel.arm(2, "keep");
        let drop = wheel.arm(2, "drop");
        assert_eq!(wheel.cancel(drop), Some("drop"));
        assert_eq!(wheel.cancel(drop), None, "double cancel");
        let fired: Vec<&str> = wheel.fire_due(9).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!["keep"]);
        assert_eq!(wheel.cancel(keep), None, "already fired");
        assert_eq!(wheel.stats(), (1, 1));
    }

    #[test]
    fn deadline_is_visible_on_the_handle() {
        let mut wheel = TimerWheel::new();
        let id = wheel.arm(7, ());
        assert_eq!(id.deadline(), 7);
    }
}
