//! A dependency-free loopback HTTP scrape endpoint over the live bus.
//!
//! `std::net::TcpListener` only: binds `127.0.0.1:0` by default (an
//! explicit `ADDR` is supported so CI can curl a fixed port) and serves
//!
//! * `/metrics`  — Prometheus text exposition rendered from the latest
//!   [`LiveSnapshot`](crate::LiveSnapshot) (the same conformant format
//!   the end-of-run [`PrometheusSink`](crate::PrometheusSink) writes),
//! * `/status`   — the snapshot as JSON (parsed by `rd-inspect watch`
//!   with the crate's serde-free parser),
//! * `/healthz`  — liveness (`200 ok` as soon as the listener is up).
//!
//! The accept loop runs nonblocking on a named thread, polling a stop
//! flag; each connection is served on its own short-lived thread so
//! concurrent scrapes never queue behind each other. [`LiveServer::
//! shutdown`] joins everything, which is what makes "no leaked thread,
//! port released" a testable property rather than a hope.

use crate::live::LiveBus;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The loopback scrape server. Dropping it shuts it down.
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl LiveServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `bus`. Refuses non-loopback addresses: the
    /// endpoint exposes run internals and authenticates nobody.
    pub fn start(addr: &str, bus: Arc<LiveBus>) -> std::io::Result<LiveServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        if !local.ip().is_loopback() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("rd-live binds loopback only, got {local}"),
            ));
        }
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("rd-live-http".into())
            .spawn(move || accept_loop(listener, bus, flag))?;
        Ok(LiveServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it (and, transitively, every
    /// connection thread it spawned). After this returns the port is
    /// released and can be rebound.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, bus: Arc<LiveBus>, stop: Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let bus = bus.clone();
                // Thread-per-connection keeps concurrent scrapes from
                // queueing; handles are reaped so shutdown can join
                // every straggler.
                if let Ok(handle) = std::thread::Builder::new()
                    .name("rd-live-conn".into())
                    .spawn(move || serve_connection(stream, &bus))
                {
                    conns.push(handle);
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Reads one request, writes one response, closes. HTTP/1.0-simple on
/// purpose: every scraper sends `GET <path> HTTP/1.x` and none of the
/// endpoints take a body.
fn serve_connection(mut stream: TcpStream, bus: &LiveBus) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut buf = [0u8; 1024];
    let mut read = 0;
    // Read until the header terminator (or the cap): request lines are
    // tiny, but a scraper may deliver them across packets.
    while read < buf.len() {
        match stream.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(k) => {
                read += k;
                if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf[..read]);
    let path = request
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("GET"), Some(path)) => Some(path.to_string()),
                _ => None,
            }
        })
        .unwrap_or_default();
    let (status, content_type, body) = match path.as_str() {
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/status" => match bus.read() {
            Some(snap) => ("200 OK", "application/json", snap.status_json()),
            None => (
                "503 Service Unavailable",
                "application/json",
                "{\"error\":\"no snapshot published yet\"}".to_string(),
            ),
        },
        "/metrics" => match bus.read() {
            Some(snap) => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                snap.render_metrics(),
            ),
            None => (
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                "no snapshot published yet\n".to_string(),
            ),
        },
        "" => (
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "malformed request\n".to_string(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics /status /healthz\n".to_string(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Minimal HTTP GET against a live endpoint: returns `(status code,
/// body)`. This is the whole client `rd-inspect watch` (and the test
/// suite) needs — one request per poll, `Connection: close`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
        })?;
    let body = match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}
