//! The JSONL run-archive format: schemas v1 through v4.
//!
//! One file per run, one JSON object per line, `"type"` tagging the
//! record kind. Line order is fixed so archives diff cleanly as text:
//!
//! ```text
//! {"type":"header","schema":1,"algorithm":…,"topology":…,"n":…,"seed":"…","engine":…,"workers":…
//!   [,"latency_model":"…"]}       (the latency model appears only for event-engine runs)
//! {"type":"round","round":1,"wall_ns":…,"messages":…,"pointers":…,"dropped_coin":…,
//!   "dropped_crash":…,"dropped_partition":…,"dropped_link":…,"dropped_suppression":…,
//!   "retransmissions":…,"knowledge_delta":…|null}                                           × rounds
//! {"type":"phase","phase":"route_shard","count":…,"total_ns":…,"p50_ns":…,"p99_ns":…,"max_ns":…} × phases
//! {"type":"worker","worker":0,"spans":…,"busy_ns":…}                                        × workers
//! {"type":"counter","name":…,"value":…}                                                     × counters
//! {"type":"gauge","name":…,"value":…}                                                       × gauges
//! {"type":"hist","name":…,"count":…,"mean":…,"min":…,"p50":…,"p90":…,"p99":…,"max":…}        × histograms
//! {"type":"hot_nodes","metric":"sent"|"recv","top":[{"node":…,"value":…},…]}                × 2
//! {"type":"trace_meta","capacity":…,"sample_ppm":…,"edges":…,"candidates":…,
//!   "sampled_out":…,"overflow":…}                                                  (v2) × 0..1
//! {"type":"edge","id":…,"node":…,"src":…,"sent":…,"round":…,"seq":…}               (v2) × edges
//! {"type":"profile_meta","coverage_pct":…,"samples":…,"utilization_pct":…,
//!   "imbalance_mean":…,"imbalance_max":…,"peak_knowledge_bytes":…,
//!   "peak_pool_bytes":…,"peak_rss_bytes":…}                                        (v3) × 0..1
//! {"type":"profile_phase","phase":…,"total_ns":…,"round_pct":…,"ns_per_envelope":…} (v3) × phases
//! {"type":"profile_msg","kind":…,"envelopes":…,"payload_bytes":…,"ns_per_envelope":…}(v3) × kinds
//! {"type":"profile_mem","round":…,"knowledge_bytes":…,"pool_bytes":…,"rss_bytes":…} (v3) × samples
//! {"type":"alert","rule":…,"round":…,"value":…,"threshold":…,"message":…}           (v4) × alerts
//! {"type":"summary","verdict":…,"completed":…,"sound":…,"rounds":…,"messages":…,"pointers":…,
//!   "trace_events":…,"trace_overflow":…,"span_overflow":…,"wall_ns_total":…
//!   [,"last_progress":…]}        (the stall watermark appears only when the driver tracked it)
//! ```
//!
//! The header is always first, the summary always last and unique.
//! `seed` is a JSON *string*: a full-range `u64` does not survive the
//! f64 number pipeline. Consumers must reject unknown record types and
//! unknown schema versions — that is what makes the version field
//! load-bearing ([`validate`] enforces both).
//!
//! Schema v2 adds the causal-provenance section (`trace_meta` + `edge`
//! records, in ascending `(id, node)` order). Schema v3 adds the
//! profiling section (`profile_meta` first, then `profile_phase` /
//! `profile_msg` / `profile_mem` records, the memory timeline in
//! strictly ascending round order). Schema v4 adds `alert` records —
//! online SLO monitor firings, in ascending round order just before
//! the summary. Each section is opt-in and the declared schema is the
//! *lowest* that covers the records actually present: a run without
//! causal tracing or profiling still renders as schema 1,
//! byte-identical to what earlier builds wrote, a profiled-but-
//! untraced run skips the v2 section while declaring v3, and an
//! alert-free live run declares whatever its other sections need.
//! Archives may not contain record types newer than their declared
//! schema.

use crate::json::{escape, fmt_f64, Json};
use crate::recorder::ObsReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The newest archive schema this crate reads and writes. Archives
/// declare the lowest schema covering the sections they contain:
/// without alerts they render as schema 3 (or 2 without a profile
/// section, or 1 without a causal-trace section either).
pub const SCHEMA_VERSION: u64 = 4;

const KNOWN_TYPES: [&str; 16] = [
    "header",
    "round",
    "phase",
    "worker",
    "counter",
    "gauge",
    "hist",
    "hot_nodes",
    "trace_meta",
    "edge",
    "profile_meta",
    "profile_phase",
    "profile_msg",
    "profile_mem",
    "alert",
    "summary",
];

/// Record types that need at least a schema v2 archive.
const V2_TYPES: [&str; 2] = ["trace_meta", "edge"];

/// Record types that need at least a schema v3 archive.
const V3_TYPES: [&str; 4] = [
    "profile_meta",
    "profile_phase",
    "profile_msg",
    "profile_mem",
];

/// Record types that need at least a schema v4 archive.
const V4_TYPES: [&str; 1] = ["alert"];

/// Renders a finished run as the full archive text.
pub fn render(report: &ObsReport) -> String {
    let mut out = String::new();
    let m = &report.meta;
    // The lowest schema that covers the sections actually present, so
    // un-profiled (and untraced) archives stay byte-identical to what
    // earlier builds wrote.
    let schema = if !report.alerts.is_empty() {
        SCHEMA_VERSION
    } else if report.profile.is_some() {
        3
    } else if report.causal.is_some() {
        2
    } else {
        1
    };
    // `latency_model` renders only when set, so round-engine archives
    // stay byte-identical to what pre-event-engine builds wrote.
    let latency = m.latency_model.as_ref().map_or(String::new(), |l| {
        format!(",\"latency_model\":{}", escape(l))
    });
    let _ = writeln!(
        out,
        "{{\"type\":\"header\",\"schema\":{schema},\"algorithm\":{},\"topology\":{},\"n\":{},\"seed\":{},\"engine\":{},\"workers\":{}{latency}}}",
        escape(&m.algorithm),
        escape(&m.topology),
        m.n,
        escape(&m.seed.to_string()),
        escape(&m.engine),
        m.workers
    );
    for r in &report.rounds {
        let delta = r
            .knowledge_delta
            .map_or("null".to_string(), |d| d.to_string());
        let _ = writeln!(
            out,
            "{{\"type\":\"round\",\"round\":{},\"wall_ns\":{},\"messages\":{},\"pointers\":{},\"dropped_coin\":{},\"dropped_crash\":{},\"dropped_partition\":{},\"dropped_link\":{},\"dropped_suppression\":{},\"retransmissions\":{},\"knowledge_delta\":{delta}}}",
            r.round, r.wall_ns, r.messages, r.pointers, r.dropped_coin, r.dropped_crash,
            r.dropped_partition, r.dropped_link, r.dropped_suppression, r.retransmissions
        );
    }
    for p in &report.phases {
        let _ = writeln!(
            out,
            "{{\"type\":\"phase\",\"phase\":{},\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            escape(p.phase.name()),
            p.count,
            p.total_ns,
            p.hist.quantile(0.5),
            p.hist.quantile(0.99),
            p.hist.max()
        );
    }
    for w in &report.workers {
        let _ = writeln!(
            out,
            "{{\"type\":\"worker\",\"worker\":{},\"spans\":{},\"busy_ns\":{}}}",
            w.worker, w.spans, w.busy_ns
        );
    }
    for (name, v) in report.registry.counters() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}",
            escape(name)
        );
    }
    for (name, v) in report.registry.gauges() {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
            escape(name),
            fmt_f64(v)
        );
    }
    for (name, h) in report.registry.histograms() {
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            escape(name),
            h.count(),
            fmt_f64(h.mean()),
            h.min(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max()
        );
    }
    for (metric, top) in [
        ("sent", &report.hot_senders),
        ("recv", &report.hot_receivers),
    ] {
        let items: Vec<String> = top
            .iter()
            .map(|&(node, value)| format!("{{\"node\":{node},\"value\":{value}}}"))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"hot_nodes\",\"metric\":{},\"top\":[{}]}}",
            escape(metric),
            items.join(",")
        );
    }
    if let Some(causal) = &report.causal {
        let _ = writeln!(
            out,
            "{{\"type\":\"trace_meta\",\"capacity\":{},\"sample_ppm\":{},\"edges\":{},\"candidates\":{},\"sampled_out\":{},\"overflow\":{}}}",
            causal.capacity(),
            causal.sample_ppm(),
            causal.len(),
            causal.candidates(),
            causal.sampled_out(),
            causal.overflow()
        );
        for e in causal.edges() {
            let _ = writeln!(
                out,
                "{{\"type\":\"edge\",\"id\":{},\"node\":{},\"src\":{},\"sent\":{},\"round\":{},\"seq\":{}}}",
                e.id, e.node, e.src, e.sent, e.round, e.seq
            );
        }
    }
    if let Some(prof) = &report.profile {
        let _ = writeln!(
            out,
            "{{\"type\":\"profile_meta\",\"coverage_pct\":{},\"samples\":{},\"utilization_pct\":{},\"imbalance_mean\":{},\"imbalance_max\":{},\"peak_knowledge_bytes\":{},\"peak_pool_bytes\":{},\"peak_rss_bytes\":{}}}",
            fmt_f64(prof.coverage_pct),
            prof.samples,
            fmt_f64(prof.utilization_pct),
            fmt_f64(prof.imbalance_mean),
            fmt_f64(prof.imbalance_max),
            prof.peak_knowledge_bytes,
            prof.peak_pool_bytes,
            prof.peak_rss_bytes
        );
        for p in &prof.phases {
            let _ = writeln!(
                out,
                "{{\"type\":\"profile_phase\",\"phase\":{},\"total_ns\":{},\"round_pct\":{},\"ns_per_envelope\":{}}}",
                escape(p.phase.name()),
                p.total_ns,
                fmt_f64(p.round_pct),
                fmt_f64(p.ns_per_envelope)
            );
        }
        for msg in &prof.msgs {
            let _ = writeln!(
                out,
                "{{\"type\":\"profile_msg\",\"kind\":{},\"envelopes\":{},\"payload_bytes\":{},\"ns_per_envelope\":{}}}",
                escape(&msg.kind),
                msg.envelopes,
                msg.payload_bytes,
                fmt_f64(msg.ns_per_envelope)
            );
        }
        for s in &prof.mem {
            let _ = writeln!(
                out,
                "{{\"type\":\"profile_mem\",\"round\":{},\"knowledge_bytes\":{},\"pool_bytes\":{},\"rss_bytes\":{}}}",
                s.round, s.knowledge_bytes, s.pool_bytes, s.rss_bytes
            );
        }
    }
    for a in &report.alerts {
        let _ = writeln!(
            out,
            "{{\"type\":\"alert\",\"rule\":{},\"round\":{},\"value\":{},\"threshold\":{},\"message\":{}}}",
            escape(&a.rule),
            a.round,
            fmt_f64(a.value),
            fmt_f64(a.threshold),
            escape(&a.message)
        );
    }
    let o = &report.outcome;
    let wall_total: u64 = report.rounds.iter().map(|r| r.wall_ns).sum();
    // `last_progress` renders only when the driver tracked it, so
    // archives from drivers without a watchdog stay byte-identical.
    let last_progress = o
        .last_progress
        .map_or(String::new(), |r| format!(",\"last_progress\":{r}"));
    let _ = writeln!(
        out,
        "{{\"type\":\"summary\",\"verdict\":{},\"completed\":{},\"sound\":{},\"rounds\":{},\"messages\":{},\"pointers\":{},\"trace_events\":{},\"trace_overflow\":{},\"span_overflow\":{},\"wall_ns_total\":{wall_total}{last_progress}}}",
        escape(&o.verdict),
        o.completed,
        o.sound,
        o.rounds,
        o.messages,
        o.pointers,
        o.trace_events,
        o.trace_overflow,
        report.span_overflow
    );
    out
}

/// Parsed `header` record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Header {
    pub schema: u64,
    pub algorithm: String,
    pub topology: String,
    pub n: u64,
    pub seed: String,
    pub engine: String,
    pub workers: u64,
    /// Latency-model spec of event-engine runs; absent (and not
    /// rendered) for round-engine archives.
    pub latency_model: Option<String>,
}

/// Parsed `round` record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundRec {
    pub round: u64,
    pub wall_ns: u64,
    pub messages: u64,
    pub pointers: u64,
    pub dropped_coin: u64,
    pub dropped_crash: u64,
    pub dropped_partition: u64,
    /// Zero on archives written before link-loss overlays existed.
    pub dropped_link: u64,
    /// Zero on archives written before suppression campaigns existed.
    pub dropped_suppression: u64,
    pub retransmissions: u64,
    pub knowledge_delta: Option<u64>,
}

/// Parsed `phase` record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseRec {
    pub phase: String,
    pub count: u64,
    pub total_ns: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// Parsed `worker` record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerRec {
    pub worker: u64,
    pub spans: u64,
    pub busy_ns: u64,
}

/// Parsed `hist` record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistRec {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// Parsed `trace_meta` record (schema v2).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceMetaRec {
    pub capacity: u64,
    pub sample_ppm: u64,
    pub edges: u64,
    pub candidates: u64,
    pub sampled_out: u64,
    pub overflow: u64,
}

/// Parsed `edge` record (schema v2): one provenance edge of the
/// knowledge DAG — the first delivery that taught `node` about `id`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeRec {
    pub id: u64,
    pub node: u64,
    pub src: u64,
    pub sent: u64,
    pub round: u64,
    pub seq: u64,
}

/// Parsed `profile_meta` record (schema v3): run-level attribution
/// summary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileMetaRec {
    pub coverage_pct: f64,
    pub samples: u64,
    pub utilization_pct: f64,
    pub imbalance_mean: f64,
    pub imbalance_max: f64,
    pub peak_knowledge_bytes: u64,
    pub peak_pool_bytes: u64,
    pub peak_rss_bytes: u64,
}

/// Parsed `profile_phase` record (schema v3): one phase's share.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfilePhaseRec {
    pub phase: String,
    pub total_ns: u64,
    pub round_pct: f64,
    pub ns_per_envelope: f64,
}

/// Parsed `profile_msg` record (schema v3): one message kind's cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileMsgRec {
    pub kind: String,
    pub envelopes: u64,
    pub payload_bytes: u64,
    pub ns_per_envelope: f64,
}

/// Parsed `profile_mem` record (schema v3): one memory sample.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileMemRec {
    pub round: u64,
    pub knowledge_bytes: u64,
    pub pool_bytes: u64,
    pub rss_bytes: u64,
}

/// Parsed `alert` record (schema v4): one online-monitor firing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlertRec {
    pub rule: String,
    pub round: u64,
    pub value: f64,
    pub threshold: f64,
    pub message: String,
}

/// Parsed `summary` record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SummaryRec {
    pub verdict: String,
    pub completed: bool,
    pub sound: bool,
    pub rounds: u64,
    pub messages: u64,
    pub pointers: u64,
    pub trace_events: u64,
    pub trace_overflow: u64,
    pub span_overflow: u64,
    pub wall_ns_total: u64,
    /// Last round that still grew total knowledge; present only when
    /// the driver tracked a stall watermark.
    pub last_progress: Option<u64>,
}

/// A fully parsed archive.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Archive {
    pub header: Header,
    pub rounds: Vec<RoundRec>,
    pub phases: Vec<PhaseRec>,
    pub workers: Vec<WorkerRec>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub hists: Vec<HistRec>,
    /// `metric name → [(node, value)]`, hottest first.
    pub hot: BTreeMap<String, Vec<(u64, u64)>>,
    /// Causal-trace metadata (schema v2; `None` on v1 archives).
    pub trace_meta: Option<TraceMetaRec>,
    /// Provenance edges in ascending `(id, node)` order (schema v2).
    pub edges: Vec<EdgeRec>,
    /// Profile summary (schema v3; `None` on un-profiled archives).
    pub profile_meta: Option<ProfileMetaRec>,
    /// Per-phase attribution rows (schema v3).
    pub profile_phases: Vec<ProfilePhaseRec>,
    /// Per-message-kind cost rows (schema v3).
    pub profile_msgs: Vec<ProfileMsgRec>,
    /// The memory timeline in ascending round order (schema v3).
    pub profile_mem: Vec<ProfileMemRec>,
    /// Online-monitor firings in ascending round order (schema v4).
    pub alerts: Vec<AlertRec>,
    pub summary: SummaryRec,
}

/// Parses an archive strictly; the error is the first problem
/// [`validate`] would report.
pub fn parse(text: &str) -> Result<Archive, String> {
    let (archive, problems) = scan(text);
    match problems.into_iter().next() {
        None => Ok(archive),
        Some(p) => Err(p),
    }
}

/// Validates an archive against schema v1, returning *every* problem
/// found (empty = valid).
pub fn validate(text: &str) -> Vec<String> {
    scan(text).1
}

fn scan(text: &str) -> (Archive, Vec<String>) {
    let mut archive = Archive::default();
    let mut problems = Vec::new();
    let mut saw_header = false;
    let mut summary_line: Option<usize> = None;
    let mut last_round: Option<u64> = None;
    let mut last_edge: Option<(u64, u64)> = None;
    let mut last_mem_round: Option<u64> = None;
    let mut last_alert_round: Option<u64> = None;
    let mut nonempty_lines = 0usize;

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        nonempty_lines += 1;
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                problems.push(format!("line {lineno}: invalid JSON: {e}"));
                continue;
            }
        };
        let ty = match v.get("type").and_then(Json::as_str) {
            Some(t) => t.to_string(),
            None => {
                problems.push(format!("line {lineno}: missing \"type\""));
                continue;
            }
        };
        if !KNOWN_TYPES.contains(&ty.as_str()) {
            problems.push(format!("line {lineno}: unknown record type \"{ty}\""));
            continue;
        }
        if nonempty_lines == 1 && ty != "header" {
            problems.push(format!("line {lineno}: first record must be the header"));
        }
        if V2_TYPES.contains(&ty.as_str()) && saw_header && archive.header.schema < 2 {
            problems.push(format!(
                "line {lineno}: record type \"{ty}\" requires schema 2, archive declares {}",
                archive.header.schema
            ));
        }
        if V3_TYPES.contains(&ty.as_str()) && saw_header && archive.header.schema < 3 {
            problems.push(format!(
                "line {lineno}: record type \"{ty}\" requires schema 3, archive declares {}",
                archive.header.schema
            ));
        }
        if V4_TYPES.contains(&ty.as_str()) && saw_header && archive.header.schema < 4 {
            problems.push(format!(
                "line {lineno}: record type \"{ty}\" requires schema 4, archive declares {}",
                archive.header.schema
            ));
        }
        macro_rules! field {
            ($name:literal) => {
                num_field(&v, $name, &ty, lineno, &mut problems)
            };
        }
        match ty.as_str() {
            "header" => {
                if saw_header {
                    problems.push(format!("line {lineno}: duplicate header"));
                    continue;
                }
                saw_header = true;
                let schema = field!("schema");
                if !(1..=SCHEMA_VERSION).contains(&schema) {
                    problems.push(format!(
                        "line {lineno}: unsupported schema {schema} (this build reads 1..={SCHEMA_VERSION})"
                    ));
                }
                archive.header = Header {
                    schema,
                    algorithm: str_field(&v, "algorithm", lineno, &mut problems),
                    topology: str_field(&v, "topology", lineno, &mut problems),
                    n: field!("n"),
                    seed: str_field(&v, "seed", lineno, &mut problems),
                    engine: str_field(&v, "engine", lineno, &mut problems),
                    workers: field!("workers"),
                    latency_model: v
                        .get("latency_model")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                };
            }
            "round" => {
                let rec = RoundRec {
                    round: field!("round"),
                    wall_ns: field!("wall_ns"),
                    messages: field!("messages"),
                    pointers: field!("pointers"),
                    dropped_coin: field!("dropped_coin"),
                    dropped_crash: field!("dropped_crash"),
                    dropped_partition: field!("dropped_partition"),
                    // Lenient: archives written before these fault
                    // classes existed omit the fields and stay valid.
                    dropped_link: v.get("dropped_link").and_then(Json::as_u64).unwrap_or(0),
                    dropped_suppression: v
                        .get("dropped_suppression")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    retransmissions: field!("retransmissions"),
                    knowledge_delta: match v.get("knowledge_delta") {
                        Some(Json::Null) => None,
                        Some(d) => d.as_u64().or_else(|| {
                            problems.push(format!(
                                "line {lineno}: knowledge_delta must be a number or null"
                            ));
                            None
                        }),
                        None => {
                            problems.push(format!(
                                "line {lineno}: round record missing \"knowledge_delta\""
                            ));
                            None
                        }
                    },
                };
                if let Some(prev) = last_round {
                    if rec.round <= prev {
                        problems.push(format!(
                            "line {lineno}: round {} out of order (previous {prev})",
                            rec.round
                        ));
                    }
                }
                last_round = Some(rec.round);
                archive.rounds.push(rec);
            }
            "phase" => archive.phases.push(PhaseRec {
                phase: str_field(&v, "phase", lineno, &mut problems),
                count: field!("count"),
                total_ns: field!("total_ns"),
                p50_ns: field!("p50_ns"),
                p99_ns: field!("p99_ns"),
                max_ns: field!("max_ns"),
            }),
            "worker" => archive.workers.push(WorkerRec {
                worker: field!("worker"),
                spans: field!("spans"),
                busy_ns: field!("busy_ns"),
            }),
            "counter" => {
                let name = str_field(&v, "name", lineno, &mut problems);
                archive.counters.insert(name, field!("value"));
            }
            "gauge" => {
                let name = str_field(&v, "name", lineno, &mut problems);
                let value = match v.get("value").and_then(Json::as_f64) {
                    Some(x) => x,
                    None => {
                        problems.push(format!(
                            "line {lineno}: gauge record missing numeric \"value\""
                        ));
                        0.0
                    }
                };
                archive.gauges.insert(name, value);
            }
            "hist" => archive.hists.push(HistRec {
                name: str_field(&v, "name", lineno, &mut problems),
                count: field!("count"),
                mean: v.get("mean").and_then(Json::as_f64).unwrap_or_else(|| {
                    problems.push(format!("line {lineno}: hist record missing \"mean\""));
                    0.0
                }),
                min: field!("min"),
                p50: field!("p50"),
                p90: field!("p90"),
                p99: field!("p99"),
                max: field!("max"),
            }),
            "hot_nodes" => {
                let metric = str_field(&v, "metric", lineno, &mut problems);
                let mut top = Vec::new();
                match v.get("top").and_then(Json::as_arr) {
                    Some(items) => {
                        for item in items {
                            match (
                                item.get("node").and_then(Json::as_u64),
                                item.get("value").and_then(Json::as_u64),
                            ) {
                                (Some(node), Some(value)) => top.push((node, value)),
                                _ => problems.push(format!(
                                    "line {lineno}: hot_nodes entries need \"node\" and \"value\""
                                )),
                            }
                        }
                    }
                    None => problems.push(format!(
                        "line {lineno}: hot_nodes record missing \"top\" array"
                    )),
                }
                archive.hot.insert(metric, top);
            }
            "trace_meta" => {
                if archive.trace_meta.is_some() {
                    problems.push(format!("line {lineno}: duplicate trace_meta"));
                    continue;
                }
                archive.trace_meta = Some(TraceMetaRec {
                    capacity: field!("capacity"),
                    sample_ppm: field!("sample_ppm"),
                    edges: field!("edges"),
                    candidates: field!("candidates"),
                    sampled_out: field!("sampled_out"),
                    overflow: field!("overflow"),
                });
            }
            "edge" => {
                let rec = EdgeRec {
                    id: field!("id"),
                    node: field!("node"),
                    src: field!("src"),
                    sent: field!("sent"),
                    round: field!("round"),
                    seq: field!("seq"),
                };
                if archive.trace_meta.is_none() {
                    problems.push(format!("line {lineno}: edge record before any trace_meta"));
                }
                if let Some(prev) = last_edge {
                    if (rec.id, rec.node) <= prev {
                        problems.push(format!(
                            "line {lineno}: edge ({}, {}) out of (id, node) order",
                            rec.id, rec.node
                        ));
                    }
                }
                last_edge = Some((rec.id, rec.node));
                archive.edges.push(rec);
            }
            "profile_meta" => {
                if archive.profile_meta.is_some() {
                    problems.push(format!("line {lineno}: duplicate profile_meta"));
                    continue;
                }
                archive.profile_meta = Some(ProfileMetaRec {
                    coverage_pct: f64_field(&v, "coverage_pct", &ty, lineno, &mut problems),
                    samples: field!("samples"),
                    utilization_pct: f64_field(&v, "utilization_pct", &ty, lineno, &mut problems),
                    imbalance_mean: f64_field(&v, "imbalance_mean", &ty, lineno, &mut problems),
                    imbalance_max: f64_field(&v, "imbalance_max", &ty, lineno, &mut problems),
                    peak_knowledge_bytes: field!("peak_knowledge_bytes"),
                    peak_pool_bytes: field!("peak_pool_bytes"),
                    peak_rss_bytes: field!("peak_rss_bytes"),
                });
            }
            "profile_phase" => {
                if archive.profile_meta.is_none() {
                    problems.push(format!(
                        "line {lineno}: profile_phase record before any profile_meta"
                    ));
                }
                archive.profile_phases.push(ProfilePhaseRec {
                    phase: str_field(&v, "phase", lineno, &mut problems),
                    total_ns: field!("total_ns"),
                    round_pct: f64_field(&v, "round_pct", &ty, lineno, &mut problems),
                    ns_per_envelope: f64_field(&v, "ns_per_envelope", &ty, lineno, &mut problems),
                });
            }
            "profile_msg" => {
                if archive.profile_meta.is_none() {
                    problems.push(format!(
                        "line {lineno}: profile_msg record before any profile_meta"
                    ));
                }
                archive.profile_msgs.push(ProfileMsgRec {
                    kind: str_field(&v, "kind", lineno, &mut problems),
                    envelopes: field!("envelopes"),
                    payload_bytes: field!("payload_bytes"),
                    ns_per_envelope: f64_field(&v, "ns_per_envelope", &ty, lineno, &mut problems),
                });
            }
            "profile_mem" => {
                if archive.profile_meta.is_none() {
                    problems.push(format!(
                        "line {lineno}: profile_mem record before any profile_meta"
                    ));
                }
                let rec = ProfileMemRec {
                    round: field!("round"),
                    knowledge_bytes: field!("knowledge_bytes"),
                    pool_bytes: field!("pool_bytes"),
                    rss_bytes: field!("rss_bytes"),
                };
                if let Some(prev) = last_mem_round {
                    if rec.round <= prev {
                        problems.push(format!(
                            "line {lineno}: profile_mem round {} out of order (previous {prev})",
                            rec.round
                        ));
                    }
                }
                last_mem_round = Some(rec.round);
                archive.profile_mem.push(rec);
            }
            "alert" => {
                let rec = AlertRec {
                    rule: str_field(&v, "rule", lineno, &mut problems),
                    round: field!("round"),
                    value: f64_field(&v, "value", &ty, lineno, &mut problems),
                    threshold: f64_field(&v, "threshold", &ty, lineno, &mut problems),
                    message: str_field(&v, "message", lineno, &mut problems),
                };
                // Two rules may fire in the same round, so the order
                // constraint is non-strict, unlike rounds and samples.
                if let Some(prev) = last_alert_round {
                    if rec.round < prev {
                        problems.push(format!(
                            "line {lineno}: alert round {} out of order (previous {prev})",
                            rec.round
                        ));
                    }
                }
                last_alert_round = Some(rec.round);
                archive.alerts.push(rec);
            }
            "summary" => {
                if summary_line.is_some() {
                    problems.push(format!("line {lineno}: duplicate summary"));
                    continue;
                }
                summary_line = Some(nonempty_lines);
                archive.summary = SummaryRec {
                    verdict: str_field(&v, "verdict", lineno, &mut problems),
                    completed: bool_field(&v, "completed", lineno, &mut problems),
                    sound: bool_field(&v, "sound", lineno, &mut problems),
                    rounds: field!("rounds"),
                    messages: field!("messages"),
                    pointers: field!("pointers"),
                    trace_events: field!("trace_events"),
                    trace_overflow: field!("trace_overflow"),
                    span_overflow: field!("span_overflow"),
                    wall_ns_total: field!("wall_ns_total"),
                    last_progress: v.get("last_progress").and_then(Json::as_u64),
                };
            }
            _ => unreachable!("filtered by KNOWN_TYPES"),
        }
    }

    if let Some(tm) = &archive.trace_meta {
        if tm.edges != archive.edges.len() as u64 {
            problems.push(format!(
                "trace_meta declares {} edges, archive contains {}",
                tm.edges,
                archive.edges.len()
            ));
        }
    }
    if let Some(pm) = &archive.profile_meta {
        if pm.samples != archive.profile_mem.len() as u64 {
            problems.push(format!(
                "profile_meta declares {} samples, archive contains {}",
                pm.samples,
                archive.profile_mem.len()
            ));
        }
    }
    if nonempty_lines == 0 {
        problems.push("empty archive".to_string());
    } else {
        if !saw_header {
            problems.push("no header record".to_string());
        }
        match summary_line {
            None => problems.push("no summary record".to_string()),
            Some(at) if at != nonempty_lines => {
                problems.push("summary record is not the last record".to_string());
            }
            Some(_) => {}
        }
    }
    (archive, problems)
}

fn num_field(v: &Json, name: &str, ty: &str, lineno: usize, problems: &mut Vec<String>) -> u64 {
    match v.get(name).and_then(Json::as_u64) {
        Some(x) => x,
        None => {
            problems.push(format!(
                "line {lineno}: {ty} record missing numeric \"{name}\""
            ));
            0
        }
    }
}

fn f64_field(v: &Json, name: &str, ty: &str, lineno: usize, problems: &mut Vec<String>) -> f64 {
    match v.get(name).and_then(Json::as_f64) {
        Some(x) => x,
        None => {
            problems.push(format!(
                "line {lineno}: {ty} record missing numeric \"{name}\""
            ));
            0.0
        }
    }
}

fn str_field(v: &Json, name: &str, lineno: usize, problems: &mut Vec<String>) -> String {
    match v.get(name).and_then(Json::as_str) {
        Some(s) => s.to_string(),
        None => {
            problems.push(format!("line {lineno}: missing string \"{name}\""));
            String::new()
        }
    }
}

fn bool_field(v: &Json, name: &str, lineno: usize, problems: &mut Vec<String>) -> bool {
    match v.get(name).and_then(Json::as_bool) {
        Some(b) => b,
        None => {
            problems.push(format!("line {lineno}: missing boolean \"{name}\""));
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RoundObs, RunMeta, RunOutcomeObs};
    use crate::span::Phase;
    use std::time::Instant;

    fn sample_archive_text() -> String {
        let mut rec = Recorder::new(RunMeta {
            algorithm: "name-dropper".into(),
            topology: "k-out-3".into(),
            n: 128,
            seed: u64::MAX - 1,
            engine: "sharded:4".into(),
            workers: 4,
            latency_model: None,
        });
        for r in 1..=4u64 {
            rec.begin_round();
            for w in 0..4 {
                rec.span_from(Phase::OnRound, r, w, Instant::now());
                rec.span_from(Phase::RouteShard, r, w, Instant::now());
            }
            rec.span_from(Phase::FinishRound, r, 0, Instant::now());
            rec.end_round(RoundObs {
                round: r,
                wall_ns: 0,
                messages: 100 + r,
                pointers: 300 + r,
                dropped_coin: r % 2,
                dropped_crash: 0,
                dropped_partition: 0,
                dropped_link: 0,
                dropped_suppression: 0,
                retransmissions: 1,
                knowledge_delta: None,
            });
        }
        let report = rec
            .finish(
                RunOutcomeObs {
                    verdict: "complete-sound".into(),
                    completed: true,
                    sound: true,
                    rounds: 4,
                    messages: 410,
                    pointers: 1210,
                    trace_events: 77,
                    trace_overflow: 3,
                    last_progress: None,
                },
                &[9, 1, 4],
                &[2, 8, 4],
                &[(0, 500), (1, 600), (2, 640), (3, 680), (4, 700)],
                &[("delay", 8, 5)],
            )
            .unwrap();
        render(&report)
    }

    #[test]
    fn rendered_archives_validate_and_round_trip() {
        let text = sample_archive_text();
        assert_eq!(validate(&text), Vec::<String>::new());
        let a = parse(&text).unwrap();
        // No causal section: stays on schema 1 so v1 readers keep working.
        assert_eq!(a.header.schema, 1);
        assert!(a.trace_meta.is_none());
        assert!(a.edges.is_empty());
        assert_eq!(a.header.seed, (u64::MAX - 1).to_string());
        assert_eq!(a.rounds.len(), 4);
        assert_eq!(a.rounds[1].knowledge_delta, Some(40));
        assert_eq!(a.summary.trace_overflow, 3);
        assert_eq!(a.counters["retransmissions_total"], 4);
        assert_eq!(a.hot["sent"][0], (0, 9));
        assert!(a.phases.iter().any(|p| p.phase == "route_shard"));
        assert_eq!(a.workers.len(), 4);
    }

    fn sample_v2_archive_text() -> String {
        let mut rec = Recorder::new(RunMeta {
            algorithm: "hm".into(),
            topology: "k-out-3".into(),
            n: 8,
            seed: 7,
            engine: "sequential".into(),
            workers: 1,
            latency_model: None,
        });
        rec.begin_round();
        rec.end_round(RoundObs {
            round: 1,
            wall_ns: 0,
            messages: 3,
            pointers: 5,
            dropped_coin: 0,
            dropped_crash: 0,
            dropped_partition: 0,
            dropped_link: 0,
            dropped_suppression: 0,
            retransmissions: 0,
            knowledge_delta: None,
        });
        let mut causal = crate::trace::CausalTrace::new(64, 1_000_000);
        causal.offer(crate::trace::ProvEdge {
            id: 3,
            node: 1,
            src: 0,
            sent: 1,
            round: 2,
            seq: 0,
        });
        causal.offer(crate::trace::ProvEdge {
            id: 4,
            node: 2,
            src: 3,
            sent: 1,
            round: 2,
            seq: 1,
        });
        rec.attach_causal(causal);
        let report = rec
            .finish(
                RunOutcomeObs {
                    verdict: "complete".into(),
                    completed: true,
                    sound: true,
                    rounds: 2,
                    messages: 3,
                    pointers: 5,
                    trace_events: 0,
                    trace_overflow: 0,
                    last_progress: None,
                },
                &[],
                &[],
                &[],
                &[],
            )
            .unwrap();
        render(&report)
    }

    #[test]
    fn causal_sections_render_as_schema_2_and_round_trip() {
        let text = sample_v2_archive_text();
        assert_eq!(validate(&text), Vec::<String>::new());
        let a = parse(&text).unwrap();
        assert_eq!(a.header.schema, 2);
        let tm = a.trace_meta.as_ref().unwrap();
        assert_eq!(tm.edges, 2);
        assert_eq!(tm.sample_ppm, 1_000_000);
        assert_eq!(a.edges.len(), 2);
        assert_eq!(
            a.edges[0],
            EdgeRec {
                id: 3,
                node: 1,
                src: 0,
                sent: 1,
                round: 2,
                seq: 0
            }
        );
        assert_eq!(a.counters["causal_edges_total"], 2);
    }

    fn sample_v3_archive_text() -> String {
        let mut rec = Recorder::new(RunMeta {
            algorithm: "hm".into(),
            topology: "k-out-3".into(),
            n: 16,
            seed: 3,
            engine: "sharded:2".into(),
            workers: 2,
            latency_model: None,
        })
        .with_profiling();
        rec.profile_msg_kind("Rumor", 40, 4);
        for r in 1..=3u64 {
            rec.begin_round();
            for w in 0..2 {
                rec.span_from(Phase::OnRound, r, w, Instant::now());
            }
            rec.span_from(Phase::FinishRound, r, 0, Instant::now());
            rec.profile_memory(r, 512 * r);
            rec.end_round(RoundObs {
                round: r,
                wall_ns: 0,
                messages: 10,
                pointers: 20,
                dropped_coin: 0,
                dropped_crash: 0,
                dropped_partition: 0,
                dropped_link: 0,
                dropped_suppression: 0,
                retransmissions: 0,
                knowledge_delta: None,
            });
        }
        rec.profile_pool_high_water(&[("env", 2048)]);
        let report = rec
            .finish(
                RunOutcomeObs {
                    verdict: "complete-sound".into(),
                    completed: true,
                    sound: true,
                    rounds: 3,
                    messages: 30,
                    pointers: 60,
                    trace_events: 0,
                    trace_overflow: 0,
                    last_progress: None,
                },
                &[1, 2],
                &[2, 1],
                &[],
                &[("env", 6, 4)],
            )
            .unwrap();
        render(&report)
    }

    #[test]
    fn profiled_archives_render_as_schema_3_and_round_trip() {
        let text = sample_v3_archive_text();
        assert_eq!(validate(&text), Vec::<String>::new());
        let a = parse(&text).unwrap();
        assert_eq!(a.header.schema, 3);
        // Profiling without causal tracing: no v2 section.
        assert!(a.trace_meta.is_none());
        let pm = a.profile_meta.as_ref().unwrap();
        assert_eq!(pm.samples, 3);
        assert_eq!(pm.peak_knowledge_bytes, 512 * 3);
        assert_eq!(pm.peak_pool_bytes, 2048);
        assert!(pm.peak_rss_bytes >= pm.peak_knowledge_bytes + pm.peak_pool_bytes);
        assert!(a.profile_phases.iter().any(|p| p.phase == "on_round"));
        assert_eq!(a.profile_msgs.len(), 1);
        assert_eq!(a.profile_msgs[0].kind, "Rumor");
        assert_eq!(a.profile_msgs[0].envelopes, 30);
        assert_eq!(a.profile_msgs[0].payload_bytes, 30 * 40 + 60 * 4);
        assert_eq!(a.profile_mem.len(), 3);
        assert_eq!(a.profile_mem[2].round, 3);
        assert_eq!(a.profile_mem[2].knowledge_bytes, 1536);
    }

    #[test]
    fn v3_records_are_rejected_under_lower_schemas() {
        let text = sample_v3_archive_text();
        for downgrade in ["\"schema\":1", "\"schema\":2"] {
            let downgraded = text.replace("\"schema\":3", downgrade);
            assert!(
                validate(&downgraded)
                    .iter()
                    .any(|p| p.contains("requires schema 3")),
                "downgrade to {downgrade} must be rejected"
            );
        }
    }

    #[test]
    fn profile_section_structure_is_validated() {
        let text = sample_v3_archive_text();
        // Drop one memory sample: profile_meta's count no longer holds.
        let truncated: String = text
            .lines()
            .filter(|l| !(l.contains("profile_mem") && l.contains("\"round\":2")))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate(&truncated)
            .iter()
            .any(|p| p.contains("declares 3 samples, archive contains 2")));

        // Swap two memory samples: round order breaks.
        let mut lines: Vec<&str> = text.lines().collect();
        let first_mem = lines
            .iter()
            .position(|l| l.contains("\"type\":\"profile_mem\""))
            .unwrap();
        lines.swap(first_mem, first_mem + 1);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(validate(&swapped)
            .iter()
            .any(|p| p.contains("out of order")));

        // A profile row with no preceding profile_meta is orphaned.
        let orphaned: String = text
            .lines()
            .filter(|l| !l.contains("\"type\":\"profile_meta\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate(&orphaned)
            .iter()
            .any(|p| p.contains("before any profile_meta")));
    }

    fn sample_v4_archive_text() -> String {
        let mut rec = Recorder::new(RunMeta {
            algorithm: "hm".into(),
            topology: "k-out-3".into(),
            n: 32,
            seed: 11,
            engine: "sequential".into(),
            workers: 1,
            latency_model: None,
        });
        rec.begin_round();
        rec.end_round(RoundObs {
            round: 1,
            wall_ns: 0,
            messages: 4,
            pointers: 8,
            dropped_coin: 0,
            dropped_crash: 0,
            dropped_partition: 0,
            dropped_link: 0,
            dropped_suppression: 0,
            retransmissions: 0,
            knowledge_delta: None,
        });
        rec.record_alert(crate::monitor::Alert {
            rule: "stall".into(),
            round: 40,
            value: 40.0,
            threshold: 5.0,
            message: "no knowledge growth for 40 rounds".into(),
        });
        rec.record_alert(crate::monitor::Alert {
            rule: "drop-rate".into(),
            round: 40,
            value: 0.95,
            threshold: 0.9,
            message: "drop ratio 0.95 exceeds 0.9".into(),
        });
        let report = rec
            .finish(
                RunOutcomeObs {
                    verdict: "stalled".into(),
                    completed: false,
                    sound: true,
                    rounds: 40,
                    messages: 4,
                    pointers: 8,
                    trace_events: 0,
                    trace_overflow: 0,
                    last_progress: Some(1),
                },
                &[],
                &[],
                &[],
                &[],
            )
            .unwrap();
        render(&report)
    }

    #[test]
    fn alert_archives_render_as_schema_4_and_round_trip() {
        let text = sample_v4_archive_text();
        assert_eq!(validate(&text), Vec::<String>::new());
        let a = parse(&text).unwrap();
        assert_eq!(a.header.schema, 4);
        assert_eq!(a.alerts.len(), 2);
        assert_eq!(a.alerts[0].rule, "stall");
        assert_eq!(a.alerts[0].round, 40);
        assert!((a.alerts[1].value - 0.95).abs() < 1e-9);
        assert_eq!(a.counters["alerts_total"], 2);
        // Same round twice is fine (two rules firing together).
        assert_eq!(a.alerts[1].round, a.alerts[0].round);
    }

    #[test]
    fn v4_records_are_rejected_under_lower_schemas() {
        let text = sample_v4_archive_text();
        for downgrade in ["\"schema\":1", "\"schema\":2", "\"schema\":3"] {
            let downgraded = text.replace("\"schema\":4", downgrade);
            assert!(
                validate(&downgraded)
                    .iter()
                    .any(|p| p.contains("requires schema 4")),
                "downgrade to {downgrade} must be rejected"
            );
        }
    }

    #[test]
    fn alert_free_archives_keep_their_pre_v4_schema() {
        // No alerts + no profile + no causal ⇒ still schema 1: a live
        // run on which nothing fired archives byte-identically to
        // builds without the monitor.
        assert!(sample_archive_text().contains("\"schema\":1"));
        assert!(sample_v3_archive_text().contains("\"schema\":3"));
    }

    #[test]
    fn v2_records_are_rejected_under_schema_1() {
        let text = sample_v2_archive_text();
        let downgraded = text.replace("\"schema\":2", "\"schema\":1");
        assert!(validate(&downgraded)
            .iter()
            .any(|p| p.contains("requires schema 2")));
    }

    #[test]
    fn edge_order_and_counts_are_validated() {
        let text = sample_v2_archive_text();
        // Swap the two edge lines: (id, node) order breaks.
        let mut lines: Vec<&str> = text.lines().collect();
        let first_edge = lines
            .iter()
            .position(|l| l.contains("\"type\":\"edge\""))
            .unwrap();
        lines.swap(first_edge, first_edge + 1);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(validate(&swapped)
            .iter()
            .any(|p| p.contains("out of (id, node) order")));

        // Drop one edge line: trace_meta's count no longer matches.
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("\"id\":4"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate(&truncated)
            .iter()
            .any(|p| p.contains("declares 2 edges, archive contains 1")));
    }

    #[test]
    fn validate_rejects_schema_drift() {
        let text = sample_archive_text();
        let bumped = text.replace("\"schema\":1", "\"schema\":999");
        assert!(validate(&bumped)
            .iter()
            .any(|p| p.contains("unsupported schema 999")));

        let unknown = text.replace("\"type\":\"worker\"", "\"type\":\"wurker\"");
        assert!(validate(&unknown)
            .iter()
            .any(|p| p.contains("unknown record type")));
    }

    #[test]
    fn validate_rejects_structural_damage() {
        let text = sample_archive_text();
        // Drop the summary line.
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("\"type\":\"summary\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate(&truncated)
            .iter()
            .any(|p| p.contains("no summary record")));

        // Reorder so the header is not first.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(0, 1);
        let swapped = lines.join("\n");
        let problems = validate(&swapped);
        assert!(problems.iter().any(|p| p.contains("first record")));

        assert!(validate("").iter().any(|p| p.contains("empty archive")));
    }
}
