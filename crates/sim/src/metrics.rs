//! Complexity accounting: rounds, messages, pointers, bits, and
//! per-node maxima.

use crate::faults::DropCause;
use crate::message::HEADER_BITS;

/// Messages lost to fault injection, broken down by cause.
///
/// This is the *single* source of truth for drop accounting: the total
/// is always [`DropTally::total`], never a separately maintained field
/// that could drift from the per-cause counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropTally {
    /// Losses to the independent drop coin.
    pub coin: u64,
    /// Messages addressed to a dead node.
    pub crash: u64,
    /// Messages blocked by an active partition.
    pub partition: u64,
    /// Losses on lossy links (the per-link loss overlay's coin).
    pub link: u64,
    /// Sends suppressed by an adversarial campaign.
    pub suppression: u64,
}

impl DropTally {
    /// Total messages dropped, across every cause.
    pub fn total(&self) -> u64 {
        self.coin + self.crash + self.partition + self.link + self.suppression
    }

    /// Charges one drop to its cause.
    pub fn add(&mut self, cause: DropCause) {
        match cause {
            DropCause::Coin => self.coin += 1,
            DropCause::Crash => self.crash += 1,
            DropCause::Partition => self.partition += 1,
            DropCause::Link => self.link += 1,
            DropCause::Suppression => self.suppression += 1,
        }
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &DropTally) {
        self.coin += other.coin;
        self.crash += other.crash;
        self.partition += other.partition;
        self.link += other.link;
        self.suppression += other.suppression;
    }
}

/// Communication volume of a single round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Messages delivered (sent minus dropped) out of this round.
    pub messages: u64,
    /// Pointers carried by those messages.
    pub pointers: u64,
    /// Messages discarded by fault injection, by cause.
    pub drops: DropTally,
    /// Retransmission attempts charged to this round (reliable delivery
    /// only; each is also counted in `messages` or `drops`).
    pub retransmissions: u64,
}

impl RoundMetrics {
    /// Total messages dropped this round (shorthand for
    /// `self.drops.total()`).
    pub fn dropped(&self) -> u64 {
        self.drops.total()
    }
}

/// One node's send/receive tallies, kept together so the routing hot
/// path touches a single cache line per endpoint instead of four
/// parallel `Vec<u64>` lanes (two random-access miss streams per
/// delivered message before the consolidation, one after).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLane {
    /// Messages this node sent (delivered plus dropped).
    pub sent_messages: u64,
    /// Pointers this node sent.
    pub sent_pointers: u64,
    /// Messages this node received.
    pub recv_messages: u64,
    /// Pointers this node received.
    pub recv_pointers: u64,
}

/// Cumulative complexity record of a run.
///
/// Tracks the per-round series (for figures such as F3) and per-node
/// send/receive totals (for the per-node maxima the literature reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMetrics {
    rounds: Vec<RoundMetrics>,
    nodes: Vec<NodeLane>,
    detector_retractions: u64,
}

impl RunMetrics {
    /// Creates an empty record for `n` nodes.
    pub fn new(n: usize) -> Self {
        RunMetrics {
            rounds: Vec::new(),
            nodes: vec![NodeLane::default(); n],
            detector_retractions: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Opens accounting for a new round.
    pub(crate) fn begin_round(&mut self) {
        self.rounds.push(RoundMetrics::default());
    }

    /// Splits the record into independently borrowable lanes for the
    /// routing hot path: the current round's row plus the per-node
    /// tally array. Hoists the `rounds.last_mut()` lookup out of the
    /// per-message loop and lets the parallel router hand disjoint
    /// per-shard slices of the node array to its workers.
    ///
    /// # Panics
    ///
    /// Panics if no round is open (`begin_round` not called).
    pub(crate) fn lanes(&mut self) -> MetricsLanes<'_> {
        MetricsLanes {
            row: self.rounds.last_mut().expect("begin_round not called"),
            nodes: &mut self.nodes,
        }
    }

    /// Number of rounds executed so far.
    pub fn round_count(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Per-round series.
    pub fn rounds(&self) -> &[RoundMetrics] {
        &self.rounds
    }

    /// Total messages sent across the run (delivered plus dropped).
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages + r.dropped()).sum()
    }

    /// Total pointers carried by delivered messages.
    pub fn total_pointers(&self) -> u64 {
        self.rounds.iter().map(|r| r.pointers).sum()
    }

    /// Total messages lost to fault injection.
    pub fn total_dropped(&self) -> u64 {
        self.drop_tally().total()
    }

    /// Run-wide drop tally, by cause.
    pub fn drop_tally(&self) -> DropTally {
        let mut tally = DropTally::default();
        for r in &self.rounds {
            tally.merge(&r.drops);
        }
        tally
    }

    /// Total retransmission attempts made by the reliable-delivery
    /// layer (each also appears in `total_messages`).
    pub fn total_retransmissions(&self) -> u64 {
        self.rounds.iter().map(|r| r.retransmissions).sum()
    }

    /// Number of suspicions the failure detector retracted after a
    /// node's recovery.
    pub fn detector_retractions(&self) -> u64 {
        self.detector_retractions
    }

    /// Records one retracted suspicion.
    pub(crate) fn record_retraction(&mut self) {
        self.detector_retractions += 1;
    }

    /// Total bit complexity given an identifier width of
    /// `⌈log₂ n⌉` bits (plus [`HEADER_BITS`] per message).
    pub fn total_bits(&self) -> u64 {
        let n = self.node_count().max(2) as u64;
        let id_bits = 64 - (n - 1).leading_zeros() as u64;
        self.total_pointers() * id_bits + self.total_messages() * HEADER_BITS
    }

    /// Per-node send/receive tallies, indexed by node id.
    pub fn node_lanes(&self) -> &[NodeLane] {
        &self.nodes
    }

    /// Per-node sent-message totals, indexed by node id (observability
    /// reads these for the hot-sender top-k).
    pub fn per_node_sent_messages(&self) -> Vec<u64> {
        self.nodes.iter().map(|l| l.sent_messages).collect()
    }

    /// Per-node received-message totals, indexed by node id.
    pub fn per_node_recv_messages(&self) -> Vec<u64> {
        self.nodes.iter().map(|l| l.recv_messages).collect()
    }

    /// Maximum number of messages any single node sent.
    pub fn max_sent_messages(&self) -> u64 {
        self.nodes
            .iter()
            .map(|l| l.sent_messages)
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of messages any single node received.
    pub fn max_recv_messages(&self) -> u64 {
        self.nodes
            .iter()
            .map(|l| l.recv_messages)
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of pointers any single node sent.
    pub fn max_sent_pointers(&self) -> u64 {
        self.nodes
            .iter()
            .map(|l| l.sent_pointers)
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of pointers any single node received.
    pub fn max_recv_pointers(&self) -> u64 {
        self.nodes
            .iter()
            .map(|l| l.recv_pointers)
            .max()
            .unwrap_or(0)
    }

    /// Mean messages sent per node.
    pub fn mean_messages_per_node(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        self.total_messages() as f64 / self.node_count() as f64
    }
}

/// Converts a closed metrics row into the telemetry layer's per-round
/// record (`wall_ns` and `knowledge_delta` are filled in by the
/// recorder/driver, not here — they are not deterministic state).
pub fn round_obs(round: u64, row: &RoundMetrics) -> rd_obs::RoundObs {
    rd_obs::RoundObs {
        round,
        wall_ns: 0,
        messages: row.messages,
        pointers: row.pointers,
        dropped_coin: row.drops.coin,
        dropped_crash: row.drops.crash,
        dropped_partition: row.drops.partition,
        dropped_link: row.drops.link,
        dropped_suppression: row.drops.suppression,
        retransmissions: row.retransmissions,
        knowledge_delta: None,
    }
}

/// Split borrows of a [`RunMetrics`] for the routing hot path; see
/// [`RunMetrics::lanes`].
pub(crate) struct MetricsLanes<'a> {
    /// The open round's row.
    pub row: &'a mut RoundMetrics,
    /// Per-node send/receive tallies.
    pub nodes: &'a mut [NodeLane],
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shorthand for what routing does per delivered message.
    fn deliver(m: &mut RunMetrics, src: usize, dst: usize, pointers: u64) {
        let lanes = m.lanes();
        lanes.row.messages += 1;
        lanes.row.pointers += pointers;
        lanes.nodes[src].sent_messages += 1;
        lanes.nodes[src].sent_pointers += pointers;
        lanes.nodes[dst].recv_messages += 1;
        lanes.nodes[dst].recv_pointers += pointers;
    }

    /// Test shorthand for what routing does per dropped message (the
    /// sender still pays for it; the receiver never sees it).
    fn drop_one(m: &mut RunMetrics, src: usize, pointers: u64) {
        let lanes = m.lanes();
        lanes.row.drops.add(DropCause::Coin);
        lanes.nodes[src].sent_messages += 1;
        lanes.nodes[src].sent_pointers += pointers;
    }

    #[test]
    fn empty_run_is_all_zero() {
        let m = RunMetrics::new(4);
        assert_eq!(m.round_count(), 0);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.total_pointers(), 0);
        assert_eq!(m.max_sent_messages(), 0);
    }

    #[test]
    fn deliveries_accumulate_per_round_and_per_node() {
        let mut m = RunMetrics::new(3);
        m.begin_round();
        deliver(&mut m, 0, 1, 5);
        deliver(&mut m, 0, 2, 2);
        m.begin_round();
        deliver(&mut m, 2, 0, 1);

        assert_eq!(m.round_count(), 2);
        assert_eq!(m.rounds()[0].messages, 2);
        assert_eq!(m.rounds()[0].pointers, 7);
        assert_eq!(m.rounds()[1].messages, 1);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_pointers(), 8);
        assert_eq!(m.max_sent_messages(), 2);
        assert_eq!(m.max_sent_pointers(), 7);
        assert_eq!(m.max_recv_messages(), 1);
        assert_eq!(m.max_recv_pointers(), 5);
    }

    #[test]
    fn drops_charge_sender_only() {
        let mut m = RunMetrics::new(2);
        m.begin_round();
        drop_one(&mut m, 0, 4);
        assert_eq!(m.total_dropped(), 1);
        assert_eq!(m.total_messages(), 1, "sender pays for dropped messages");
        assert_eq!(m.total_pointers(), 0, "dropped pointers are not delivered");
        assert_eq!(m.max_recv_messages(), 0);
    }

    #[test]
    fn drops_split_by_cause_and_retractions_tally() {
        let mut m = RunMetrics::new(4);
        m.begin_round();
        drop_one(&mut m, 0, 1);
        {
            let lanes = m.lanes();
            lanes.row.drops.add(DropCause::Crash);
            lanes.row.drops.add(DropCause::Partition);
            lanes.row.retransmissions += 3;
        }
        m.record_retraction();
        assert_eq!(m.total_dropped(), 3);
        let tally = m.drop_tally();
        assert_eq!((tally.coin, tally.crash, tally.partition), (1, 1, 1));
        assert_eq!(m.total_retransmissions(), 3);
        assert_eq!(m.detector_retractions(), 1);
    }

    #[test]
    fn bit_complexity_uses_id_width() {
        let mut m = RunMetrics::new(1024);
        m.begin_round();
        deliver(&mut m, 0, 1, 10);
        // 10 pointers * 10 bits + 1 message * header.
        assert_eq!(m.total_bits(), 100 + HEADER_BITS);
    }

    #[test]
    fn mean_messages_per_node() {
        let mut m = RunMetrics::new(4);
        m.begin_round();
        deliver(&mut m, 0, 1, 0);
        deliver(&mut m, 1, 2, 0);
        assert!((m.mean_messages_per_node() - 0.5).abs() < 1e-12);
    }
}
