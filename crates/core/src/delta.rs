//! Delta-encoded knowledge transfers: per-neighbor high-water marks.
//!
//! A node that repeatedly gossips to the *same* peers wastes bandwidth
//! resending ids the peer was already told. Because a
//! [`KnowledgeSet`](crate::KnowledgeSet)'s learning-order list is
//! append-only, "everything I learned since I last sent to `p`" is just
//! a suffix `list[mark_p..]` — no per-id bookkeeping, no set
//! difference, one `usize` per neighbor. [`DeltaFrontier`] stores those
//! marks and hands back the suffix to ship.
//!
//! Correctness under loss: a mark must only advance when delivery is
//! certain. On an unreliable link, advance the mark optimistically and
//! [`rewind`](DeltaFrontier::rewind) to the pre-send mark when the
//! retransmission timer fires — the resend then covers the lost suffix
//! (supersets are fine: knowledge merges are idempotent). The
//! round-trip property test in `crates/core/tests/prop_delta.rs` drives
//! exactly this drop/retransmit loop.
//!
//! When deltas pay — and when they don't: the frontier only saves work
//! if it *empties*. Fixed-neighbor flooding converges to empty deltas
//! and quiesces, so [`FloodingNode`](crate::algorithms::flooding) uses
//! marks natively. The bench gossip workload
//! (`rd-bench::workload`) was measured to be the opposite case —
//! random-peer push means a sender has almost always learned something
//! since it last met any given peer, so per-peer marks suppressed <10%
//! of messages while costing extra bookkeeping; that workload ships
//! full windows on purpose.

use rd_sim::NodeId;
use std::collections::HashMap;

use crate::KnowledgeSet;

/// Per-neighbor high-water marks over a knowledge set's learning-order
/// list.
///
/// # Example
///
/// ```
/// use rd_core::delta::DeltaFrontier;
/// use rd_core::KnowledgeSet;
/// use rd_sim::NodeId;
///
/// let mut k = KnowledgeSet::new(NodeId::new(0));
/// k.insert_untracked(NodeId::new(7));
/// let mut front = DeltaFrontier::new();
/// let peer = NodeId::new(7);
/// // First contact: everything (the caller typically ships this as a
/// // full greeting anyway).
/// assert_eq!(front.delta(peer, &k).len(), 2);
/// front.advance(peer, &k);
/// // Nothing learned since: empty delta, nothing to send.
/// assert!(front.delta(peer, &k).is_empty());
/// k.insert_untracked(NodeId::new(9));
/// assert_eq!(front.delta(peer, &k), &[NodeId::new(9)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeltaFrontier {
    marks: HashMap<NodeId, usize>,
}

impl DeltaFrontier {
    /// An empty frontier: every peer is at mark 0 (never contacted).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current mark for `peer` (0 if never advanced).
    pub fn mark(&self, peer: NodeId) -> usize {
        self.marks.get(&peer).copied().unwrap_or(0)
    }

    /// The ids `peer` has not yet been sent: the suffix of `knowledge`'s
    /// learning-order list past this peer's mark.
    pub fn delta<'k>(&self, peer: NodeId, knowledge: &'k KnowledgeSet) -> &'k [NodeId] {
        knowledge.since(self.mark(peer))
    }

    /// Records that `peer` has now been sent everything currently in
    /// `knowledge`; returns the *previous* mark (keep it if the link is
    /// unreliable, to [`rewind`](Self::rewind) on a timeout).
    pub fn advance(&mut self, peer: NodeId, knowledge: &KnowledgeSet) -> usize {
        self.marks.insert(peer, knowledge.mark()).unwrap_or(0)
    }

    /// Rolls `peer`'s mark back to `mark` — after a send is known (or
    /// presumed) lost, so the next delta re-covers the lost suffix.
    /// Never moves a mark forward.
    pub fn rewind(&mut self, peer: NodeId, mark: usize) {
        let entry = self.marks.entry(peer).or_insert(0);
        *entry = (*entry).min(mark);
    }

    /// Forgets `peer` entirely (e.g. after it is declared crashed); the
    /// next delta for it is the full list again.
    pub fn forget(&mut self, peer: NodeId) {
        self.marks.remove(&peer);
    }

    /// Number of peers with a recorded mark.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// `true` if no peer has ever been advanced.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn first_contact_ships_everything_then_only_news() {
        let mut k = KnowledgeSet::new(id(0));
        k.insert_untracked(id(3));
        let mut f = DeltaFrontier::new();
        assert_eq!(f.delta(id(3), &k), &[id(0), id(3)]);
        f.advance(id(3), &k);
        assert!(f.delta(id(3), &k).is_empty());
        k.insert_untracked(id(8));
        k.insert_untracked(id(5));
        assert_eq!(f.delta(id(3), &k), &[id(8), id(5)]);
    }

    #[test]
    fn marks_are_independent_per_peer() {
        let mut k = KnowledgeSet::new(id(0));
        let mut f = DeltaFrontier::new();
        f.advance(id(1), &k);
        k.insert_untracked(id(9));
        assert!(f.delta(id(1), &k) == [id(9)]);
        assert_eq!(f.delta(id(2), &k), &[id(0), id(9)]);
    }

    #[test]
    fn rewind_recovers_lost_suffix_and_never_advances() {
        let mut k = KnowledgeSet::new(id(0));
        k.insert_untracked(id(4));
        let mut f = DeltaFrontier::new();
        let before = f.advance(id(4), &k);
        assert_eq!(before, 0);
        k.insert_untracked(id(6));
        let before = f.advance(id(4), &k); // this send gets "lost"
        f.rewind(id(4), before);
        assert_eq!(f.delta(id(4), &k), &[id(6)]);
        // Rewinding to a later mark is a no-op.
        f.rewind(id(4), usize::MAX);
        assert_eq!(f.delta(id(4), &k), &[id(6)]);
    }

    #[test]
    fn forget_resets_to_full_list() {
        let k = KnowledgeSet::new(id(0));
        let mut f = DeltaFrontier::new();
        f.advance(id(1), &k);
        assert_eq!(f.len(), 1);
        f.forget(id(1));
        assert!(f.is_empty());
        assert_eq!(f.delta(id(1), &k), &[id(0)]);
    }
}
