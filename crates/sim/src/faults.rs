//! Fault injection: independent message drops, crash-stop and
//! crash-recovery failures, network partitions, continuous churn,
//! per-link loss, targeted message suppression, and an optional perfect
//! failure detector.

use crate::rng::{derive_seed, split_mix64};
use std::collections::BTreeMap;

/// Why the fault layer discarded a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// Lost to the independent per-message drop coin.
    Coin,
    /// Addressed to a node that is dead at delivery time.
    Crash,
    /// Blocked by an active network partition.
    Partition,
    /// Lost on a lossy link (the per-link loss overlay's coin).
    Link,
    /// Suppressed by the adversarial edge-suppression campaign.
    Suppression,
}

/// RNG domain labels for the campaign coins ("chur", "link", "supp").
/// Distinct from the node/route/retry/latency/provenance domains, so no
/// campaign can perturb any protocol or routing stream.
const CHURN_DOMAIN: u64 = 0x6368_7572;
const LINK_DOMAIN: u64 = 0x6c69_6e6b;
const SUPP_DOMAIN: u64 = 0x7375_7070;

/// Deterministic continuous churn: nodes independently nap (crash and
/// recover with state intact) in repeating cycles, so arrivals balance
/// departures in steady state.
///
/// Whether node `i` naps in cycle `c`, and where inside the cycle its
/// nap starts, are pure functions of `(spec seed, i, c)` via a dedicated
/// counter-based hash — no stream is consumed, so the generator is
/// bit-identical across engines and worker counts, and scheduling churn
/// never shifts any other coin. The spec carries its *own* seed (the
/// scenario layer typically passes the run seed through) because a
/// [`FaultPlan`] never sees the run seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    seed: u64,
    start: u64,
    end: u64,
    cycle: u64,
    down: u64,
    rate_ppm: u32,
}

impl ChurnSpec {
    /// A churn regime active over rounds `[start, end)`: each node, in
    /// each `cycle`-round slot, naps for `down` consecutive rounds with
    /// probability `rate_ppm` parts per million (the nap's offset inside
    /// the cycle is drawn uniformly so naps de-synchronize).
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`, `cycle == 0`, `down == 0`,
    /// `down > cycle`, or `rate_ppm > 1_000_000`.
    pub fn new(seed: u64, start: u64, end: u64, cycle: u64, down: u64, rate_ppm: u32) -> Self {
        assert!(
            start < end,
            "churn window [{start}, {end}) empty or inverted"
        );
        assert!(cycle >= 1, "churn cycle must be >= 1 round");
        assert!(
            (1..=cycle).contains(&down),
            "churn nap length {down} outside 1..={cycle}"
        );
        assert!(
            rate_ppm <= 1_000_000,
            "churn rate {rate_ppm} ppm above 1_000_000"
        );
        ChurnSpec {
            seed,
            start,
            end,
            cycle,
            down,
            rate_ppm,
        }
    }

    /// The round the regime starts (inclusive).
    pub fn start(&self) -> u64 {
        self.start
    }

    /// The round the regime ends (exclusive). Every nap is clipped here:
    /// after `end` the whole population is guaranteed up.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The per-`(node, cycle)` coin base. Purely a function of the spec
    /// seed, the node, and the cycle index.
    fn coin(&self, node: usize, cycle: u64) -> u64 {
        derive_seed(self.seed, CHURN_DOMAIN, node as u64, cycle)
    }

    /// The nap window of `node` in cycle `c`, as absolute rounds
    /// `[down_at, up_at)`, if the node naps that cycle at all.
    fn nap_window(&self, node: usize, c: u64) -> Option<(u64, u64)> {
        let base = self.coin(node, c);
        if base % 1_000_000 >= self.rate_ppm as u64 {
            return None;
        }
        // A second, independent draw positions the nap so the window
        // always fits inside the cycle (offset <= cycle - down).
        let offset = split_mix64(base) % (self.cycle - self.down + 1);
        let down_at = self.start + c * self.cycle + offset;
        let up_at = (down_at + self.down).min(self.end);
        (down_at < self.end).then_some((down_at, up_at))
    }

    /// Whether `node` is napping during `round`. O(1) and pure in
    /// `(spec, node, round)`.
    pub fn is_down(&self, node: usize, round: u64) -> bool {
        if round < self.start || round >= self.end {
            return false;
        }
        let c = (round - self.start) / self.cycle;
        self.nap_window(node, c)
            .is_some_and(|(down_at, up_at)| round >= down_at && round < up_at)
    }

    /// Every nap of `node` over the whole regime, as `(down, up)` round
    /// pairs in schedule order (the failure detector expands these into
    /// suspect/retract reports).
    pub fn naps(&self, node: usize) -> Vec<(u64, u64)> {
        let cycles = (self.end - self.start).div_ceil(self.cycle);
        (0..cycles)
            .filter_map(|c| self.nap_window(node, c))
            .collect()
    }
}

/// A deterministic per-link loss overlay: a fixed fraction of *ordered*
/// `(src, dst)` node pairs is lossy, and messages on a lossy link drop
/// with an elevated probability. Which links are lossy is a pure
/// function of `(spec seed, src, dst)` — and since the two directions
/// of a pair hash independently, the overlay is asymmetric by
/// construction (one direction of a link can be lossy while the reverse
/// is clean).
///
/// The elevated probability *replaces* the plan's base drop probability
/// on lossy links when it is larger; the drop coin itself still comes
/// from the per-message route/retry streams, so enabling the overlay
/// never re-keys any fate and stays bit-identical across engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLossSpec {
    seed: u64,
    fraction_ppm: u32,
    loss_ppm: u32,
}

impl LinkLossSpec {
    /// Marks `fraction_ppm` parts per million of ordered links lossy,
    /// each dropping messages with probability `loss_ppm` ppm.
    ///
    /// # Panics
    ///
    /// Panics if `fraction_ppm` is 0 or above 1_000_000, or `loss_ppm`
    /// is 0 or not below 1_000_000 (a link that drops everything can
    /// never deliver, so it is rejected like a drop probability of 1).
    pub fn new(seed: u64, fraction_ppm: u32, loss_ppm: u32) -> Self {
        assert!(
            (1..=1_000_000).contains(&fraction_ppm),
            "lossy-link fraction {fraction_ppm} ppm outside 1..=1_000_000"
        );
        assert!(
            (1..1_000_000).contains(&loss_ppm),
            "link loss {loss_ppm} ppm outside 1..1_000_000"
        );
        LinkLossSpec {
            seed,
            fraction_ppm,
            loss_ppm,
        }
    }

    /// Whether the ordered link `src -> dst` is lossy. Pure in
    /// `(spec seed, src, dst)`.
    pub fn is_lossy(&self, src: usize, dst: usize) -> bool {
        let coin = derive_seed(self.seed, LINK_DOMAIN, src as u64, dst as u64);
        coin % 1_000_000 < self.fraction_ppm as u64
    }

    /// The drop probability on lossy links.
    pub fn loss_probability(&self) -> f64 {
        self.loss_ppm as f64 / 1e6
    }
}

/// An adversarial message-suppression campaign: an explicit set of
/// directed edges (typically the highest-degree contact edges of the
/// instance) on which sends are dropped during a round window.
///
/// With `drop_ppm = 1_000_000` (the default in scenario use) every send
/// on a targeted edge is suppressed; lower rates flip a per-`(edge,
/// round)` coin that is a pure function of `(spec seed, src, dst,
/// round)` — never of sequence numbers or stream state, so the
/// adversary's behaviour is identical on every engine and worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct SuppressionSpec {
    seed: u64,
    edges: Vec<(usize, usize)>,
    start: u64,
    end: u64,
    drop_ppm: u32,
}

impl SuppressionSpec {
    /// Suppresses sends on the given directed `edges` during rounds
    /// `[start, end)` with probability `drop_ppm` parts per million
    /// (values `>= 1_000_000` suppress every send without a coin).
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`, `edges` is empty, or `drop_ppm` is 0.
    pub fn new(
        seed: u64,
        edges: impl IntoIterator<Item = (usize, usize)>,
        start: u64,
        end: u64,
        drop_ppm: u32,
    ) -> Self {
        assert!(
            start < end,
            "suppression window [{start}, {end}) empty or inverted"
        );
        assert!(drop_ppm > 0, "a suppression rate of 0 suppresses nothing");
        let mut edges: Vec<(usize, usize)> = edges.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        assert!(!edges.is_empty(), "suppression campaign without edges");
        SuppressionSpec {
            seed,
            edges,
            start,
            end,
            drop_ppm,
        }
    }

    /// The targeted directed edges, sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether a send from `src` to `dst` in `round` is suppressed.
    /// Pure in `(spec seed, src, dst, round)`.
    pub fn blocks(&self, src: usize, dst: usize, round: u64) -> bool {
        if round < self.start || round >= self.end {
            return false;
        }
        if self.edges.binary_search(&(src, dst)).is_err() {
            return false;
        }
        if self.drop_ppm >= 1_000_000 {
            return true;
        }
        let coin = split_mix64(
            derive_seed(self.seed, SUPP_DOMAIN, src as u64, round)
                ^ split_mix64((dst as u64).wrapping_mul(0xa24b_aed4_963e_e407)),
        );
        coin % 1_000_000 < self.drop_ppm as u64
    }
}

/// One scheduled crash: the round the node dies and, optionally, the
/// round it comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrashWindow {
    crash: u64,
    recovery: Option<u64>,
}

/// One partition window: between `start` (inclusive) and `end`
/// (exclusive), messages *sent* across group boundaries are dropped.
/// Nodes not named in any group share one implicit "rest" group.
#[derive(Debug, Clone, PartialEq)]
struct PartitionWindow {
    start: u64,
    end: u64,
    group_of: BTreeMap<usize, u32>,
}

/// The implicit group of nodes not named by a partition.
const REST_GROUP: u32 = u32::MAX;

impl PartitionWindow {
    fn blocks(&self, src: usize, dst: usize, round: u64) -> bool {
        if round < self.start || round >= self.end {
            return false;
        }
        let group = |node| self.group_of.get(&node).copied().unwrap_or(REST_GROUP);
        group(src) != group(dst)
    }
}

/// A fault schedule applied by the engine.
///
/// * **Message drops** — every message is lost independently with
///   probability [`drop_probability`](Self::drop_probability) (decided by
///   the engine's deterministic fault stream). The sender is still
///   charged for the message.
/// * **Crash failures** — each scheduled node stops executing and
///   receiving at its crash round; messages addressed to it while dead
///   vanish (and count as drops). [`with_crashes`](Self::with_crashes)
///   schedules crashes at round 0 (machines dead before the protocol
///   starts); [`with_crash_at`](Self::with_crash_at) kills a machine
///   mid-run; [`with_recovery_at`](Self::with_recovery_at) brings a
///   crashed machine back with its pre-crash state intact.
/// * **Partitions** — [`with_partition`](Self::with_partition) splits
///   the network into groups for a round window; messages sent across a
///   group boundary inside the window are dropped (cause
///   [`DropCause::Partition`]), and the split heals at the window's end.
/// * **Crash detection** — optionally, a perfect failure detector (in
///   the spirit of failure-informer services such as Falcon/Albatross)
///   reports each crash to every live node
///   [`detection_delay`](Self::detection_delay) rounds after it happens,
///   and *retracts* the report the same delay after a recovery.
///   Protocols read the report through
///   [`RoundContext::suspects`](crate::RoundContext::suspects); without
///   a detector configured, the report stays empty forever.
///
/// # Example
///
/// ```
/// use rd_sim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .with_drop_probability(0.05)
///     .with_crashes([3])
///     .with_crash_at(9, 40)
///     .with_recovery_at(9, 60)
///     .with_partition([vec![0, 1], vec![2, 3]], 10, 20)
///     .with_crash_detection_after(20);
/// assert!(plan.is_crashed(3) && plan.is_crashed(9));
/// assert!(plan.is_crashed_at(3, 0));
/// assert!(!plan.is_crashed_at(9, 39));
/// assert!(plan.is_crashed_at(9, 40));
/// assert!(!plan.is_crashed_at(9, 60), "node 9 recovered");
/// assert!(plan.partition_blocks(0, 2, 10));
/// assert!(!plan.partition_blocks(0, 2, 20), "partition healed");
/// assert_eq!(plan.detection_delay(), Some(20));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    drop_probability: f64,
    crashes: BTreeMap<usize, CrashWindow>,
    partitions: Vec<PartitionWindow>,
    detection_delay: Option<u64>,
    churn: Option<ChurnSpec>,
    link_loss: Option<LinkLossSpec>,
    suppressions: Vec<SuppressionSpec>,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0` (with `p = 1.0` no protocol can
    /// terminate, so it is rejected as a configuration error).
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability {p} outside [0, 1)"
        );
        self.drop_probability = p;
        self
    }

    /// Marks the given node indices as crashed from round 0.
    pub fn with_crashes(mut self, nodes: impl IntoIterator<Item = usize>) -> Self {
        for node in nodes {
            let entry = self.crashes.entry(node).or_insert(CrashWindow {
                crash: 0,
                recovery: None,
            });
            entry.crash = 0;
        }
        self
    }

    /// Schedules `node` to crash at the start of `round` (it executes
    /// rounds `0..round` normally, then stops). An earlier schedule for
    /// the same node wins; a recovery already scheduled is kept.
    pub fn with_crash_at(mut self, node: usize, round: u64) -> Self {
        let entry = self.crashes.entry(node).or_insert(CrashWindow {
            crash: round,
            recovery: None,
        });
        entry.crash = entry.crash.min(round);
        self
    }

    /// Schedules `node` — which must already have a crash scheduled — to
    /// recover at the start of `round`: from then on it executes and
    /// receives again, resuming from its pre-crash state. The last
    /// recovery scheduled for a node wins.
    ///
    /// # Panics
    ///
    /// Panics if `node` has no crash scheduled, or if `round` is not
    /// strictly after its crash round.
    pub fn with_recovery_at(mut self, node: usize, round: u64) -> Self {
        let entry = self
            .crashes
            .get_mut(&node)
            .unwrap_or_else(|| panic!("recovery for node {node} without a scheduled crash"));
        assert!(
            round > entry.crash,
            "recovery of node {node} at round {round} not after its crash at {}",
            entry.crash
        );
        entry.recovery = Some(round);
        self
    }

    /// Splits the network into the given `groups` from round `start`
    /// (inclusive) to round `end` (exclusive): messages *sent* in that
    /// window between nodes of different groups are dropped. Nodes not
    /// named in any group form one implicit extra group. The partition
    /// heals at `end`; multiple (even overlapping) windows may be
    /// scheduled.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or a node appears in more than one
    /// group of this window.
    pub fn with_partition(
        mut self,
        groups: impl IntoIterator<Item = impl IntoIterator<Item = usize>>,
        start: u64,
        end: u64,
    ) -> Self {
        assert!(
            start < end,
            "partition window [{start}, {end}) is empty or inverted"
        );
        let mut group_of = BTreeMap::new();
        for (g, group) in groups.into_iter().enumerate() {
            for node in group {
                let prev = group_of.insert(node, g as u32);
                assert!(
                    prev.is_none(),
                    "node {node} appears in more than one partition group"
                );
            }
        }
        self.partitions.push(PartitionWindow {
            start,
            end,
            group_of,
        });
        self
    }

    /// Installs a continuous-churn regime (see [`ChurnSpec`]). Churned
    /// nodes behave exactly like crash/recovery windows — they stop
    /// executing and receiving while down, then resume with their
    /// pre-nap state — but the schedule is generated, not enumerated,
    /// so a million-node population churns in O(1) per lookup. At most
    /// one regime per plan; a second call replaces the first.
    pub fn with_churn(mut self, spec: ChurnSpec) -> Self {
        self.churn = Some(spec);
        self
    }

    /// Installs a per-link loss overlay (see [`LinkLossSpec`]). On
    /// lossy links the overlay's probability replaces the plan's base
    /// drop probability when larger, and drops attribute to
    /// [`DropCause::Link`]. A second call replaces the first.
    pub fn with_link_loss(mut self, spec: LinkLossSpec) -> Self {
        self.link_loss = Some(spec);
        self
    }

    /// Adds an adversarial suppression campaign (see
    /// [`SuppressionSpec`]). Campaigns accumulate: a send is suppressed
    /// when *any* campaign blocks it.
    pub fn with_suppression(mut self, spec: SuppressionSpec) -> Self {
        self.suppressions.push(spec);
        self
    }

    /// Enables the perfect failure detector: each crash is reported to
    /// every live node `delay` rounds after it happens, and each
    /// recovery retracts its report `delay` rounds after the node
    /// rejoins. A node whose recovery precedes its would-be report is
    /// never suspected at all.
    pub fn with_crash_detection_after(mut self, delay: u64) -> Self {
        self.detection_delay = Some(delay);
        self
    }

    /// The per-message drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Whether `node` crashes at any point of the run.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.crashes.contains_key(&node)
    }

    /// Whether `node` crashes and never recovers.
    pub fn is_permanently_crashed(&self, node: usize) -> bool {
        self.crashes
            .get(&node)
            .is_some_and(|w| w.recovery.is_none())
    }

    /// Whether `node` is dead during `round` — either inside an
    /// explicit crash window or napping under the churn regime.
    pub fn is_crashed_at(&self, node: usize, round: u64) -> bool {
        self.crashes
            .get(&node)
            .is_some_and(|w| round >= w.crash && w.recovery.is_none_or(|r| round < r))
            || self.churn.is_some_and(|c| c.is_down(node, round))
    }

    /// The round at which `node` crashes, if scheduled.
    pub fn crash_round(&self, node: usize) -> Option<u64> {
        self.crashes.get(&node).map(|w| w.crash)
    }

    /// The round at which `node` recovers, if scheduled.
    pub fn recovery_round(&self, node: usize) -> Option<u64> {
        self.crashes.get(&node).and_then(|w| w.recovery)
    }

    /// All scheduled crashes as `(node, crash round)` pairs, by node
    /// index.
    pub fn crash_schedule(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.crashes.iter().map(|(&n, w)| (n, w.crash))
    }

    /// The nodes that crash at any point of the run.
    pub fn crashed_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.crashes.keys().copied()
    }

    /// The failure-detector latency, if a detector is configured.
    pub fn detection_delay(&self) -> Option<u64> {
        self.detection_delay
    }

    /// `true` when the plan schedules at least one crash or a churn
    /// regime (a cheap guard that lets the router and the stepping loop
    /// skip the per-message liveness lookup entirely on crash-free
    /// plans).
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty() || self.churn.is_some()
    }

    /// The continuous-churn regime, if one is installed.
    pub fn churn(&self) -> Option<&ChurnSpec> {
        self.churn.as_ref()
    }

    /// The per-link loss overlay, if one is installed.
    pub fn link_loss(&self) -> Option<&LinkLossSpec> {
        self.link_loss.as_ref()
    }

    /// `true` when a per-link loss overlay is installed (the router's
    /// cheap guard around the per-message link hash).
    pub fn has_link_loss(&self) -> bool {
        self.link_loss.is_some()
    }

    /// `true` when at least one suppression campaign is installed.
    pub fn has_suppression(&self) -> bool {
        !self.suppressions.is_empty()
    }

    /// Whether a send from `src` to `dst` in `round` is suppressed by
    /// any installed campaign. Like partitions, suppression is decided
    /// at the *send* round.
    pub fn suppression_blocks(&self, src: usize, dst: usize, round: u64) -> bool {
        self.suppressions.iter().any(|s| s.blocks(src, dst, round))
    }

    /// `true` when the plan schedules at least one partition window
    /// (the router's cheap guard around the per-message group lookup).
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Whether a message sent from `src` to `dst` in `round` crosses an
    /// active partition boundary (and is therefore dropped). The check
    /// is made at the *send* round: a message sent inside the window is
    /// lost even if its delivery would land after the heal.
    pub fn partition_blocks(&self, src: usize, dst: usize, round: u64) -> bool {
        self.partitions.iter().any(|w| w.blocks(src, dst, round))
    }

    /// `true` when the plan injects no faults at all.
    pub fn is_fault_free(&self) -> bool {
        self.drop_probability == 0.0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.churn.is_none()
            && self.link_loss.is_none()
            && self.suppressions.is_empty()
    }

    /// Checks the plan against a concrete run shape: every crash,
    /// recovery, and partition must name node indices below `n` and
    /// rounds within `max_rounds` — a schedule past the budget (or past
    /// the population) would silently never fire, so it is rejected as
    /// a configuration error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, n: usize, max_rounds: u64) -> Result<(), String> {
        for (&node, w) in &self.crashes {
            if node >= n {
                return Err(format!("crash target {node} out of range for n={n}"));
            }
            if w.crash > max_rounds {
                return Err(format!(
                    "crash of node {node} at round {} past max_rounds {max_rounds}",
                    w.crash
                ));
            }
            if let Some(recovery) = w.recovery {
                if recovery > max_rounds {
                    return Err(format!(
                        "recovery of node {node} at round {recovery} past max_rounds {max_rounds}"
                    ));
                }
            }
        }
        for w in &self.partitions {
            if w.end > max_rounds {
                return Err(format!(
                    "partition window [{}, {}) past max_rounds {max_rounds}",
                    w.start, w.end
                ));
            }
            if let Some((&node, _)) = w.group_of.iter().next_back() {
                if node >= n {
                    return Err(format!("partition member {node} out of range for n={n}"));
                }
            }
        }
        // Two windows that are simultaneously active and both name the
        // same node give it two group labels at once; which one wins is
        // an accident of window order, so the shape is rejected outright.
        for (i, a) in self.partitions.iter().enumerate() {
            for b in &self.partitions[i + 1..] {
                if a.start >= b.end || b.start >= a.end {
                    continue;
                }
                if let Some(&node) = a.group_of.keys().find(|k| b.group_of.contains_key(k)) {
                    return Err(format!(
                        "node {node} named by overlapping partition windows [{}, {}) and [{}, {})",
                        a.start, a.end, b.start, b.end
                    ));
                }
            }
        }
        // A node that recovers while a partition it is named in is
        // still active rejoins into a split it never observed forming;
        // the schedule is almost certainly a mistake, so it is rejected.
        for (&node, w) in &self.crashes {
            let Some(recovery) = w.recovery else { continue };
            if let Some(p) = self
                .partitions
                .iter()
                .find(|p| recovery >= p.start && recovery < p.end && p.group_of.contains_key(&node))
            {
                return Err(format!(
                    "recovery of node {node} at round {recovery} falls inside partition window \
                     [{}, {}) that names it",
                    p.start, p.end
                ));
            }
        }
        if let Some(c) = &self.churn {
            if c.end > max_rounds {
                return Err(format!(
                    "churn regime [{}, {}) past max_rounds {max_rounds}",
                    c.start, c.end
                ));
            }
        }
        for s in &self.suppressions {
            if s.end > max_rounds {
                return Err(format!(
                    "suppression window [{}, {}) past max_rounds {max_rounds}",
                    s.start, s.end
                ));
            }
            if let Some(&(src, dst)) = s.edges.iter().find(|&&(src, dst)| src >= n || dst >= n) {
                return Err(format!(
                    "suppressed edge ({src}, {dst}) out of range for n={n}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        assert!(FaultPlan::new().is_fault_free());
    }

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::new()
            .with_drop_probability(0.1)
            .with_crashes([1])
            .with_crashes([5, 1]);
        assert_eq!(p.drop_probability(), 0.1);
        assert_eq!(p.crashed_nodes().collect::<Vec<_>>(), vec![1, 5]);
        assert!(!p.is_fault_free());
    }

    #[test]
    fn dynamic_crashes_respect_their_round() {
        let p = FaultPlan::new().with_crash_at(2, 10);
        assert!(p.is_crashed(2));
        assert!(!p.is_crashed_at(2, 9));
        assert!(p.is_crashed_at(2, 10));
        assert!(p.is_crashed_at(2, 99));
        assert_eq!(p.crash_round(2), Some(10));
        assert_eq!(p.crash_round(3), None);
    }

    #[test]
    fn earliest_crash_round_wins() {
        let p = FaultPlan::new().with_crash_at(2, 10).with_crash_at(2, 5);
        assert_eq!(p.crash_round(2), Some(5));
        let q = FaultPlan::new().with_crashes([2]).with_crash_at(2, 7);
        assert_eq!(q.crash_round(2), Some(0));
    }

    #[test]
    fn schedule_lists_all_crashes() {
        let p = FaultPlan::new().with_crashes([4]).with_crash_at(1, 30);
        let sched: Vec<_> = p.crash_schedule().collect();
        assert_eq!(sched, vec![(1, 30), (4, 0)]);
    }

    #[test]
    fn recovery_bounds_the_crash_window() {
        let p = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 15);
        assert!(p.is_crashed(2));
        assert!(!p.is_permanently_crashed(2));
        assert!(!p.is_crashed_at(2, 9));
        assert!(p.is_crashed_at(2, 10));
        assert!(p.is_crashed_at(2, 14));
        assert!(!p.is_crashed_at(2, 15));
        assert_eq!(p.recovery_round(2), Some(15));
        assert_eq!(p.recovery_round(3), None);
        let q = FaultPlan::new().with_crash_at(3, 5);
        assert!(q.is_permanently_crashed(3));
    }

    #[test]
    fn recovery_survives_a_lowered_crash_round() {
        let p = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 15)
            .with_crash_at(2, 4);
        assert_eq!(p.crash_round(2), Some(4));
        assert_eq!(p.recovery_round(2), Some(15));
    }

    #[test]
    #[should_panic(expected = "without a scheduled crash")]
    fn recovery_without_crash_rejected() {
        let _ = FaultPlan::new().with_recovery_at(2, 15);
    }

    #[test]
    #[should_panic(expected = "not after its crash")]
    fn recovery_before_crash_rejected() {
        let _ = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 10);
    }

    #[test]
    fn partition_blocks_cross_group_sends_inside_the_window() {
        let p = FaultPlan::new().with_partition([vec![0, 1], vec![2]], 5, 8);
        assert!(!p.is_fault_free());
        assert!(p.has_partitions());
        // Inside the window: cross-group blocked, intra-group open.
        assert!(p.partition_blocks(0, 2, 5));
        assert!(p.partition_blocks(2, 1, 7));
        assert!(!p.partition_blocks(0, 1, 6));
        // Unlisted nodes share the implicit rest group.
        assert!(!p.partition_blocks(7, 9, 6));
        assert!(p.partition_blocks(0, 9, 6));
        // Outside the window: everything flows.
        assert!(!p.partition_blocks(0, 2, 4));
        assert!(!p.partition_blocks(0, 2, 8));
    }

    #[test]
    fn overlapping_partition_windows_all_apply() {
        let p = FaultPlan::new()
            .with_partition([vec![0], vec![1]], 0, 4)
            .with_partition([vec![1], vec![2]], 2, 6);
        assert!(p.partition_blocks(0, 1, 1));
        assert!(p.partition_blocks(1, 2, 5));
        assert!(p.partition_blocks(0, 1, 3), "both windows active");
        // After the first window heals, 0 sits in the second window's
        // rest group: still split from 1, but not from fellow-rest 3.
        assert!(p.partition_blocks(0, 1, 5));
        assert!(!p.partition_blocks(0, 3, 5), "rest group is open");
    }

    #[test]
    #[should_panic(expected = "more than one partition group")]
    fn duplicate_partition_member_rejected() {
        let _ = FaultPlan::new().with_partition([vec![0, 1], vec![1]], 0, 4);
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn empty_partition_window_rejected() {
        let _ = FaultPlan::new().with_partition([vec![0], vec![1]], 4, 4);
    }

    #[test]
    fn validate_checks_rounds_and_indices() {
        let ok = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 20)
            .with_partition([vec![0], vec![3]], 5, 30);
        assert_eq!(ok.validate(4, 100), Ok(()));

        let late_crash = FaultPlan::new().with_crash_at(1, 200);
        assert!(late_crash.validate(4, 100).unwrap_err().contains("crash"));

        let late_recovery = FaultPlan::new()
            .with_crash_at(1, 10)
            .with_recovery_at(1, 200);
        assert!(late_recovery
            .validate(4, 100)
            .unwrap_err()
            .contains("recovery"));

        let late_partition = FaultPlan::new().with_partition([vec![0], vec![1]], 50, 200);
        assert!(late_partition
            .validate(4, 100)
            .unwrap_err()
            .contains("partition window"));

        let bad_node = FaultPlan::new().with_crashes([9]);
        assert!(bad_node.validate(4, 100).unwrap_err().contains("range"));

        let bad_member = FaultPlan::new().with_partition([vec![0], vec![9]], 0, 10);
        assert!(bad_member.validate(4, 100).unwrap_err().contains("range"));
    }

    #[test]
    fn validate_rejects_overlapping_windows_sharing_a_node() {
        // Same shape as `overlapping_partition_windows_all_apply`:
        // node 1 is named by both of two time-overlapping windows.
        let p = FaultPlan::new()
            .with_partition([vec![0], vec![1]], 0, 4)
            .with_partition([vec![1], vec![2]], 2, 6);
        let err = p.validate(8, 100).unwrap_err();
        assert!(err.contains("overlapping partition windows"), "{err}");

        // Overlap in time alone is fine when the named sets are disjoint.
        let disjoint = FaultPlan::new()
            .with_partition([vec![0], vec![1]], 0, 4)
            .with_partition([vec![2], vec![3]], 2, 6);
        assert_eq!(disjoint.validate(8, 100), Ok(()));

        // A shared node is fine when the windows never coexist.
        let sequential = FaultPlan::new()
            .with_partition([vec![0], vec![1]], 0, 4)
            .with_partition([vec![1], vec![2]], 4, 8);
        assert_eq!(sequential.validate(8, 100), Ok(()));
    }

    #[test]
    fn validate_rejects_recovery_inside_an_active_partition() {
        let p = FaultPlan::new()
            .with_crash_at(1, 2)
            .with_recovery_at(1, 7)
            .with_partition([vec![0], vec![1]], 5, 10);
        let err = p.validate(8, 100).unwrap_err();
        assert!(err.contains("recovery of node 1"), "{err}");
        assert!(err.contains("inside partition window"), "{err}");

        // Recovering exactly at the heal, or while only the rest group
        // holds the node, is fine.
        let at_heal = FaultPlan::new()
            .with_crash_at(1, 2)
            .with_recovery_at(1, 10)
            .with_partition([vec![0], vec![1]], 5, 10);
        assert_eq!(at_heal.validate(8, 100), Ok(()));

        let unnamed = FaultPlan::new()
            .with_crash_at(6, 2)
            .with_recovery_at(6, 7)
            .with_partition([vec![0], vec![1]], 5, 10);
        assert_eq!(unnamed.validate(8, 100), Ok(()));
    }

    #[test]
    fn validate_checks_campaign_windows_and_edges() {
        let late_churn = FaultPlan::new().with_churn(ChurnSpec::new(7, 0, 500, 10, 4, 100_000));
        assert!(late_churn
            .validate(8, 100)
            .unwrap_err()
            .contains("churn regime"));

        let late_supp = FaultPlan::new().with_suppression(SuppressionSpec::new(
            7,
            [(0, 1)],
            50,
            500,
            1_000_000,
        ));
        assert!(late_supp
            .validate(8, 100)
            .unwrap_err()
            .contains("suppression window"));

        let bad_edge =
            FaultPlan::new().with_suppression(SuppressionSpec::new(7, [(0, 9)], 0, 10, 1_000_000));
        assert!(bad_edge
            .validate(8, 100)
            .unwrap_err()
            .contains("out of range"));

        let ok = FaultPlan::new()
            .with_churn(ChurnSpec::new(7, 0, 80, 10, 4, 100_000))
            .with_link_loss(LinkLossSpec::new(7, 200_000, 300_000))
            .with_suppression(SuppressionSpec::new(7, [(0, 1), (3, 2)], 5, 60, 1_000_000));
        assert_eq!(ok.validate(8, 100), Ok(()));
        assert!(!ok.is_fault_free());
        assert!(ok.has_crashes(), "churn counts as a liveness fault");
        assert!(ok.has_link_loss() && ok.has_suppression());
    }

    #[test]
    fn churn_naps_are_pure_and_bounded() {
        let spec = ChurnSpec::new(42, 10, 210, 20, 8, 400_000);
        for node in 0..64usize {
            let naps = spec.naps(node);
            for &(down, up) in &naps {
                assert!(down >= 10 && up <= 210, "nap [{down}, {up}) outside regime");
                assert!(up - down <= 8, "nap longer than the configured length");
                // `is_down` agrees with the enumerated schedule round by
                // round — two independent paths to the same pure function.
                for round in down..up {
                    assert!(spec.is_down(node, round));
                }
                assert!(!spec.is_down(node, down.saturating_sub(1)) || down == 10);
            }
            // Outside the regime nobody naps.
            assert!(!spec.is_down(node, 9));
            assert!(!spec.is_down(node, 210));
            // Same spec, same node: identical schedule on every query.
            assert_eq!(naps, spec.naps(node));
        }
        // The rate actually bites: at 40% per 20-round cycle over 10
        // cycles, out of 64 nodes *some* nap and *some* cycle is clean.
        let total: usize = (0..64).map(|i| spec.naps(i).len()).sum();
        assert!(total > 0, "nobody ever napped");
        assert!(total < 64 * 10, "everyone napped every cycle");
    }

    #[test]
    fn link_loss_is_asymmetric_and_pure() {
        let spec = LinkLossSpec::new(99, 300_000, 500_000);
        let mut lossy = 0;
        let mut asym = 0;
        for src in 0..40usize {
            for dst in 0..40usize {
                if src == dst {
                    continue;
                }
                assert_eq!(spec.is_lossy(src, dst), spec.is_lossy(src, dst));
                if spec.is_lossy(src, dst) {
                    lossy += 1;
                    if !spec.is_lossy(dst, src) {
                        asym += 1;
                    }
                }
            }
        }
        // ~30% of 1560 ordered links should be lossy; and because the
        // two directions hash independently, a healthy share of lossy
        // links must be one-directional.
        assert!((300..640).contains(&lossy), "lossy count {lossy}");
        assert!(asym > 0, "no asymmetric link found");
        assert!((spec.loss_probability() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn suppression_blocks_only_target_edges_inside_the_window() {
        let spec = SuppressionSpec::new(5, [(3, 1), (0, 2)], 4, 9, 1_000_000);
        assert_eq!(spec.edges(), &[(0, 2), (3, 1)], "sorted and deduped");
        assert!(spec.blocks(0, 2, 4));
        assert!(spec.blocks(3, 1, 8));
        assert!(!spec.blocks(2, 0, 5), "directed: reverse edge open");
        assert!(!spec.blocks(0, 1, 5), "untargeted edge open");
        assert!(!spec.blocks(0, 2, 3), "before the window");
        assert!(!spec.blocks(0, 2, 9), "after the window");

        // A sub-unit rate flips a coin that is pure in (seed, edge,
        // round): repeated queries agree, and over many rounds the edge
        // is sometimes open, sometimes blocked.
        let coin = SuppressionSpec::new(5, [(0, 2)], 0, 1000, 500_000);
        let fates: Vec<bool> = (0..1000).map(|r| coin.blocks(0, 2, r)).collect();
        assert_eq!(
            fates,
            (0..1000).map(|r| coin.blocks(0, 2, r)).collect::<Vec<_>>()
        );
        assert!(fates.iter().any(|&b| b) && fates.iter().any(|&b| !b));
    }

    #[test]
    fn churned_nodes_flow_through_the_liveness_queries() {
        let spec = ChurnSpec::new(11, 0, 100, 10, 5, 1_000_000);
        let plan = FaultPlan::new().with_churn(spec);
        assert!(plan.has_crashes());
        assert!(!plan.is_fault_free());
        // rate 100%: every node naps every cycle.
        assert!((0..10).any(|r| plan.is_crashed_at(0, r)));
        // Churn is transient: nobody is permanently crashed, and the
        // explicit-crash queries stay empty.
        assert!(!plan.is_permanently_crashed(0));
        assert!(!plan.is_crashed(0));
        assert_eq!(plan.crash_schedule().count(), 0);
        // After the regime everyone is up.
        assert!(!plan.is_crashed_at(0, 100));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn full_drop_rejected() {
        let _ = FaultPlan::new().with_drop_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn negative_drop_rejected() {
        let _ = FaultPlan::new().with_drop_probability(-0.5);
    }
}
