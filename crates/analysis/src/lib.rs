#![warn(missing_docs)]

//! Statistics, scaling-model fitting, table rendering, and the
//! experiment sweep driver for the resource-discovery reproduction.
//!
//! The benchmark harness (`rd-bench`) uses this crate to turn raw
//! [`RunReport`](rd_core::RunReport)s into the tables and figure series
//! listed in `DESIGN.md` §4:
//!
//! * [`stats`] — descriptive statistics over repeated seeds,
//! * [`fit`] — least-squares fits of round counts against the candidate
//!   scaling laws (`log log n`, `log n`, `log² n`, `n`), the tool that
//!   turns "HM looks flat" into "HM fits `a + b·log log n` with R² ≈ 1",
//! * [`table`] — fixed-width table and CSV rendering,
//! * [`experiment`] — the multi-threaded `(algorithm × n × seed)` sweep
//!   driver.
//!
//! # Example
//!
//! ```
//! use rd_analysis::experiment::{sweep, SweepSpec};
//! use rd_core::runner::AlgorithmKind;
//! use rd_graphs::Topology;
//!
//! let spec = SweepSpec {
//!     kinds: vec![AlgorithmKind::PointerDoubling],
//!     topology: Topology::KOut { k: 3 },
//!     ns: vec![64, 128],
//!     seeds: 1..4,
//!     ..Default::default()
//! };
//! let cells = sweep(&spec);
//! assert_eq!(cells.len(), 2);
//! assert_eq!(cells[0].completion_rate, 1.0);
//! ```

pub mod experiment;
pub mod fit;
pub mod plot;
pub mod stats;
pub mod table;

pub use experiment::{sweep, SweepCell, SweepSpec};
pub use fit::{best_fit, fit_model, FitResult, ScalingModel};
pub use plot::Plot;
pub use stats::{summarize, Summary};
pub use table::Table;
