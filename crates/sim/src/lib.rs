#![warn(missing_docs)]

//! A deterministic synchronous message-passing simulator.
//!
//! This crate is the execution substrate for the resource-discovery
//! reproduction. It models the classic synchronous *direct addressing*
//! network of the resource-discovery literature (Harchol-Balter–Leighton–
//! Lewin '99, Haeupler–Malkhi '14/'15):
//!
//! * computation proceeds in rounds; messages sent in round `t` are
//!   delivered at the start of round `t + 1`;
//! * a node may address a message to *any* node whose [`NodeId`] it has
//!   learned (knowing an identifier is knowing an address);
//! * message size is unbounded, but every message's cost is accounted in
//!   *pointers* (identifiers carried) and *bits*, the complexity measures
//!   the literature reports.
//!
//! The simulator is fully deterministic: node programs receive
//! per-`(seed, node, round)` random generators, so a run is reproducible
//! from `(protocol, topology, seed)` alone, independent of iteration
//! order or platform.
//!
//! # Example: a two-node ping-pong protocol
//!
//! ```
//! use rd_sim::{Engine, Envelope, MessageCost, Node, NodeId, RoundContext};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl MessageCost for Ping {
//!     fn pointers(&self) -> usize { 0 }
//! }
//!
//! struct Player { peer: NodeId, hits: u32 }
//! impl Node for Player {
//!     type Msg = Ping;
//!     fn on_round(
//!         &mut self,
//!         inbox: &mut Vec<Envelope<Ping>>,
//!         ctx: &mut RoundContext<'_, Ping>,
//!     ) {
//!         if ctx.round() == 0 && ctx.id() == NodeId::new(0) {
//!             ctx.send(self.peer, Ping); // serve
//!         }
//!         for _ in inbox.drain(..) {
//!             self.hits += 1;
//!             if self.hits < 3 {
//!                 ctx.send(self.peer, Ping); // return
//!             }
//!         }
//!     }
//! }
//!
//! let players = vec![
//!     Player { peer: NodeId::new(1), hits: 0 },
//!     Player { peer: NodeId::new(0), hits: 0 },
//! ];
//! let mut engine = Engine::new(players, 42);
//! let outcome = engine.run_until(20, |nodes| nodes.iter().all(|p| p.hits >= 2));
//! assert!(outcome.completed);
//! assert_eq!(outcome.rounds, 5);
//! assert_eq!(engine.metrics().total_messages(), 5);
//! ```

pub mod engine;
pub mod engine_core;
pub mod faults;
pub mod id;
pub mod message;
pub mod metrics;
pub mod node;
pub mod pool;
pub mod rng;
pub mod trace;

pub use engine::{Engine, RoundEngine, RunOutcome};
pub use engine_core::{
    retry_fate, route_fate, step_node, take_capped, EngineCore, FaultGuards, RetryPolicy,
    RouteFate, StepState,
};
pub use faults::{ChurnSpec, DropCause, FaultPlan, LinkLossSpec, SuppressionSpec};
pub use id::NodeId;
pub use message::{Envelope, MessageCost, PointerList};
pub use metrics::{round_obs, DropTally, NodeLane, RoundMetrics, RunMetrics};
pub use node::{Node, RoundContext};
pub use pool::{BufferPool, PoolStats};
pub use trace::{Trace, TraceEvent};

/// The last path segment of `T`'s type name — e.g. `Rumor` for
/// `my_crate::gossip::Rumor`. The engines use it to register message
/// kinds with the profiler under a stable, human-readable label.
pub fn short_type_name<T>() -> &'static str {
    std::any::type_name::<T>()
        .rsplit("::")
        .next()
        .unwrap_or("msg")
}
