//! The engine-agnostic round machinery shared by every execution engine.
//!
//! [`EngineCore`] owns everything about a run *except* the node programs:
//! mailboxes, the round counter, metrics, the fault layer, tracing, the
//! failure-detector schedule, receive caps, and delay jitter. The
//! sequential [`Engine`](crate::Engine) in this crate and the sharded
//! engine in `rd-exec` are both thin drivers over this core, so
//! accounting and fault semantics cannot drift between them.
//!
//! A round splits into three phases every engine performs identically:
//!
//! 1. [`EngineCore::begin_round`] — metrics, detector reports, and
//!    delivery of delay-expired messages;
//! 2. node stepping — the engine takes each live node's inbox (via
//!    [`take_capped`]) and runs it with [`step_node`]; node steps are
//!    order-independent because each draws from a private
//!    per-`(seed, node, round)` random stream, which is what makes
//!    parallel stepping bit-identical to sequential stepping;
//! 3. routing — staged envelopes, in `(sender, send-sequence)` order,
//!    pass through the fault layer and into next-round mailboxes, and
//!    [`EngineCore::finish_round`] advances the clock.
//!
//! # Order-independent routing
//!
//! Routing used to be inherently serial: drop and delay coins were drawn
//! from two shared random streams, so stream *position* — and therefore
//! global routing order — was part of the deterministic contract. Now
//! every message's fate is a pure function of
//! `(seed, sender, round, send-sequence)` ([`route_fate`], backed by
//! [`rng::message_route_rng`]): routing one envelope never advances any
//! state another envelope reads. That makes the phase embarrassingly
//! parallel. A sequential engine calls [`EngineCore::route_batch`] over
//! the canonically ordered staging buffer; a parallel engine splits the
//! same buffer by sender shard, routes each shard with [`route_shard`]
//! into per-destination-shard buckets, merges the buckets per
//! destination with [`merge_dest_shard`], and folds the shard-local
//! [`RouteDelta`]s back with [`EngineCore::apply_route_deltas`]. Both
//! paths evaluate `route_fate` on identical `(sender, sequence)` pairs,
//! so they are bit-identical by construction.

use crate::faults::{DropCause, FaultPlan};
use crate::id::NodeId;
use crate::message::{Envelope, MessageCost};
use crate::metrics::{NodeLane, RoundMetrics, RunMetrics};
use crate::node::{Node, RoundContext};
use crate::pool::BufferPool;
use crate::rng;
use crate::trace::{Trace, TraceEvent};
use rand::Rng;
use rd_obs::{CausalTrace, ProvEdge};

/// What the failure detector does at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum DetectorAction {
    /// Report a crash to every live node.
    Suspect,
    /// Withdraw an earlier report after the node recovered.
    Retract,
}

/// The non-node state of a run: mailboxes, clock, metrics, faults,
/// tracing, and delivery policy. See the [module docs](self) for the
/// round protocol engines drive it with.
pub struct EngineCore<M: MessageCost> {
    inboxes: Vec<Vec<Envelope<M>>>,
    round: u64,
    seed: u64,
    metrics: RunMetrics,
    faults: FaultPlan,
    trace: Option<Trace>,
    /// Causal knowledge-provenance trace (`None` = disabled). Strictly
    /// outside the deterministic state: write-only from routing, with
    /// sampling coins drawn from their own counter-based stream.
    causal: Option<CausalTrace>,
    /// Detector schedule `(round, node, action)`, report-time order.
    detect_schedule: Vec<(u64, NodeId, DetectorAction)>,
    /// Crashes currently reported to the nodes.
    active_suspects: Vec<NodeId>,
    next_detection: usize,
    /// Per-node per-round delivery cap (`None` = unbounded).
    receive_cap: Option<usize>,
    /// Maximum extra delivery delay in rounds (0 = synchronous).
    max_extra_delay: u64,
    /// Messages awaiting a later delivery round, keyed by that round.
    delayed: std::collections::BTreeMap<u64, Vec<Envelope<M>>>,
    /// Recycled batch buffers for the delay queue.
    pool: BufferPool<Envelope<M>>,
    /// Retransmission policy (`None` = best-effort delivery).
    reliable: Option<RetryPolicy>,
    /// Dropped messages awaiting retransmission, keyed by resend round.
    retransmit_queue: std::collections::BTreeMap<u64, Vec<RetryEnvelope<M>>>,
}

/// The opt-in reliable-delivery policy: every dropped message is
/// retransmitted after a per-message timeout with capped exponential
/// backoff, up to a retry budget. Retransmissions are charged against
/// the message-complexity metrics like any other send (and tallied in
/// [`RoundMetrics::retransmissions`]), and their fates come from a
/// dedicated counter-based stream ([`retry_fate`]), so enabling the
/// layer never perturbs first-attempt coins and stays bit-identical
/// across engines and worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Rounds to wait before the first retransmission (≥ 1).
    pub timeout: u64,
    /// Maximum number of retransmission attempts per message (≥ 1).
    pub max_retries: u32,
    /// Cap on the exponential backoff interval, in rounds.
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: 2,
            max_retries: 5,
            max_backoff: 16,
        }
    }
}

impl RetryPolicy {
    /// Rounds to wait before the next retransmission, after `attempts`
    /// retransmissions have already been made: `timeout · 2^attempts`,
    /// capped at `max_backoff` and floored at one round.
    fn delay_after(&self, attempts: u32) -> u64 {
        let factor = 1u64.checked_shl(attempts).unwrap_or(u64::MAX);
        self.timeout
            .saturating_mul(factor)
            .min(self.max_backoff)
            .max(1)
    }
}

/// A dropped message parked for retransmission. Carries the identity of
/// its *original* send (`orig_round`, `orig_seq`) so every attempt's
/// fate is derivable from the counter-based retry stream alone.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryEnvelope<M> {
    env: Envelope<M>,
    orig_round: u64,
    orig_seq: u64,
    /// Retransmission attempts already made (0 for a fresh drop).
    attempts: u32,
}

/// The slice of [`EngineCore`] state an engine needs while stepping
/// nodes: mailboxes plus the read-only delivery policy. Borrowing it
/// (via [`EngineCore::step_state`]) leaves the routing state untouched,
/// and the mailbox slice can be split per worker shard.
pub struct StepState<'a, M: MessageCost> {
    /// One mailbox per node, holding this round's deliveries.
    pub inboxes: &'a mut [Vec<Envelope<M>>],
    /// The fault plan (for the crashed-node check before stepping).
    pub faults: &'a FaultPlan,
    /// The run seed (for per-node round randomness).
    pub seed: u64,
    /// Per-node per-round delivery cap (`None` = unbounded).
    pub receive_cap: Option<usize>,
}

/// What the fault layer decided for one message: dropped (with a
/// cause), or delivered with `extra_delay` additional rounds of latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteFate {
    /// Why the message was discarded (`None` = delivered).
    pub dropped: Option<DropCause>,
    /// Extra delivery latency in rounds beyond the synchronous one
    /// (always 0 for dropped messages and synchronous runs).
    pub extra_delay: u64,
}

impl RouteFate {
    /// A synchronous delivery.
    pub const DELIVER: RouteFate = RouteFate {
        dropped: None,
        extra_delay: 0,
    };

    /// A drop with the given cause.
    pub const fn drop(cause: DropCause) -> RouteFate {
        RouteFate {
            dropped: Some(cause),
            extra_delay: 0,
        }
    }

    /// Whether the message was discarded.
    pub fn is_dropped(&self) -> bool {
        self.dropped.is_some()
    }
}

/// Decides the fate of one message: a pure function of
/// `(seed, round, sender, send-sequence)` plus the delivery policy.
///
/// This is the *single* source of routing randomness for every engine
/// (and for test oracles that recompute fates independently). A message
/// whose path is hard-`blocked` — crashed destination, active partition,
/// or adversarial suppression, classified by [`FaultGuards::blocked`] —
/// is dropped without consuming any randomness, so scheduling those
/// faults never shifts the coins of any unaffected message. The coin
/// itself drops with `drop_probability` and attributes to `coin_cause`
/// ([`DropCause::Coin`] for the base plan coin, [`DropCause::Link`] when
/// the per-link loss overlay supplied the probability); either way it is
/// drawn from the same per-message stream, so enabling the overlay never
/// re-keys a fate. A message under a fault-free, synchronous policy is
/// delivered without even constructing a generator — the common case
/// stays coin-free.
#[allow(clippy::too_many_arguments)]
pub fn route_fate(
    seed: u64,
    round: u64,
    src: usize,
    sequence: u64,
    blocked: Option<DropCause>,
    drop_probability: f64,
    coin_cause: DropCause,
    max_extra_delay: u64,
) -> RouteFate {
    if let Some(cause) = blocked {
        return RouteFate::drop(cause);
    }
    if drop_probability <= 0.0 && max_extra_delay == 0 {
        return RouteFate::DELIVER;
    }
    let mut rng = rng::message_route_rng(seed, src, round, sequence);
    let dropped = drop_probability > 0.0 && rng.random_bool(drop_probability);
    let extra_delay = if !dropped && max_extra_delay > 0 {
        rng.random_range(0..=max_extra_delay)
    } else {
        0
    };
    RouteFate {
        dropped: dropped.then_some(coin_cause),
        extra_delay,
    }
}

/// Decides the fate of one *retransmission attempt*: the retry analogue
/// of [`route_fate`], drawing from the independent counter-based retry
/// stream ([`rng::message_retry_rng`]) keyed by the message's original
/// `(sender, round, send-sequence)` identity and the attempt number.
/// Block checks use the state of the network at the attempt's own send
/// round, so a retransmission outlives the fault that killed the
/// original copy.
#[allow(clippy::too_many_arguments)]
pub fn retry_fate(
    seed: u64,
    src: usize,
    orig_round: u64,
    orig_seq: u64,
    attempt: u32,
    blocked: Option<DropCause>,
    drop_probability: f64,
    coin_cause: DropCause,
    max_extra_delay: u64,
) -> RouteFate {
    if let Some(cause) = blocked {
        return RouteFate::drop(cause);
    }
    if drop_probability <= 0.0 && max_extra_delay == 0 {
        return RouteFate::DELIVER;
    }
    let mut rng = rng::message_retry_rng(seed, src, orig_round, orig_seq, attempt);
    let dropped = drop_probability > 0.0 && rng.random_bool(drop_probability);
    let extra_delay = if !dropped && max_extra_delay > 0 {
        rng.random_range(0..=max_extra_delay)
    } else {
        0
    };
    RouteFate {
        dropped: dropped.then_some(coin_cause),
        extra_delay,
    }
}

/// The per-round hoisted fault classifier every routing path shares: one
/// cheap boolean per fault family per message instead of repeated plan
/// queries, and a single definition of block precedence
/// (crash > partition > suppression) and coin selection (link-loss
/// overlay over base coin), so no engine can drift on either.
#[derive(Clone, Copy)]
pub struct FaultGuards<'a> {
    faults: &'a FaultPlan,
    has_crashes: bool,
    has_partitions: bool,
    has_suppression: bool,
    has_link_loss: bool,
    base_p: f64,
}

impl<'a> FaultGuards<'a> {
    /// Hoists the plan's guard booleans and base drop probability.
    pub fn new(faults: &'a FaultPlan) -> Self {
        FaultGuards {
            faults,
            has_crashes: faults.has_crashes(),
            has_partitions: faults.has_partitions(),
            has_suppression: faults.has_suppression(),
            has_link_loss: faults.has_link_loss(),
            base_p: faults.drop_probability(),
        }
    }

    /// The coin-free block cause for a send from `src` to `dst` staged
    /// in `send_round` and arriving at `arrival_round`, if any. Liveness
    /// is checked at arrival (a long-latency message can outlive its
    /// destination); partitions and suppression at the send round.
    #[inline]
    pub fn blocked(
        &self,
        src: usize,
        dst: usize,
        send_round: u64,
        arrival_round: u64,
    ) -> Option<DropCause> {
        if self.has_crashes && self.faults.is_crashed_at(dst, arrival_round) {
            return Some(DropCause::Crash);
        }
        if self.has_partitions && self.faults.partition_blocks(src, dst, send_round) {
            return Some(DropCause::Partition);
        }
        if self.has_suppression && self.faults.suppression_blocks(src, dst, send_round) {
            return Some(DropCause::Suppression);
        }
        None
    }

    /// The effective drop coin for the link `src -> dst`: the base
    /// probability under [`DropCause::Coin`], or the link-loss overlay's
    /// under [`DropCause::Link`] when the link is lossy and the overlay
    /// bites harder.
    #[inline]
    pub fn coin(&self, src: usize, dst: usize) -> (f64, DropCause) {
        if self.has_link_loss {
            let spec = self.faults.link_loss().expect("guard implies overlay");
            if spec.is_lossy(src, dst) {
                let p = spec.loss_probability();
                if p > self.base_p {
                    return (p, DropCause::Link);
                }
            }
        }
        (self.base_p, DropCause::Coin)
    }
}

/// The read-only routing parameters one round shares across every
/// routing worker.
#[derive(Clone, Copy)]
pub struct RouteParams<'a> {
    /// The run seed.
    pub seed: u64,
    /// The round being routed.
    pub round: u64,
    /// The fault plan.
    pub faults: &'a FaultPlan,
    /// Maximum extra delivery delay in rounds (0 = synchronous).
    pub max_extra_delay: u64,
    /// Trace event capacity, when tracing is enabled.
    pub trace_capacity: Option<usize>,
    /// Causal-trace sampling rate in ppm, when causal tracing is
    /// enabled.
    pub causal_ppm: Option<u32>,
    /// Retransmission policy (`None` = best-effort delivery).
    pub reliable: Option<RetryPolicy>,
    /// Total number of nodes (for the unknown-destination check).
    pub node_count: usize,
    /// Nodes per shard (destination shard of node `i` is
    /// `i / shard_len`).
    pub shard_len: usize,
}

/// The shard-local output of routing one sender shard's staged
/// envelopes: a metrics row, a trace fragment, and per-destination-shard
/// buckets of deliverable messages. Deltas fold associatively into the
/// core's `RunMetrics`/`Trace`/delay queue (via
/// [`EngineCore::apply_route_deltas`]), which is what lets routing run
/// on independent workers without locks.
pub struct RouteDelta<M> {
    /// Messages/pointers/drops routed by this shard.
    pub row: RoundMetrics,
    /// Trace events recorded by this shard (canonical order, bounded by
    /// the trace capacity).
    pub trace_events: Vec<TraceEvent>,
    /// Events this shard observed beyond its local capacity.
    pub trace_overflow: u64,
    /// Provenance edges this shard's sampled deliveries offered
    /// (canonical order; the pair capacity applies only when deltas
    /// fold into the core's causal trace).
    pub prov: Vec<ProvEdge>,
    /// Delivered messages the causal sampler skipped in this shard.
    pub prov_sampled_out: u64,
    /// Deliverable messages per destination shard, each tagged with its
    /// extra delivery delay (0 = next round).
    pub buckets: Vec<Vec<(u64, Envelope<M>)>>,
    /// Dropped messages parked for retransmission (canonical order;
    /// empty unless reliable delivery is enabled).
    pub retries: Vec<RetryEnvelope<M>>,
}

/// Routes one sender shard's staged envelopes (canonical
/// `(sender, send-sequence)` order, senders contiguous) into
/// per-destination-shard buckets, recording sender-side tallies into
/// this shard's `sent_*` lanes (sliced from the run metrics;
/// `sent_base` is the shard's first node index).
///
/// `buckets` must hold one (empty) bucket per destination shard; they
/// are returned inside the [`RouteDelta`].
///
/// Offers one sampled message's identifier payload to the causal trace.
///
/// Archive rounds are 1-based: a message staged while the round counter
/// reads `r` is the protocol's round `sent = r + 1` send, processed by
/// its receiver in round `delivered = sent + 1 + extra_delay`.
fn offer_payload<M: MessageCost>(
    causal: &mut CausalTrace,
    env: &Envelope<M>,
    sequence: u64,
    sent: u64,
    delivered: u64,
) {
    let (src, dst) = (u32::from(env.src), u32::from(env.dst));
    env.payload.visit_ids(&mut |id| {
        causal.offer(ProvEdge {
            id: u32::from(id),
            node: dst,
            src,
            sent,
            round: delivered,
            seq: sequence,
        });
    });
}

/// # Panics
///
/// Panics if any envelope addresses a node index `>= params.node_count`.
pub fn route_shard<M: MessageCost>(
    params: RouteParams<'_>,
    staged: &mut Vec<Envelope<M>>,
    sent_base: usize,
    sent_lanes: &mut [NodeLane],
    mut buckets: Vec<Vec<(u64, Envelope<M>)>>,
) -> RouteDelta<M> {
    let mut delta = RouteDelta {
        row: RoundMetrics::default(),
        trace_events: Vec::new(),
        trace_overflow: 0,
        prov: Vec::new(),
        prov_sampled_out: 0,
        buckets: Vec::new(),
        retries: Vec::new(),
    };
    let guards = FaultGuards::new(params.faults);
    let round = params.round;
    let mut prev_src = usize::MAX;
    let mut seq = 0u64;
    for env in staged.drain(..) {
        let src = env.src.index();
        if src != prev_src {
            prev_src = src;
            seq = 0;
        }
        let sequence = seq;
        seq += 1;
        let dst = env.dst.index();
        assert!(
            dst < params.node_count,
            "message to unknown node {} from {}",
            env.dst,
            env.src
        );
        let pointers = env.payload.pointers();
        // Delivery happens at the start of the next round at the
        // earliest; a node dead by then never sees the message.
        let blocked = guards.blocked(src, dst, round, round + 1);
        let (drop_p, coin_cause) = guards.coin(src, dst);
        let fate = route_fate(
            params.seed,
            round,
            src,
            sequence,
            blocked,
            drop_p,
            coin_cause,
            params.max_extra_delay,
        );
        if let Some(capacity) = params.trace_capacity {
            if delta.trace_events.len() < capacity {
                delta.trace_events.push(TraceEvent {
                    round,
                    src: env.src,
                    dst: env.dst,
                    pointers,
                    dropped: fate.dropped,
                });
            } else {
                delta.trace_overflow += 1;
            }
        }
        let lane = &mut sent_lanes[src - sent_base];
        lane.sent_messages += 1;
        lane.sent_pointers += pointers as u64;
        if let Some(cause) = fate.dropped {
            delta.row.drops.add(cause);
            if params.reliable.is_some() {
                delta.retries.push(RetryEnvelope {
                    env,
                    orig_round: round,
                    orig_seq: sequence,
                    attempts: 0,
                });
            }
        } else {
            if pointers > 0 {
                if let Some(ppm) = params.causal_ppm {
                    // Same 1-based round arithmetic as the serial
                    // path in `EngineCore::route_batch`.
                    if rng::prov_sample(params.seed, src, round, sequence, ppm) {
                        let sent = round + 1;
                        let delivered = sent + 1 + fate.extra_delay;
                        let (esrc, edst) = (u32::from(env.src), u32::from(env.dst));
                        env.payload.visit_ids(&mut |id| {
                            delta.prov.push(ProvEdge {
                                id: u32::from(id),
                                node: edst,
                                src: esrc,
                                sent,
                                round: delivered,
                                seq: sequence,
                            });
                        });
                    } else {
                        delta.prov_sampled_out += 1;
                    }
                }
            }
            delta.row.messages += 1;
            delta.row.pointers += pointers as u64;
            buckets[dst / params.shard_len].push((fate.extra_delay, env));
        }
    }
    delta.buckets = buckets;
    delta
}

/// Merges one destination shard's buckets — one per routing worker, in
/// worker (= sender shard) order — into that shard's mailboxes and
/// `recv_*` lanes (`base` is the shard's first node index). Messages
/// with a nonzero delay are appended to `delayed_out` as
/// `(arrival round, envelope)` instead of delivered.
///
/// Processing workers in order preserves, for every destination, the
/// canonical sender order of its deliveries — the same order the
/// sequential [`EngineCore::route_batch`] produces.
pub fn merge_dest_shard<M: MessageCost>(
    round: u64,
    base: usize,
    bucket_parts: &mut [Vec<(u64, Envelope<M>)>],
    inboxes: &mut [Vec<Envelope<M>>],
    recv_lanes: &mut [NodeLane],
    delayed_out: &mut Vec<(u64, Envelope<M>)>,
) {
    for part in bucket_parts {
        for (extra, env) in part.drain(..) {
            let slot = env.dst.index() - base;
            let lane = &mut recv_lanes[slot];
            lane.recv_messages += 1;
            lane.recv_pointers += env.payload.pointers() as u64;
            if extra == 0 {
                inboxes[slot].push(env);
            } else {
                delayed_out.push((round + 1 + extra, env));
            }
        }
    }
}

/// Disjoint borrows of everything a parallel router needs from the
/// core: the routing parameters, the mailboxes, and the four per-node
/// metric lanes, each independently sliceable per shard. Obtained via
/// [`EngineCore::parallel_parts`].
pub struct ParallelParts<'a, M: MessageCost> {
    /// The run seed.
    pub seed: u64,
    /// The round being routed.
    pub round: u64,
    /// The fault plan.
    pub faults: &'a FaultPlan,
    /// Maximum extra delivery delay in rounds (0 = synchronous).
    pub max_extra_delay: u64,
    /// Trace event capacity, when tracing is enabled.
    pub trace_capacity: Option<usize>,
    /// Causal-trace sampling rate in ppm, when causal tracing is
    /// enabled.
    pub causal_ppm: Option<u32>,
    /// Retransmission policy (`None` = best-effort delivery).
    pub reliable: Option<RetryPolicy>,
    /// One mailbox per node.
    pub inboxes: &'a mut [Vec<Envelope<M>>],
    /// Per-node send/receive tallies. The route phase slices this by
    /// *sender* shard (writing `sent_*` fields only) and the merge
    /// phase re-slices it by *destination* shard (writing `recv_*`
    /// fields only); the two phases are sequential, so the same array
    /// serves both without overlapping borrows.
    pub node_lanes: &'a mut [NodeLane],
}

impl<M: MessageCost> EngineCore<M> {
    /// Creates the core for a population of `n` nodes. `seed` determines
    /// all protocol and fault randomness.
    pub fn new(n: usize, seed: u64) -> Self {
        EngineCore {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            round: 0,
            seed,
            metrics: RunMetrics::new(n),
            faults: FaultPlan::new(),
            trace: None,
            causal: None,
            detect_schedule: Vec::new(),
            active_suspects: Vec::new(),
            next_detection: 0,
            receive_cap: None,
            max_extra_delay: 0,
            delayed: std::collections::BTreeMap::new(),
            pool: BufferPool::new(),
            reliable: None,
            retransmit_queue: std::collections::BTreeMap::new(),
        }
    }

    /// Installs a fault plan (drops, crashes, recoveries, partitions).
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes a node index that does not exist.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        for c in faults.crashed_nodes() {
            assert!(c < self.inboxes.len(), "crash target {c} out of range");
        }
        if let Some(delay) = faults.detection_delay() {
            let mut schedule = Vec::new();
            for (node, crash) in faults.crash_schedule() {
                let report = crash.saturating_add(delay);
                let id = NodeId::new(node as u32);
                match faults.recovery_round(node) {
                    // Recovered before the detector would have reported
                    // it: the crash goes entirely unnoticed.
                    Some(recovery) if recovery <= report => {}
                    Some(recovery) => {
                        schedule.push((report, id, DetectorAction::Suspect));
                        schedule.push((
                            recovery.saturating_add(delay),
                            id,
                            DetectorAction::Retract,
                        ));
                    }
                    None => schedule.push((report, id, DetectorAction::Suspect)),
                }
            }
            // Churn naps are crash/recovery windows like any other: a
            // nap the detector would report before it ends gets a
            // suspect/retract pair; a nap shorter than the detector's
            // latency goes unnoticed.
            if let Some(churn) = faults.churn() {
                for node in 0..self.inboxes.len() {
                    let id = NodeId::new(node as u32);
                    for (down, up) in churn.naps(node) {
                        let report = down.saturating_add(delay);
                        if up <= report {
                            continue;
                        }
                        schedule.push((report, id, DetectorAction::Suspect));
                        schedule.push((up.saturating_add(delay), id, DetectorAction::Retract));
                    }
                }
            }
            schedule.sort_unstable();
            self.detect_schedule = schedule;
        }
        self.faults = faults;
    }

    /// Enables reliable delivery under the given retransmission policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy's timeout is 0 (a retransmission cannot
    /// happen in the round that dropped it) or its retry budget is 0
    /// (the layer would park messages and never resend them).
    pub fn set_reliable(&mut self, policy: RetryPolicy) {
        assert!(
            policy.timeout >= 1,
            "a retransmit timeout of 0 cannot resend within the dropping round"
        );
        assert!(
            policy.max_retries >= 1,
            "a reliable policy with a retry budget of 0 does nothing"
        );
        self.reliable = Some(policy);
    }

    /// Enables message tracing with the given event capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// Attaches a causal knowledge-provenance trace (typically with the
    /// initially-known pairs already seeded). Like the message trace and
    /// the recorder, it is strictly observational: sampling decisions
    /// come from their own counter-based stream ([`rng::prov_sample`]),
    /// so attaching or re-rating the trace never perturbs any message
    /// fate, on any engine or worker count.
    pub fn set_causal(&mut self, causal: CausalTrace) {
        self.causal = Some(causal);
    }

    /// The causal provenance trace, if enabled.
    pub fn causal(&self) -> Option<&CausalTrace> {
        self.causal.as_ref()
    }

    /// Detaches the causal provenance trace so a driver can archive it
    /// after the run.
    pub fn take_causal(&mut self) -> Option<CausalTrace> {
        self.causal.take()
    }

    /// Caps deliveries at `cap` messages per node per round; excess
    /// messages queue (in arrival order) for later rounds.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (nothing could ever be delivered).
    pub fn set_receive_cap(&mut self, cap: usize) {
        assert!(cap > 0, "a receive cap of 0 can never deliver anything");
        self.receive_cap = Some(cap);
    }

    /// Makes delivery asynchronous: every message independently takes
    /// `1 + U{0..=max_extra}` rounds to arrive instead of exactly one.
    pub fn set_max_extra_delay(&mut self, max_extra: u64) {
        self.max_extra_delay = max_extra;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inboxes.len()
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The complexity record.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The message trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Hit-rate counters of the core's delay-batch buffer pool
    /// (observability export).
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// Peak bytes ever parked in the delay-batch buffer pool
    /// (profiler export).
    pub fn pool_high_water_bytes(&self) -> u64 {
        self.pool.high_water_bytes()
    }

    /// Opens a round: starts its metrics row, folds newly reportable
    /// crashes into the suspect list, and moves messages whose
    /// asynchronous delay expires this round into the mailboxes.
    /// Returns the round number being executed.
    pub fn begin_round(&mut self) -> u64 {
        self.metrics.begin_round();
        let round = self.round;
        // The perfect failure detector reports each crash once its
        // per-crash latency has elapsed, and retracts the report the
        // same latency after a recovery.
        while let Some(&(at, node, action)) = self.detect_schedule.get(self.next_detection) {
            if at > round {
                break;
            }
            match action {
                DetectorAction::Suspect => self.active_suspects.push(node),
                DetectorAction::Retract => {
                    self.active_suspects.retain(|&s| s != node);
                    self.metrics.record_retraction();
                }
            }
            self.next_detection += 1;
        }
        while self
            .delayed
            .first_key_value()
            .is_some_and(|(&at, _)| at <= round)
        {
            let (_, mut batch) = self.delayed.pop_first().expect("nonempty");
            for env in batch.drain(..) {
                self.inboxes[env.dst.index()].push(env);
            }
            self.pool.put(batch);
        }
        round
    }

    /// The failure detector's current crash report. Engines clone it
    /// (it is one entry per crash) and lend it to every node stepped
    /// this round.
    pub fn suspects(&self) -> &[NodeId] {
        &self.active_suspects
    }

    /// Borrows the state needed to step nodes; see [`StepState`].
    pub fn step_state(&mut self) -> StepState<'_, M> {
        StepState {
            inboxes: &mut self.inboxes,
            faults: &self.faults,
            seed: self.seed,
            receive_cap: self.receive_cap,
        }
    }

    /// Routes a round's staged envelopes — canonical
    /// `(sender, send-sequence)` order, senders contiguous — through the
    /// fault layer into next-round mailboxes (or the delay queue),
    /// accounting every message in the metrics and the trace. The buffer
    /// is drained and left empty for reuse.
    ///
    /// Because message fates are counter-based ([`route_fate`]), calling
    /// this once over a whole round or once per sender shard (in shard
    /// order) is observationally identical — and both are bit-identical
    /// to the parallel shard/merge path.
    ///
    /// # Panics
    ///
    /// Panics if any envelope addresses a node that does not exist.
    pub fn route_batch(&mut self, staged: &mut Vec<Envelope<M>>) {
        let round = self.round;
        let n = self.inboxes.len();
        if self.trace.is_none() && self.max_extra_delay == 0 && self.faults.is_fault_free() {
            if let Some(causal) = self.causal.as_mut() {
                // Straight-line delivery, plus the causal sampler:
                // every message is delivered (fault-free, no jitter), so
                // the only extra work is the per-message sampling coin
                // and, for the sampled few, the edge offers.
                let seed = self.seed;
                let ppm = causal.sample_ppm();
                let lanes = self.metrics.lanes();
                let mut prev_src = usize::MAX;
                let mut seq = 0u64;
                let mut base = 0u64;
                let mut sampled_out = 0u64;
                for env in staged.drain(..) {
                    let src = env.src.index();
                    if src != prev_src {
                        prev_src = src;
                        seq = 0;
                        base = rng::prov_base(seed, src, round);
                    }
                    let sequence = seq;
                    seq += 1;
                    let dst = env.dst.index();
                    assert!(
                        dst < n,
                        "message to unknown node {} from {}",
                        env.dst,
                        env.src
                    );
                    let pointers = env.payload.pointers() as u64;
                    if pointers > 0 {
                        if rng::prov_sample_from(base, sequence, ppm) {
                            offer_payload(causal, &env, sequence, round + 1, round + 2);
                        } else {
                            sampled_out += 1;
                        }
                    }
                    lanes.row.messages += 1;
                    lanes.row.pointers += pointers;
                    let lane = &mut lanes.nodes[src];
                    lane.sent_messages += 1;
                    lane.sent_pointers += pointers;
                    let lane = &mut lanes.nodes[dst];
                    lane.recv_messages += 1;
                    lane.recv_pointers += pointers;
                    self.inboxes[dst].push(env);
                }
                causal.note_sampled_out_by(sampled_out);
            } else {
                // Fault-free, synchronous, untraced: every message is a
                // straight-line tally-and-push — no coins, no branches
                // on per-message state, no map lookups.
                let lanes = self.metrics.lanes();
                for env in staged.drain(..) {
                    let src = env.src.index();
                    let dst = env.dst.index();
                    assert!(
                        dst < n,
                        "message to unknown node {} from {}",
                        env.dst,
                        env.src
                    );
                    let pointers = env.payload.pointers() as u64;
                    lanes.row.messages += 1;
                    lanes.row.pointers += pointers;
                    let lane = &mut lanes.nodes[src];
                    lane.sent_messages += 1;
                    lane.sent_pointers += pointers;
                    let lane = &mut lanes.nodes[dst];
                    lane.recv_messages += 1;
                    lane.recv_pointers += pointers;
                    self.inboxes[dst].push(env);
                }
            }
            return;
        }

        let seed = self.seed;
        let max_extra = self.max_extra_delay;
        let reliable = self.reliable;
        let guards = FaultGuards::new(&self.faults);
        let trace = &mut self.trace;
        let causal = &mut self.causal;
        let delayed = &mut self.delayed;
        let pool = &mut self.pool;
        let inboxes = &mut self.inboxes;
        let queue = &mut self.retransmit_queue;
        let lanes = self.metrics.lanes();
        let mut prev_src = usize::MAX;
        let mut seq = 0u64;
        for env in staged.drain(..) {
            let src = env.src.index();
            if src != prev_src {
                prev_src = src;
                seq = 0;
            }
            let sequence = seq;
            seq += 1;
            let dst = env.dst.index();
            assert!(
                dst < n,
                "message to unknown node {} from {}",
                env.dst,
                env.src
            );
            let pointers = env.payload.pointers();
            // Delivery happens at the start of the next round at the
            // earliest; a node dead by then never sees the message.
            let blocked = guards.blocked(src, dst, round, round + 1);
            let (drop_p, coin_cause) = guards.coin(src, dst);
            let fate = route_fate(
                seed, round, src, sequence, blocked, drop_p, coin_cause, max_extra,
            );
            if let Some(trace) = trace.as_mut() {
                trace.record(TraceEvent {
                    round,
                    src: env.src,
                    dst: env.dst,
                    pointers,
                    dropped: fate.dropped,
                });
            }
            let lane = &mut lanes.nodes[src];
            lane.sent_messages += 1;
            lane.sent_pointers += pointers as u64;
            if let Some(cause) = fate.dropped {
                lanes.row.drops.add(cause);
                if let Some(policy) = reliable {
                    queue
                        .entry(round + policy.timeout)
                        .or_default()
                        .push(RetryEnvelope {
                            env,
                            orig_round: round,
                            orig_seq: sequence,
                            attempts: 0,
                        });
                }
            } else {
                if pointers > 0 {
                    if let Some(causal) = causal.as_mut() {
                        if rng::prov_sample(seed, src, round, sequence, causal.sample_ppm()) {
                            let sent = round + 1;
                            offer_payload(
                                causal,
                                &env,
                                sequence,
                                sent,
                                sent + 1 + fate.extra_delay,
                            );
                        } else {
                            causal.note_sampled_out();
                        }
                    }
                }
                lanes.row.messages += 1;
                lanes.row.pointers += pointers as u64;
                let lane = &mut lanes.nodes[dst];
                lane.recv_messages += 1;
                lane.recv_pointers += pointers as u64;
                if fate.extra_delay == 0 {
                    inboxes[dst].push(env);
                } else {
                    delayed
                        .entry(round + 1 + fate.extra_delay)
                        .or_insert_with(|| pool.take())
                        .push(env);
                }
            }
        }
    }

    /// Routes a round's staged envelopes with *caller-supplied delivery
    /// latencies* — the entry point of the discrete-event engine, where
    /// per-message latency comes from a pluggable model instead of the
    /// core's uniform-jitter knob.
    ///
    /// `latency(src, dst, sequence)` returns the delivery latency of
    /// the message in whole ticks (`>= 1`); a message sent at tick `t`
    /// arrives at tick `t + latency`. Envelope order, drop coins
    /// ([`route_fate`] with the same `(seed, src, round, sequence)`
    /// axes), and all accounting mirror [`route_batch`], so a model
    /// that always returns 1 is bit-identical to synchronous routing.
    /// Crash checks use the message's own *arrival* tick, so a
    /// long-latency message can outlive its destination.
    ///
    /// Dropped messages still park in the retransmission queue (when
    /// reliable delivery is on) at `round + timeout`; the caller decides
    /// when to drain it via [`process_due_retransmissions_timed`]
    /// (typically from a timer armed at [`next_retransmission_due`]).
    ///
    /// [`process_due_retransmissions_timed`]: EngineCore::process_due_retransmissions_timed
    /// [`next_retransmission_due`]: EngineCore::next_retransmission_due
    ///
    /// # Panics
    ///
    /// Panics if any envelope addresses a node that does not exist, if
    /// a latency of 0 is returned, or if the core's own delay jitter is
    /// also configured (the latency model supersedes it).
    pub fn route_batch_timed<F>(&mut self, staged: &mut Vec<Envelope<M>>, mut latency: F)
    where
        F: FnMut(usize, usize, u64) -> u64,
    {
        assert_eq!(
            self.max_extra_delay, 0,
            "the latency model supersedes the uniform-jitter knob"
        );
        let round = self.round;
        let n = self.inboxes.len();
        let seed = self.seed;
        let reliable = self.reliable;
        let guards = FaultGuards::new(&self.faults);
        let trace = &mut self.trace;
        let causal = &mut self.causal;
        let delayed = &mut self.delayed;
        let pool = &mut self.pool;
        let inboxes = &mut self.inboxes;
        let queue = &mut self.retransmit_queue;
        let lanes = self.metrics.lanes();
        let mut prev_src = usize::MAX;
        let mut seq = 0u64;
        for env in staged.drain(..) {
            let src = env.src.index();
            if src != prev_src {
                prev_src = src;
                seq = 0;
            }
            let sequence = seq;
            seq += 1;
            let dst = env.dst.index();
            assert!(
                dst < n,
                "message to unknown node {} from {}",
                env.dst,
                env.src
            );
            let pointers = env.payload.pointers();
            let lat = latency(src, dst, sequence);
            assert!(lat >= 1, "a delivery latency of 0 beats causality");
            // A node dead at the message's arrival tick never sees it.
            let blocked = guards.blocked(src, dst, round, round + lat);
            let (drop_p, coin_cause) = guards.coin(src, dst);
            let fate = route_fate(seed, round, src, sequence, blocked, drop_p, coin_cause, 0);
            if let Some(trace) = trace.as_mut() {
                trace.record(TraceEvent {
                    round,
                    src: env.src,
                    dst: env.dst,
                    pointers,
                    dropped: fate.dropped,
                });
            }
            let lane = &mut lanes.nodes[src];
            lane.sent_messages += 1;
            lane.sent_pointers += pointers as u64;
            if let Some(cause) = fate.dropped {
                lanes.row.drops.add(cause);
                if let Some(policy) = reliable {
                    queue
                        .entry(round + policy.timeout)
                        .or_default()
                        .push(RetryEnvelope {
                            env,
                            orig_round: round,
                            orig_seq: sequence,
                            attempts: 0,
                        });
                }
            } else {
                if pointers > 0 {
                    if let Some(causal) = causal.as_mut() {
                        if rng::prov_sample(seed, src, round, sequence, causal.sample_ppm()) {
                            let sent = round + 1;
                            offer_payload(causal, &env, sequence, sent, sent + lat);
                        } else {
                            causal.note_sampled_out();
                        }
                    }
                }
                lanes.row.messages += 1;
                lanes.row.pointers += pointers as u64;
                let lane = &mut lanes.nodes[dst];
                lane.recv_messages += 1;
                lane.recv_pointers += pointers as u64;
                if lat == 1 {
                    inboxes[dst].push(env);
                } else {
                    delayed
                        .entry(round + lat)
                        .or_insert_with(|| pool.take())
                        .push(env);
                }
            }
        }
    }

    /// Borrows the state a parallel router needs; see [`ParallelParts`].
    ///
    /// # Panics
    ///
    /// Panics if no round is open (`begin_round` not called).
    pub fn parallel_parts(&mut self) -> ParallelParts<'_, M> {
        let lanes = self.metrics.lanes();
        ParallelParts {
            seed: self.seed,
            round: self.round,
            faults: &self.faults,
            max_extra_delay: self.max_extra_delay,
            trace_capacity: self.trace.as_ref().map(Trace::capacity),
            causal_ppm: self.causal.as_ref().map(CausalTrace::sample_ppm),
            reliable: self.reliable,
            inboxes: &mut self.inboxes,
            node_lanes: lanes.nodes,
        }
    }

    /// Folds per-shard routing results back into the core: metric rows
    /// and trace fragments from `deltas` (in shard order) and delayed
    /// deliveries from the merge phase (as `(arrival round, envelope)`,
    /// one list per destination shard, in shard order).
    ///
    /// Trace fragments concatenate to the canonical global order, so
    /// re-recording them through the capacity-bounded [`Trace`] stores
    /// exactly the events the sequential path would have stored. Delayed
    /// lists are keyed into the delay queue; only per-destination
    /// relative order is observable at delivery time, and that order
    /// (canonical sender order per destination) is already fixed by the
    /// merge phase.
    pub fn apply_route_deltas(
        &mut self,
        deltas: &mut [RouteDelta<M>],
        delayed_lists: &mut [Vec<(u64, Envelope<M>)>],
    ) {
        let reliable = self.reliable;
        let round = self.round;
        let queue = &mut self.retransmit_queue;
        let lanes = self.metrics.lanes();
        for delta in deltas.iter_mut() {
            lanes.row.messages += delta.row.messages;
            lanes.row.pointers += delta.row.pointers;
            lanes.row.drops.merge(&delta.row.drops);
            lanes.row.retransmissions += delta.row.retransmissions;
            if let Some(trace) = self.trace.as_mut() {
                for event in delta.trace_events.drain(..) {
                    trace.record(event);
                }
                trace.add_overflow(delta.trace_overflow);
            }
            if let Some(causal) = self.causal.as_mut() {
                // Shard order = canonical offer order, so re-offering
                // the fragments reproduces the serial path's DAG,
                // capacity effects included.
                causal.fold(&delta.prov, delta.prov_sampled_out);
                delta.prov.clear();
            }
            if let Some(policy) = reliable {
                if !delta.retries.is_empty() {
                    // Shard order = canonical sender order, so the queue
                    // batch matches what the serial path builds.
                    queue
                        .entry(round + policy.timeout)
                        .or_default()
                        .append(&mut delta.retries);
                }
            }
        }
        let delayed = &mut self.delayed;
        let pool = &mut self.pool;
        for list in delayed_lists.iter_mut() {
            for (at, env) in list.drain(..) {
                delayed.entry(at).or_insert_with(|| pool.take()).push(env);
            }
        }
    }

    /// Closes the round: makes any due retransmission attempts (when
    /// reliable delivery is enabled), then advances the clock.
    pub fn finish_round(&mut self) {
        if self.reliable.is_some() {
            self.process_retransmissions();
        }
        self.round += 1;
    }

    /// Makes every retransmission attempt due by the current round.
    ///
    /// Runs serially (after routing) in every engine, draining the
    /// resend queue in `(resend round, canonical drop order)` order, so
    /// the sequential and sharded engines replay attempts identically.
    /// Attempts are charged like fresh sends (plus the
    /// `retransmissions` tally) but are not traced — the trace records
    /// the protocol's own sends. A still-failing attempt re-parks the
    /// message with exponentially backed-off delay until the retry
    /// budget runs out; because crash and partition checks use the
    /// attempt's own round, a retransmission can land after its
    /// destination recovers or the partition heals.
    fn process_retransmissions(&mut self) {
        let policy = self.reliable.expect("reliable delivery enabled");
        let round = self.round;
        let seed = self.seed;
        let max_extra = self.max_extra_delay;
        let guards = FaultGuards::new(&self.faults);
        let inboxes = &mut self.inboxes;
        let delayed = &mut self.delayed;
        let pool = &mut self.pool;
        let queue = &mut self.retransmit_queue;
        let lanes = self.metrics.lanes();
        while queue.first_key_value().is_some_and(|(&at, _)| at <= round) {
            let (_, batch) = queue.pop_first().expect("nonempty");
            for retry in batch {
                let src = retry.env.src.index();
                let dst = retry.env.dst.index();
                let attempt = retry.attempts + 1;
                let blocked = guards.blocked(src, dst, round, round + 1);
                let (drop_p, coin_cause) = guards.coin(src, dst);
                let fate = retry_fate(
                    seed,
                    src,
                    retry.orig_round,
                    retry.orig_seq,
                    attempt,
                    blocked,
                    drop_p,
                    coin_cause,
                    max_extra,
                );
                let pointers = retry.env.payload.pointers() as u64;
                lanes.row.retransmissions += 1;
                let lane = &mut lanes.nodes[src];
                lane.sent_messages += 1;
                lane.sent_pointers += pointers;
                if let Some(cause) = fate.dropped {
                    lanes.row.drops.add(cause);
                    if attempt < policy.max_retries {
                        // Backoff delays are ≥ 1, so the new slot is
                        // strictly in the future and never re-drained
                        // by this loop.
                        queue
                            .entry(round + policy.delay_after(attempt))
                            .or_default()
                            .push(RetryEnvelope {
                                attempts: attempt,
                                ..retry
                            });
                    }
                } else {
                    lanes.row.messages += 1;
                    lanes.row.pointers += pointers;
                    let lane = &mut lanes.nodes[dst];
                    lane.recv_messages += 1;
                    lane.recv_pointers += pointers;
                    if fate.extra_delay == 0 {
                        inboxes[dst].push(retry.env);
                    } else {
                        delayed
                            .entry(round + 1 + fate.extra_delay)
                            .or_insert_with(|| pool.take())
                            .push(retry.env);
                    }
                }
            }
        }
    }

    /// The earliest tick at which a parked retransmission becomes due,
    /// if any. Timer-driven engines arm a wake-up at this instant and
    /// drain the queue with [`process_due_retransmissions_timed`] when
    /// it fires.
    ///
    /// [`process_due_retransmissions_timed`]: EngineCore::process_due_retransmissions_timed
    pub fn next_retransmission_due(&self) -> Option<u64> {
        self.retransmit_queue.keys().next().copied()
    }

    /// Makes every retransmission attempt due by the current tick, with
    /// *caller-supplied delivery latencies* for the attempts that
    /// succeed — the discrete-event counterpart of the per-round sweep
    /// inside [`finish_round`](EngineCore::finish_round).
    ///
    /// `latency(src, dst, orig_round, orig_seq, attempt)` returns the
    /// attempt's delivery latency in whole ticks (`>= 1`). Drain order,
    /// attempt coins ([`retry_fate`] on the same axes), backoff
    /// re-parking, and all accounting mirror the sweep, so a model that
    /// always returns 1 is bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if reliable delivery is not enabled or a latency of 0 is
    /// returned.
    pub fn process_due_retransmissions_timed<F>(&mut self, mut latency: F)
    where
        F: FnMut(usize, usize, u64, u64, u32) -> u64,
    {
        let policy = self.reliable.expect("reliable delivery enabled");
        let round = self.round;
        let seed = self.seed;
        let guards = FaultGuards::new(&self.faults);
        let inboxes = &mut self.inboxes;
        let delayed = &mut self.delayed;
        let pool = &mut self.pool;
        let queue = &mut self.retransmit_queue;
        let lanes = self.metrics.lanes();
        while queue.first_key_value().is_some_and(|(&at, _)| at <= round) {
            let (_, batch) = queue.pop_first().expect("nonempty");
            for retry in batch {
                let src = retry.env.src.index();
                let dst = retry.env.dst.index();
                let attempt = retry.attempts + 1;
                let lat = latency(src, dst, retry.orig_round, retry.orig_seq, attempt);
                assert!(lat >= 1, "a delivery latency of 0 beats causality");
                let blocked = guards.blocked(src, dst, round, round + lat);
                let (drop_p, coin_cause) = guards.coin(src, dst);
                let fate = retry_fate(
                    seed,
                    src,
                    retry.orig_round,
                    retry.orig_seq,
                    attempt,
                    blocked,
                    drop_p,
                    coin_cause,
                    0,
                );
                let pointers = retry.env.payload.pointers() as u64;
                lanes.row.retransmissions += 1;
                let lane = &mut lanes.nodes[src];
                lane.sent_messages += 1;
                lane.sent_pointers += pointers;
                if let Some(cause) = fate.dropped {
                    lanes.row.drops.add(cause);
                    if attempt < policy.max_retries {
                        queue
                            .entry(round + policy.delay_after(attempt))
                            .or_default()
                            .push(RetryEnvelope {
                                attempts: attempt,
                                ..retry
                            });
                    }
                } else {
                    lanes.row.messages += 1;
                    lanes.row.pointers += pointers;
                    let lane = &mut lanes.nodes[dst];
                    lane.recv_messages += 1;
                    lane.recv_pointers += pointers;
                    if lat == 1 {
                        inboxes[dst].push(retry.env);
                    } else {
                        delayed
                            .entry(round + lat)
                            .or_insert_with(|| pool.take())
                            .push(retry.env);
                    }
                }
            }
        }
    }

    /// Closes a tick *without* the per-round retransmission sweep:
    /// advances the clock and nothing else. Timer-driven engines that
    /// drain retransmissions explicitly (via
    /// [`process_due_retransmissions_timed`]) call this instead of
    /// [`finish_round`](EngineCore::finish_round).
    ///
    /// [`process_due_retransmissions_timed`]: EngineCore::process_due_retransmissions_timed
    pub fn finish_tick(&mut self) {
        self.round += 1;
    }
}

/// Takes a node's deliverable inbox for this round: the whole mailbox,
/// or — under a receive cap — the oldest `cap` messages (moved into
/// `scratch`, which is overwritten), leaving the rest queued for later
/// rounds. Either way the returned buffer is the one to hand to
/// [`step_node`], which clears it after the node runs, so mailbox
/// capacity is recycled across rounds instead of reallocated.
pub fn take_capped<'a, M>(
    inbox: &'a mut Vec<Envelope<M>>,
    scratch: &'a mut Vec<Envelope<M>>,
    cap: Option<usize>,
) -> &'a mut Vec<Envelope<M>> {
    match cap {
        Some(cap) if inbox.len() > cap => {
            // Deliver the oldest `cap` messages; the rest wait.
            scratch.clear();
            scratch.extend(inbox.drain(..cap));
            scratch
        }
        _ => inbox,
    }
}

/// Runs one node for one round: builds its private
/// per-`(seed, node, round)` random stream and its [`RoundContext`],
/// and hands it `inbox` (cleared afterwards, so the buffer can be
/// reused). Sends are appended to `outbox` in send order.
///
/// This is the single entry point through which every engine executes
/// protocol logic, so context construction (and thus the randomness a
/// node observes) cannot differ between engines.
pub fn step_node<N: Node>(
    node: &mut N,
    index: usize,
    round: u64,
    seed: u64,
    suspects: &[NodeId],
    inbox: &mut Vec<Envelope<N::Msg>>,
    outbox: &mut Vec<Envelope<N::Msg>>,
) {
    let mut node_rng = rng::node_round_rng(seed, index, round);
    let mut ctx = RoundContext::new(NodeId::new(index as u32), round, &mut node_rng, outbox)
        .with_suspects(suspects);
    node.on_round(inbox, &mut ctx);
    inbox.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    impl MessageCost for u32 {
        fn pointers(&self) -> usize {
            1
        }
        fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
            visit(NodeId::new(*self));
        }
    }

    fn env(src: u32, dst: u32, payload: u32) -> Envelope<u32> {
        Envelope::new(NodeId::new(src), NodeId::new(dst), payload)
    }

    #[test]
    fn take_capped_full_and_split() {
        let mut inbox = vec![env(1, 0, 10), env(2, 0, 20), env(3, 0, 30)];
        let mut scratch = Vec::new();
        {
            let got = take_capped(&mut inbox, &mut scratch, Some(2));
            assert_eq!(got.len(), 2);
            assert_eq!(got[0].payload, 10);
        }
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].payload, 30);

        let got = take_capped(&mut inbox, &mut scratch, None);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 30);
    }

    #[test]
    fn route_batch_delivers_into_next_round_mailbox() {
        let mut core: EngineCore<u32> = EngineCore::new(3, 1);
        assert_eq!(core.begin_round(), 0);
        core.route_batch(&mut vec![env(0, 2, 7)]);
        core.finish_round();
        assert_eq!(core.round(), 1);
        assert_eq!(core.metrics().total_messages(), 1);
        let state = core.step_state();
        assert_eq!(state.inboxes[2].len(), 1);
        assert!(state.inboxes[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn route_batch_rejects_unknown_destination() {
        let mut core: EngineCore<u32> = EngineCore::new(2, 1);
        core.begin_round();
        core.route_batch(&mut vec![env(0, 5, 1)]);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn route_shard_rejects_unknown_destination() {
        let params = RouteParams {
            seed: 1,
            round: 0,
            faults: &FaultPlan::new(),
            max_extra_delay: 0,
            trace_capacity: None,
            causal_ppm: None,
            reliable: None,
            node_count: 2,
            shard_len: 2,
        };
        route_shard(
            params,
            &mut vec![env(0, 5, 1)],
            0,
            &mut [NodeLane::default(), NodeLane::default()],
            vec![Vec::new()],
        );
    }

    #[test]
    fn route_fate_is_a_pure_function_of_its_inputs() {
        let fate = |seq| route_fate(9, 3, 1, seq, None, 0.5, DropCause::Coin, 4);
        assert_eq!(fate(0), fate(0));
        assert_eq!(fate(7), fate(7));
        // A fault-free synchronous policy never drops or delays.
        assert_eq!(
            route_fate(9, 3, 1, 0, None, 0.0, DropCause::Coin, 0),
            RouteFate::DELIVER
        );
        // A blocked path always drops with its cause, without consuming
        // coins.
        for cause in [
            DropCause::Crash,
            DropCause::Partition,
            DropCause::Suppression,
        ] {
            assert_eq!(
                route_fate(9, 3, 1, 0, Some(cause), 0.0, DropCause::Coin, 0),
                RouteFate::drop(cause)
            );
        }
        // The coin attributes to the caller-selected cause (the link
        // overlay substitutes `Link`) without changing the coin itself.
        for seq in 0..128 {
            let base = route_fate(9, 3, 1, seq, None, 0.5, DropCause::Coin, 4);
            let link = route_fate(9, 3, 1, seq, None, 0.5, DropCause::Link, 4);
            assert_eq!(base.is_dropped(), link.is_dropped(), "same coin, seq {seq}");
            assert_eq!(base.extra_delay, link.extra_delay);
            if link.is_dropped() {
                assert_eq!(link.dropped, Some(DropCause::Link));
            }
        }
        // Fates vary across the sequence axis (statistically: across
        // 128 sequence numbers at p = 0.5, both outcomes must occur).
        let drops = (0..128).filter(|&s| fate(s).is_dropped()).count();
        assert!(drops > 0 && drops < 128, "sequence axis ignored: {drops}");
    }

    #[test]
    fn retry_fate_is_pure_and_independent_of_the_route_stream() {
        let fate = |attempt| retry_fate(9, 1, 3, 0, attempt, None, 0.5, DropCause::Coin, 0);
        assert_eq!(fate(1), fate(1));
        // Attempts draw independent coins (statistically: across 128
        // attempts at p = 0.5, both outcomes must occur).
        let drops = (1..=128).filter(|&a| fate(a).is_dropped()).count();
        assert!(drops > 0 && drops < 128, "attempt axis ignored: {drops}");
        assert_eq!(
            retry_fate(
                9,
                1,
                3,
                0,
                1,
                Some(DropCause::Crash),
                0.0,
                DropCause::Coin,
                0
            ),
            RouteFate::drop(DropCause::Crash)
        );
        assert_eq!(
            retry_fate(
                9,
                1,
                3,
                0,
                1,
                Some(DropCause::Partition),
                0.0,
                DropCause::Coin,
                0
            ),
            RouteFate::drop(DropCause::Partition)
        );
        assert_eq!(
            retry_fate(9, 1, 3, 0, 1, None, 0.0, DropCause::Coin, 0),
            RouteFate::DELIVER
        );
    }

    #[test]
    fn fault_guards_classify_blocks_and_coins() {
        let plan = FaultPlan::new()
            .with_drop_probability(0.1)
            .with_crash_at(3, 5)
            .with_partition([vec![0, 1], vec![2, 3]], 0, 10)
            .with_suppression(crate::faults::SuppressionSpec::new(
                7,
                [(0, 1)],
                0,
                10,
                1_000_000,
            ))
            .with_link_loss(crate::faults::LinkLossSpec::new(7, 1_000_000, 400_000));
        let guards = FaultGuards::new(&plan);
        // Precedence: crash beats partition beats suppression.
        assert_eq!(guards.blocked(0, 3, 6, 7), Some(DropCause::Crash));
        assert_eq!(guards.blocked(0, 3, 2, 3), Some(DropCause::Partition));
        assert_eq!(guards.blocked(0, 1, 2, 3), Some(DropCause::Suppression));
        assert_eq!(guards.blocked(0, 1, 12, 13), None, "windows expired");
        // Every link is lossy at 40% > base 10%: the overlay's coin wins.
        assert_eq!(guards.coin(0, 1), (0.4, DropCause::Link));
        // A weaker overlay defers to the base coin.
        let weak = FaultPlan::new()
            .with_drop_probability(0.5)
            .with_link_loss(crate::faults::LinkLossSpec::new(7, 1_000_000, 400_000));
        assert_eq!(FaultGuards::new(&weak).coin(0, 1), (0.5, DropCause::Coin));
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let policy = RetryPolicy {
            timeout: 2,
            max_retries: 8,
            max_backoff: 12,
        };
        assert_eq!(policy.delay_after(0), 2);
        assert_eq!(policy.delay_after(1), 4);
        assert_eq!(policy.delay_after(2), 8);
        assert_eq!(policy.delay_after(3), 12, "capped");
        assert_eq!(policy.delay_after(63), 12, "no overflow");
        let min = RetryPolicy {
            timeout: 1,
            max_retries: 1,
            max_backoff: 0,
        };
        assert_eq!(min.delay_after(5), 1, "floored at one round");
    }

    #[test]
    fn batch_and_shard_routing_agree_under_faults_and_delay() {
        // The serial batch path and the shard/merge path must produce
        // identical mailboxes, delay queues, metrics, and traces.
        let staged = || -> Vec<Envelope<u32>> {
            let mut v = Vec::new();
            for src in 0..4u32 {
                for k in 0..5u32 {
                    v.push(env(src, (src + k + 1) % 6, src * 10 + k));
                }
            }
            v
        };
        let plan = || {
            FaultPlan::new()
                .with_drop_probability(0.3)
                .with_crashes([5])
                .with_partition([vec![0, 1, 2], vec![3, 4]], 0, 2)
        };

        let mut serial: EngineCore<u32> = EngineCore::new(6, 42);
        serial.set_faults(plan());
        serial.set_max_extra_delay(2);
        serial.enable_trace(1 << 10);
        serial.set_causal(CausalTrace::new(1 << 10, 600_000));
        serial.set_reliable(RetryPolicy::default());
        serial.begin_round();
        serial.route_batch(&mut staged());

        let mut sharded: EngineCore<u32> = EngineCore::new(6, 42);
        sharded.set_faults(plan());
        sharded.set_max_extra_delay(2);
        sharded.enable_trace(1 << 10);
        sharded.set_causal(CausalTrace::new(1 << 10, 600_000));
        sharded.set_reliable(RetryPolicy::default());
        sharded.begin_round();
        let shard_len = 2;
        {
            let parts = sharded.parallel_parts();
            let params = RouteParams {
                seed: parts.seed,
                round: parts.round,
                faults: parts.faults,
                max_extra_delay: parts.max_extra_delay,
                trace_capacity: parts.trace_capacity,
                causal_ppm: parts.causal_ppm,
                reliable: parts.reliable,
                node_count: 6,
                shard_len,
            };
            let all = staged();
            let mut deltas = Vec::new();
            for w in 0..3 {
                // Sender shard w: envelopes whose src is in the shard.
                let mut mine: Vec<_> = all
                    .iter()
                    .filter(|e| e.src.index() / shard_len == w)
                    .cloned()
                    .collect();
                let lo = w * shard_len;
                let hi = lo + shard_len;
                deltas.push(route_shard(
                    params,
                    &mut mine,
                    lo,
                    &mut parts.node_lanes[lo..hi],
                    (0..3).map(|_| Vec::new()).collect(),
                ));
            }
            let mut delayed_lists: Vec<Vec<(u64, Envelope<u32>)>> =
                (0..3).map(|_| Vec::new()).collect();
            for (d, delayed) in delayed_lists.iter_mut().enumerate() {
                let mut parts_d: Vec<Vec<(u64, Envelope<u32>)>> = deltas
                    .iter_mut()
                    .map(|delta| std::mem::take(&mut delta.buckets[d]))
                    .collect();
                let lo = d * shard_len;
                let hi = lo + shard_len;
                merge_dest_shard(
                    params.round,
                    lo,
                    &mut parts_d,
                    &mut parts.inboxes[lo..hi],
                    &mut parts.node_lanes[lo..hi],
                    delayed,
                );
            }
            sharded.apply_route_deltas(&mut deltas, &mut delayed_lists);
        }

        assert_eq!(serial.metrics(), sharded.metrics());
        assert!(serial.metrics().drop_tally().partition > 0);
        assert_eq!(
            serial.trace().unwrap().events(),
            sharded.trace().unwrap().events()
        );
        // The provenance DAG (edges, roots, and every counter) folds to
        // the exact serial result, sampling included.
        assert_eq!(serial.causal(), sharded.causal());
        assert!(!serial.causal().unwrap().is_empty());
        assert!(serial.causal().unwrap().sampled_out() > 0);
        // Every drop was parked for retransmission, in the same order.
        assert_eq!(serial.retransmit_queue, sharded.retransmit_queue);
        assert_eq!(
            serial
                .retransmit_queue
                .values()
                .map(Vec::len)
                .sum::<usize>() as u64,
            serial.metrics().total_dropped()
        );
        // Mailbox contents agree exactly.
        for i in 0..6 {
            assert_eq!(
                serial.step_state().inboxes[i],
                sharded.step_state().inboxes[i],
                "mailbox {i} diverged"
            );
        }
        // Delay queues agree on arrival rounds and, per destination, on
        // the exact delivery sequence. (Cross-destination interleaving
        // inside a batch is unobservable: `begin_round` splits every
        // batch into per-node mailboxes.)
        let keys = |c: &EngineCore<u32>| c.delayed.keys().copied().collect::<Vec<_>>();
        assert_eq!(keys(&serial), keys(&sharded));
        for (at, batch) in &serial.delayed {
            let other = &sharded.delayed[at];
            for dst in 0..6u32 {
                let per_dst = |b: &[Envelope<u32>]| {
                    b.iter()
                        .filter(|e| e.dst == NodeId::new(dst))
                        .map(|e| e.payload)
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    per_dst(batch),
                    per_dst(other),
                    "delayed to {dst} at {at} diverged"
                );
            }
        }
    }

    #[test]
    fn detector_feeds_suspects_in_report_order() {
        let mut core: EngineCore<u32> = EngineCore::new(4, 1);
        core.set_faults(
            FaultPlan::new()
                .with_crashes([2])
                .with_crash_at(1, 3)
                .with_crash_detection_after(2),
        );
        for expect in [
            &[][..],
            &[][..],
            &[NodeId::new(2)][..],
            &[NodeId::new(2)][..],
            &[NodeId::new(2)][..],
            &[NodeId::new(2), NodeId::new(1)][..],
        ] {
            core.begin_round();
            assert_eq!(core.suspects(), expect, "round {}", core.round());
            core.finish_round();
        }
    }

    #[test]
    fn detector_retracts_suspicion_after_recovery() {
        // Node 1 dead rounds 2..5, detector latency 2: suspected at 4,
        // retracted at 7. Node 2 dead 0..3 but its recovery (3) lands
        // before its report (2 + 2 = 4)? No — report would be at 2,
        // recovery at 3 is after it, so it is suspected then retracted.
        let mut core: EngineCore<u32> = EngineCore::new(4, 1);
        core.set_faults(
            FaultPlan::new()
                .with_crash_at(1, 2)
                .with_recovery_at(1, 5)
                .with_crashes([2])
                .with_recovery_at(2, 3)
                .with_crash_detection_after(2),
        );
        for (round, expect) in [
            (0u64, &[][..]),
            (1, &[][..]),
            (2, &[NodeId::new(2)][..]),
            (3, &[NodeId::new(2)][..]),
            (4, &[NodeId::new(2), NodeId::new(1)][..]),
            (5, &[NodeId::new(1)][..]), // node 2's retraction at 3+2
            (6, &[NodeId::new(1)][..]),
            (7, &[][..]), // node 1's retraction at 5+2
            (8, &[][..]),
        ] {
            core.begin_round();
            assert_eq!(core.suspects(), expect, "round {round}");
            core.finish_round();
        }
        assert_eq!(core.metrics().detector_retractions(), 2);
    }

    #[test]
    fn fast_recovery_is_never_suspected() {
        // Recovery at 3 beats the would-be report at 0 + 4 = 4.
        let mut core: EngineCore<u32> = EngineCore::new(4, 1);
        core.set_faults(
            FaultPlan::new()
                .with_crashes([2])
                .with_recovery_at(2, 3)
                .with_crash_detection_after(4),
        );
        for _ in 0..8 {
            core.begin_round();
            assert_eq!(core.suspects(), &[][..]);
            core.finish_round();
        }
        assert_eq!(core.metrics().detector_retractions(), 0);
    }

    #[test]
    fn reliable_delivery_retries_through_a_crash_window() {
        // Node 1 is dead for rounds 1..4. A message sent to it in round
        // 0 is dropped, parked, and retried (timeout 1, backoff 1-2-4…)
        // until an attempt lands after the recovery.
        let mut core: EngineCore<u32> = EngineCore::new(2, 7);
        core.set_faults(FaultPlan::new().with_crash_at(1, 1).with_recovery_at(1, 4));
        core.set_reliable(RetryPolicy {
            timeout: 1,
            max_retries: 5,
            max_backoff: 8,
        });
        core.begin_round();
        core.route_batch(&mut vec![env(0, 1, 99)]);
        core.finish_round();
        for _ in 0..5 {
            core.begin_round();
            core.route_batch(&mut Vec::new());
            core.finish_round();
        }
        let delivered = core.step_state().inboxes[1].iter().any(|e| e.payload == 99);
        assert!(delivered, "retransmission never landed");
        let m = core.metrics();
        assert_eq!(m.total_retransmissions(), 2, "attempts at rounds 1 and 3");
        assert_eq!(m.total_dropped(), 2, "original send plus first retry");
        assert_eq!(m.drop_tally().crash, 2);
        assert_eq!(
            m.total_messages(),
            3,
            "one original send plus two retransmissions"
        );
    }

    #[test]
    fn reliable_delivery_gives_up_after_its_retry_budget() {
        // Node 1 never recovers; the retry budget (2) runs out and the
        // queue drains without delivering.
        let mut core: EngineCore<u32> = EngineCore::new(2, 7);
        core.set_faults(FaultPlan::new().with_crash_at(1, 1));
        core.set_reliable(RetryPolicy {
            timeout: 1,
            max_retries: 2,
            max_backoff: 8,
        });
        core.begin_round();
        core.route_batch(&mut vec![env(0, 1, 99)]);
        core.finish_round();
        for _ in 0..8 {
            core.begin_round();
            core.route_batch(&mut Vec::new());
            core.finish_round();
        }
        assert!(core.step_state().inboxes[1].is_empty());
        assert!(core.retransmit_queue.is_empty(), "budget exhausted");
        assert_eq!(core.metrics().total_retransmissions(), 2);
        assert_eq!(core.metrics().total_dropped(), 3);
    }

    #[test]
    fn reliable_delivery_retries_across_a_partition_heal() {
        let mut core: EngineCore<u32> = EngineCore::new(4, 7);
        core.set_faults(FaultPlan::new().with_partition([vec![0, 1], vec![2, 3]], 0, 2));
        core.set_reliable(RetryPolicy {
            timeout: 2,
            max_retries: 3,
            max_backoff: 8,
        });
        core.begin_round();
        core.route_batch(&mut vec![env(0, 2, 55)]);
        core.finish_round();
        for _ in 0..4 {
            core.begin_round();
            core.route_batch(&mut Vec::new());
            core.finish_round();
        }
        // Dropped at round 0 (partition), retried at round 2 (healed).
        assert!(core.step_state().inboxes[2].iter().any(|e| e.payload == 55));
        let m = core.metrics();
        assert_eq!(m.drop_tally().partition, 1);
        assert_eq!(m.total_retransmissions(), 1);
    }
}
