#![warn(missing_docs)]

//! # rd-scenarios
//!
//! A declarative fault-campaign suite for the resource-discovery
//! reproduction: each [`Scenario`] names a workload (topology,
//! algorithms, engine), a fault campaign ([`FaultPlan`]), and the
//! acceptance [`Thresholds`] the run must meet — verdict class, rounds
//! to converge, message overhead, retransmission overhead. The
//! [`library`] assembles the standing campaign matrix; `scenario_runner`
//! executes it, renders a deterministic pass/fail report, and appends
//! throughput rows in the `BENCH_*.json` schema so the matrix sits
//! under the `rd-inspect bench-diff` gate.
//!
//! Scenarios are *instantiated* for a concrete `(n, seed)`: fault
//! campaigns that depend on the generated knowledge graph (the
//! adversarial suppression campaign targets the highest-degree contact
//! edges) regenerate it with the same `topology.generate(n, seed)` call
//! the runner itself makes, so the campaign attacks exactly the graph
//! the run uses.

use rd_core::runner::{run, AlgorithmKind, EngineKind, ObsSpec, RunConfig, RunReport, RunVerdict};
use rd_event::LatencyModel;
use rd_graphs::{DiGraph, Topology};
use rd_sim::{ChurnSpec, FaultPlan, LinkLossSpec, RetryPolicy, SuppressionSpec};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The verdict classes a scenario can accept — [`RunVerdict`] with the
/// payload erased, so thresholds can name classes declaratively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictClass {
    /// Converged with every machine live.
    Complete,
    /// Converged among the survivors of at least one permanent crash.
    DegradedComplete,
    /// The convergence watchdog fired.
    Stalled,
    /// The round budget ran out.
    BudgetExhausted,
}

impl VerdictClass {
    /// The class of a concrete run verdict.
    pub fn of(verdict: &RunVerdict) -> Self {
        match verdict {
            RunVerdict::Complete => VerdictClass::Complete,
            RunVerdict::DegradedComplete => VerdictClass::DegradedComplete,
            RunVerdict::Stalled { .. } => VerdictClass::Stalled,
            RunVerdict::BudgetExhausted => VerdictClass::BudgetExhausted,
        }
    }

    /// Display name (matches [`RunVerdict::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            VerdictClass::Complete => "complete",
            VerdictClass::DegradedComplete => "degraded-complete",
            VerdictClass::Stalled => "stalled",
            VerdictClass::BudgetExhausted => "budget-exhausted",
        }
    }
}

/// Acceptance gates one scenario run must meet.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Verdict classes that count as acceptable endings.
    pub allowed: Vec<VerdictClass>,
    /// Rounds-to-converge ceiling.
    pub max_rounds: u64,
    /// Rounds-to-converge floor (0 disables). Continuous-churn uses
    /// this to prove the run *sustained* the churn regime rather than
    /// slipping past it.
    pub min_rounds: u64,
    /// Ceiling on mean messages per node over the whole run.
    pub max_messages_per_node: f64,
    /// Ceiling on retransmissions as a fraction of messages sent
    /// (`f64::INFINITY` disables; meaningful only with reliable
    /// delivery).
    pub max_retx_overhead: f64,
}

impl Thresholds {
    /// Scales the rounds ceiling by `factor` (floored at 1 round).
    /// `scenario_runner --tighten` uses this to demonstrate that a
    /// deliberately unreachable ceiling produces an attributable
    /// failure, not a silent pass.
    pub fn tighten(&mut self, factor: f64) {
        assert!(factor > 0.0, "tighten factor must be positive");
        self.max_rounds = ((self.max_rounds as f64 * factor) as u64).max(1);
    }
}

/// One declarative fault campaign: workload, faults, and acceptance
/// gates, instantiated for a concrete `(n, seed)`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable campaign name (also the bench-row key).
    pub name: &'static str,
    /// One-line description for `--list` and the report.
    pub summary: &'static str,
    /// Initial knowledge-graph family.
    pub topology: Topology,
    /// Algorithms the campaign runs (each is one gated run).
    pub algorithms: Vec<AlgorithmKind>,
    /// Execution engine.
    pub engine: EngineKind,
    /// Fault campaign.
    pub faults: FaultPlan,
    /// Opt-in reliable delivery.
    pub reliable: Option<RetryPolicy>,
    /// Convergence watchdog window, if armed. Must exceed the longest
    /// knowledge plateau the campaign can legitimately cause.
    pub stall_window: Option<u64>,
    /// Hard round budget for the run — set well above
    /// `thresholds.max_rounds` so "converged but too slow" and "never
    /// converged" stay distinguishable.
    pub budget: u64,
    /// Acceptance gates.
    pub thresholds: Thresholds,
    /// Instance size the campaign was instantiated for.
    pub n: usize,
    /// Run seed the campaign was instantiated for.
    pub seed: u64,
}

impl Scenario {
    /// The [`RunConfig`] for one algorithm of this scenario. With
    /// `obs_dir`, the run writes a schema-versioned JSONL archive plus
    /// a causal provenance trace, so `rd-inspect why` can attribute a
    /// failed gate to its dominant fault cause.
    pub fn run_config(&self, obs_dir: Option<&Path>, algorithm: &AlgorithmKind) -> RunConfig {
        let mut config = RunConfig::new(self.topology, self.n, self.seed)
            .with_engine(self.engine)
            .with_faults(self.faults.clone())
            .with_max_rounds(self.budget);
        if let Some(policy) = self.reliable {
            config = config.with_reliable_delivery(policy);
        }
        if let Some(window) = self.stall_window {
            config = config.with_stall_window(window);
        }
        if let Some(dir) = obs_dir {
            let archive = dir.join(format!("{}-{}.jsonl", self.name, algorithm.name()));
            // Heartbeat: fault campaigns run long enough (churn +
            // reliable delivery can take thousands of rounds) that a
            // rate-limited stderr progress line pays for itself.
            config = config.with_obs(
                ObsSpec::new()
                    .with_archive(archive)
                    .with_causal_trace(1 << 20, 1_000_000)
                    .with_heartbeat(),
            );
        }
        config
    }

    /// Runs every algorithm of the scenario and gates each report.
    pub fn execute(&self, obs_dir: Option<&Path>) -> Vec<ScenarioOutcome> {
        self.algorithms
            .iter()
            .map(|kind| {
                let report = run(*kind, &self.run_config(obs_dir, kind));
                let archive =
                    obs_dir.map(|dir| dir.join(format!("{}-{}.jsonl", self.name, kind.name())));
                gate(self, report, archive)
            })
            .collect()
    }
}

/// One evaluated acceptance gate.
#[derive(Debug, Clone)]
pub struct Check {
    /// Gate name (stable, used in the report).
    pub gate: &'static str,
    /// What the run measured.
    pub actual: String,
    /// What the threshold demands.
    pub limit: String,
    /// Whether the gate held.
    pub pass: bool,
}

/// One gated scenario run: the report plus its per-gate verdicts.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// The run's complexity report.
    pub report: RunReport,
    /// Per-gate verdicts.
    pub checks: Vec<Check>,
    /// Archive path, when the run was observed.
    pub archive: Option<PathBuf>,
}

impl ScenarioOutcome {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// Evaluates one run report against its scenario's thresholds.
pub fn gate(scenario: &Scenario, report: RunReport, archive: Option<PathBuf>) -> ScenarioOutcome {
    let t = &scenario.thresholds;
    let mut checks = Vec::new();

    let class = VerdictClass::of(&report.verdict);
    let allowed = t
        .allowed
        .iter()
        .map(|v| v.name())
        .collect::<Vec<_>>()
        .join("|");
    checks.push(Check {
        gate: "verdict",
        actual: verdict_detail(&report.verdict),
        limit: allowed,
        pass: t.allowed.contains(&class),
    });

    checks.push(Check {
        gate: "sound",
        actual: report.sound.to_string(),
        limit: "true".into(),
        pass: report.sound,
    });

    checks.push(Check {
        gate: "rounds-ceiling",
        actual: report.rounds.to_string(),
        limit: format!("<= {}", t.max_rounds),
        pass: report.rounds <= t.max_rounds,
    });

    if t.min_rounds > 0 {
        checks.push(Check {
            gate: "rounds-floor",
            actual: report.rounds.to_string(),
            limit: format!(">= {}", t.min_rounds),
            pass: report.rounds >= t.min_rounds,
        });
    }

    checks.push(Check {
        gate: "messages-per-node",
        actual: format!("{:.1}", report.mean_messages_per_node),
        limit: format!("<= {:.1}", t.max_messages_per_node),
        pass: report.mean_messages_per_node <= t.max_messages_per_node,
    });

    if t.max_retx_overhead.is_finite() {
        let overhead = report.retransmissions as f64 / (report.messages.max(1)) as f64;
        checks.push(Check {
            gate: "retx-overhead",
            actual: format!("{overhead:.3}"),
            limit: format!("<= {:.3}", t.max_retx_overhead),
            pass: overhead <= t.max_retx_overhead,
        });
    }

    ScenarioOutcome {
        scenario: scenario.name.to_string(),
        algorithm: report.algorithm.clone(),
        report,
        checks,
        archive,
    }
}

/// Renders a verdict with its payload, e.g. `stalled@137` for a stall
/// whose last knowledge progress was round 137.
fn verdict_detail(verdict: &RunVerdict) -> String {
    match verdict {
        RunVerdict::Stalled { last_progress } => format!("stalled@{last_progress}"),
        other => other.name().to_string(),
    }
}

/// Renders the deterministic pass/fail report for a batch of gated
/// runs. Contains no wall-clock measurements, so the same `(scenarios,
/// n, seed)` renders byte-identically on every host — timing goes to
/// the bench summary instead.
pub fn render_report(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::new();
    let passed = outcomes.iter().filter(|o| o.passed()).count();
    for o in outcomes {
        let status = if o.passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "{status} {}/{}: verdict={} rounds={} messages={} retx={} dropped={}",
            o.scenario,
            o.algorithm,
            verdict_detail(&o.report.verdict),
            o.report.rounds,
            o.report.messages,
            o.report.retransmissions,
            o.report.dropped(),
        );
        for c in &o.checks {
            let mark = if c.pass { "ok  " } else { "FAIL" };
            let _ = writeln!(
                out,
                "  {mark} {:<18} {} (need {})",
                c.gate, c.actual, c.limit
            );
        }
        if !o.passed() {
            if let Some(archive) = &o.archive {
                let _ = writeln!(
                    out,
                    "  hint: rd-inspect why {} attributes the failure",
                    archive.display()
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "scenario matrix: {passed}/{} runs passed",
        outcomes.len()
    );
    out
}

/// Renders the batch as a `BENCH_*.json` summary (`bench-diff` schema):
/// one config row per gated run, keyed `scenario:<name>/<algorithm>`,
/// with the measured wall-clock seconds zipped in from the caller.
///
/// The `obs`/`trace` flags are part of the `bench-diff` join key and
/// report whether the run archived (archives carry full causal traces,
/// which dominate scenario wall-clock) — a baseline measured without
/// archiving must never gate an archived run.
///
/// # Panics
///
/// Panics if `walls` and `outcomes` have different lengths.
pub fn render_bench(outcomes: &[ScenarioOutcome], walls: &[f64]) -> String {
    assert_eq!(outcomes.len(), walls.len(), "one wall time per outcome");
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fault-scenarios\",\n  \"configs\": [\n");
    for (i, (o, wall)) in outcomes.iter().zip(walls).enumerate() {
        let sep = if i + 1 == outcomes.len() { "" } else { "," };
        let rps = o.report.rounds as f64 / wall.max(1e-9);
        let archived = o.archive.is_some();
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"engine\": \"scenario:{}/{}\", \"obs\": {archived}, \"trace\": {archived}, \"rounds\": {}, \"messages\": {}, \"verdict\": \"{}\", \"passed\": {}, \"best_seconds\": {:.6}, \"rounds_per_sec\": {:.2}}}{sep}",
            o.report.n,
            o.scenario,
            o.algorithm,
            o.report.rounds,
            o.report.messages,
            o.report.verdict.name(),
            o.passed(),
            wall,
            rps,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Salt folded into the run seed for fault-campaign randomness, so a
/// campaign's coins never collude with the protocol's own coins.
const CAMPAIGN_SALT: u64 = 0x7363_656e;

/// The standing campaign matrix, instantiated for `(n, seed)`.
///
/// Rounds thresholds scale with `log2 n`: every campaign here converges
/// in `O(polylog n)` rounds when healthy, so a logarithmic envelope
/// with a generous constant separates "slow" from "broken" at every
/// size the suite runs at (tests use `n = 64`, CI `n = 1024`).
///
/// # Panics
///
/// Panics if `n < 16` (the campaigns partition, crash, and suppress
/// fixed fractions of the population, which needs a minimum of nodes).
pub fn library(n: usize, seed: u64) -> Vec<Scenario> {
    assert!(n >= 16, "scenario campaigns need n >= 16, got {n}");
    let lg = (n as f64).log2().ceil().max(1.0) as u64;
    let fault_seed = seed ^ CAMPAIGN_SALT;
    let retry = RetryPolicy::default();

    vec![
        // A flash crowd: every machine joins knowing only the one
        // bootstrap node (star pointing in). Fault-free; gates pin the
        // healthy convergence envelope on the most lopsided topology.
        Scenario {
            name: "flash-crowd-join",
            summary: "everyone joins via one bootstrap node; fault-free baseline",
            topology: Topology::StarIn,
            algorithms: vec![
                AlgorithmKind::Hm(Default::default()),
                AlgorithmKind::NameDropper,
            ],
            engine: EngineKind::Sequential,
            faults: FaultPlan::new(),
            reliable: None,
            stall_window: None,
            budget: 40 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::Complete],
                max_rounds: 8 * lg,
                min_rounds: 0,
                max_messages_per_node: 60.0 * lg as f64,
                max_retx_overhead: f64::INFINITY,
            },
            n,
            seed,
        },
        // A datacenter bootstrap: sparse random initial knowledge,
        // driven on the sharded engine to keep the parallel routing
        // path inside the gated matrix.
        Scenario {
            name: "datacenter-bootstrap",
            summary: "sparse k-out bootstrap on the sharded engine; fault-free",
            topology: Topology::KOut { k: 3 },
            algorithms: vec![
                AlgorithmKind::Hm(Default::default()),
                AlgorithmKind::NameDropper,
            ],
            engine: EngineKind::Sharded { workers: 4 },
            faults: FaultPlan::new(),
            reliable: None,
            stall_window: None,
            budget: 40 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::Complete],
                max_rounds: 8 * lg,
                min_rounds: 0,
                max_messages_per_node: 60.0 * lg as f64,
                max_retx_overhead: f64::INFINITY,
            },
            n,
            seed,
        },
        // A geographic partition that heals: the population splits into
        // two halves early, heals, and must still converge within a
        // logarithmic envelope after the heal.
        Scenario {
            name: "partition-heal",
            summary: "two-way partition for an early window, then heals",
            topology: Topology::KOut { k: 3 },
            algorithms: vec![AlgorithmKind::Hm(Default::default())],
            engine: EngineKind::Sequential,
            faults: FaultPlan::new().with_partition([0..n / 2, n / 2..n], 2, 2 + 3 * lg),
            reliable: Some(retry),
            stall_window: Some(12 * lg),
            budget: 60 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::Complete],
                max_rounds: 16 * lg,
                min_rounds: 0,
                max_messages_per_node: 80.0 * lg as f64,
                max_retx_overhead: 1.0,
            },
            n,
            seed,
        },
        // Continuous churn at steady state: for the whole regime
        // window, 90% of the machines nap through each 6-round cycle,
        // so only a rotating ~10% sliver is ever up and convergence is
        // held off until the regime ends at round 240. The rounds floor
        // proves the run genuinely sustained the regime; the ceiling
        // proves it recovered promptly once churn stopped.
        Scenario {
            name: "continuous-churn",
            summary: "heavy steady-state churn for 240 rounds, then recovery",
            topology: Topology::KOut { k: 4 },
            algorithms: vec![AlgorithmKind::Hm(Default::default())],
            engine: EngineKind::Sharded { workers: 2 },
            faults: FaultPlan::new()
                .with_churn(ChurnSpec::new(fault_seed, 0, 240, 6, 6, 900_000))
                .with_crash_detection_after(3),
            reliable: Some(retry),
            stall_window: Some(150),
            budget: 240 + 60 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::Complete],
                max_rounds: 240 + 16 * lg,
                min_rounds: 200,
                max_messages_per_node: 200.0 * lg as f64,
                max_retx_overhead: 3.0,
            },
            n,
            seed,
        },
        // Lossy, asymmetric links: a fixed fraction of ordered node
        // pairs drops a third of everything crossing them, one
        // direction at a time. Reliable delivery must absorb it within
        // a bounded retransmission overhead.
        Scenario {
            name: "lossy-asym-links",
            summary: "40% of ordered pairs lose 30% of traffic; retries absorb it",
            topology: Topology::KOut { k: 3 },
            algorithms: vec![AlgorithmKind::Hm(Default::default())],
            engine: EngineKind::Sequential,
            faults: FaultPlan::new()
                .with_link_loss(LinkLossSpec::new(fault_seed, 400_000, 300_000)),
            reliable: Some(retry),
            stall_window: Some(12 * lg),
            budget: 60 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::Complete],
                max_rounds: 12 * lg,
                min_rounds: 0,
                max_messages_per_node: 80.0 * lg as f64,
                max_retx_overhead: 1.0,
            },
            n,
            seed,
        },
        // Grey failure: nothing crashes and nothing is dropped, but a
        // tenth of the machines are slow — every message touching one
        // takes 4 ticks instead of 1 on the event engine. Convergence
        // must degrade gracefully (bounded slowdown), not stall.
        Scenario {
            name: "grey-failure",
            summary: "10% slow nodes (4x latency) on the event engine",
            topology: Topology::KOut { k: 3 },
            algorithms: vec![AlgorithmKind::Hm(Default::default())],
            engine: EngineKind::Event {
                latency: LatencyModel::Slow {
                    base: 1,
                    slow: 4,
                    frac_ppm: 100_000,
                },
            },
            faults: FaultPlan::new(),
            reliable: None,
            stall_window: None,
            budget: 160 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::Complete],
                max_rounds: 32 * lg,
                min_rounds: 0,
                max_messages_per_node: 60.0 * lg as f64,
                max_retx_overhead: f64::INFINITY,
            },
            n,
            seed,
        },
        // Adversarial suppression: an adversary that can read the
        // initial knowledge graph silences its best contact edges — the
        // ones incident to the highest-degree nodes — completely for an
        // early window. Discovery must route around the silenced core.
        Scenario {
            name: "adversarial-suppression",
            summary: "highest-degree contact edges silenced for an early window",
            topology: Topology::KOut { k: 3 },
            algorithms: vec![AlgorithmKind::Hm(Default::default())],
            engine: EngineKind::Sequential,
            faults: suppression_campaign(Topology::KOut { k: 3 }, n, seed, fault_seed, 10 * lg),
            reliable: Some(retry),
            stall_window: Some(14 * lg),
            budget: 80 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::Complete],
                max_rounds: 20 * lg,
                min_rounds: 0,
                max_messages_per_node: 80.0 * lg as f64,
                max_retx_overhead: 2.0,
            },
            n,
            seed,
        },
        // A crash storm with partial recovery: ~8% of the population
        // crashes in a burst; half of those machines come back and must
        // catch up, the rest stay dead, so the accepted verdict is a
        // degraded completion among survivors.
        Scenario {
            name: "crash-storm-recovery",
            summary: "8% crash burst, half recover; survivors must converge",
            topology: Topology::KOut { k: 4 },
            algorithms: vec![AlgorithmKind::Hm(Default::default())],
            engine: EngineKind::Sharded { workers: 2 },
            faults: crash_storm(n, 2, 4 * lg),
            reliable: Some(retry),
            stall_window: Some(14 * lg),
            budget: 80 * lg,
            thresholds: Thresholds {
                allowed: vec![VerdictClass::DegradedComplete],
                max_rounds: 20 * lg,
                min_rounds: 0,
                max_messages_per_node: 80.0 * lg as f64,
                max_retx_overhead: 2.0,
            },
            n,
            seed,
        },
    ]
}

/// Looks up scenarios from [`library`] by name, preserving library
/// order. Returns `Err` with the unknown name on a miss.
pub fn select(n: usize, seed: u64, names: &[String]) -> Result<Vec<Scenario>, String> {
    let lib = library(n, seed);
    for name in names {
        if !lib.iter().any(|s| s.name == name.as_str()) {
            return Err(format!(
                "unknown scenario \"{name}\" (try --list for the campaign matrix)"
            ));
        }
    }
    Ok(lib
        .into_iter()
        .filter(|s| names.iter().any(|n| n.as_str() == s.name))
        .collect())
}

/// The adversarial suppression campaign: regenerate the exact knowledge
/// graph the run will use, rank its edges by total endpoint degree, and
/// silence the top eighth (at least 4) completely for rounds
/// `[1, 1 + window)`.
fn suppression_campaign(
    topology: Topology,
    n: usize,
    seed: u64,
    fault_seed: u64,
    window: u64,
) -> FaultPlan {
    let graph = topology.generate(n, seed);
    let edges = top_contact_edges(&graph, (graph.edge_count() / 8).max(4));
    FaultPlan::new().with_suppression(SuppressionSpec::new(
        fault_seed,
        edges,
        1,
        1 + window,
        1_000_000,
    ))
}

/// The contact edges incident to the best-connected nodes: every edge
/// scored by the total (in + out) degree of both endpoints, ties broken
/// by the edge itself so the selection is deterministic.
fn top_contact_edges(graph: &DiGraph, count: usize) -> Vec<(usize, usize)> {
    let in_deg = graph.in_degrees();
    let degree = |v: usize| graph.out_degree(v) + in_deg[v];
    let mut edges: Vec<(usize, usize)> = graph.iter_edges().collect();
    edges.sort_by_key(|&(u, v)| (std::cmp::Reverse(degree(u) + degree(v)), u, v));
    edges.truncate(count);
    edges
}

/// The crash-storm campaign: every 12th node crashes in a staggered
/// burst starting at `start`; alternate victims recover `recovery_gap`
/// rounds later, the rest are permanent. Detection is armed so
/// survivors purge the dead.
fn crash_storm(n: usize, start: u64, recovery_gap: u64) -> FaultPlan {
    let mut faults = FaultPlan::new().with_crash_detection_after(3);
    for (i, node) in (0..n).step_by(12).enumerate() {
        let crash = start + (i as u64 % 4);
        faults = faults.with_crash_at(node, crash);
        if i % 2 == 0 {
            faults = faults.with_recovery_at(node, crash + recovery_gap);
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_names_are_unique_and_campaigns_validate() {
        let lib = library(64, 7);
        assert_eq!(lib.len(), 8);
        let mut names: Vec<_> = lib.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lib.len(), "duplicate scenario names");
        for s in &lib {
            assert!(
                s.budget > s.thresholds.max_rounds,
                "{}: budget must exceed the rounds ceiling",
                s.name
            );
            s.faults
                .validate(s.n, s.budget)
                .unwrap_or_else(|e| panic!("{}: invalid campaign: {e}", s.name));
        }
    }

    #[test]
    fn select_finds_by_name_and_rejects_unknowns() {
        let picked = select(64, 7, &["grey-failure".into(), "partition-heal".into()]).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name, "partition-heal", "library order preserved");
        assert!(select(64, 7, &["no-such-campaign".into()]).is_err());
    }

    #[test]
    fn tighten_scales_the_rounds_ceiling() {
        let mut t = library(64, 7)[0].thresholds.clone();
        let before = t.max_rounds;
        t.tighten(0.1);
        assert!(t.max_rounds < before);
        assert!(t.max_rounds >= 1);
    }

    #[test]
    fn flash_crowd_passes_its_gates_at_small_n() {
        let lib = library(64, 7);
        let scenario = lib.iter().find(|s| s.name == "flash-crowd-join").unwrap();
        let outcomes = scenario.execute(None);
        assert_eq!(outcomes.len(), 2, "hm and name-dropper");
        for o in &outcomes {
            assert!(
                o.passed(),
                "{}/{} failed:\n{}",
                o.scenario,
                o.algorithm,
                render_report(&outcomes)
            );
        }
    }

    #[test]
    fn tightened_gates_fail_attributably() {
        let lib = library(64, 7);
        let mut scenario = lib
            .iter()
            .find(|s| s.name == "flash-crowd-join")
            .unwrap()
            .clone();
        scenario.algorithms.truncate(1);
        scenario.thresholds.tighten(0.01);
        let outcomes = scenario.execute(None);
        assert!(!outcomes[0].passed(), "1-round ceiling cannot hold");
        let failed: Vec<_> = outcomes[0].checks.iter().filter(|c| !c.pass).collect();
        assert!(failed.iter().any(|c| c.gate == "rounds-ceiling"));
        let report = render_report(&outcomes);
        assert!(report.contains("FAIL flash-crowd-join/hm"), "{report}");
        assert!(report.contains("0/1 runs passed"), "{report}");
    }

    #[test]
    fn report_rendering_is_deterministic() {
        let lib = library(64, 7);
        let scenario = lib.iter().find(|s| s.name == "partition-heal").unwrap();
        let a = render_report(&scenario.execute(None));
        let b = render_report(&scenario.execute(None));
        assert_eq!(a, b);
        assert!(a.contains("PASS partition-heal/hm"), "{a}");
    }

    #[test]
    fn bench_rows_join_on_the_scenario_key() {
        let lib = library(64, 7);
        let scenario = lib.iter().find(|s| s.name == "flash-crowd-join").unwrap();
        let outcomes = scenario.execute(None);
        let walls = vec![0.25; outcomes.len()];
        let text = render_bench(&outcomes, &walls);
        assert!(
            text.contains("\"engine\": \"scenario:flash-crowd-join/hm\""),
            "{text}"
        );
        assert!(text.contains("\"bench\": \"fault-scenarios\""), "{text}");
        // No archive was written, and obs/trace are join-key fields, so
        // the row must say so.
        assert!(text.contains("\"obs\": false, \"trace\": false"), "{text}");
    }
}
