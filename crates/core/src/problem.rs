//! Instance construction and completion predicates for the
//! resource-discovery problem.

use crate::algorithms::KnowledgeView;
use rd_graphs::{connectivity, CsrAdjacency, DiGraph};
use rd_sim::NodeId;

/// Per-node initial knowledge in compressed-sparse-row form: one flat
/// id array plus `n + 1` offsets, where row `u` is node `u`'s starting
/// knowledge — itself first, then its out-neighbours in ascending
/// order.
///
/// This is the instance handed to every
/// [`DiscoveryAlgorithm::make_nodes`](crate::DiscoveryAlgorithm::make_nodes)
/// and consumed by both engines' node-construction paths. The flat
/// layout replaces the former `Vec<Vec<NodeId>>`: building a 2^20-node
/// instance used to allocate a million separate row vectors that node
/// construction then walked pointer by pointer — as CSR it is two
/// contiguous arrays, built in one pass from the graph's
/// [`CsrAdjacency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialKnowledge {
    /// Row `u` is `ids[offsets[u] as usize..offsets[u + 1] as usize]`.
    offsets: Vec<u32>,
    /// All rows concatenated; each starts with the owning node's id.
    ids: Vec<NodeId>,
}

impl InitialKnowledge {
    /// Builds an instance directly from per-node rows (each node's ids,
    /// itself first) — for tests and hand-crafted instances. Unlike
    /// [`initial_knowledge`], performs no connectivity validation.
    pub fn from_rows<R: AsRef<[NodeId]>>(rows: impl IntoIterator<Item = R>) -> Self {
        let mut offsets = vec![0u32];
        let mut ids = Vec::new();
        for row in rows {
            ids.extend_from_slice(row.as_ref());
            offsets.push(u32::try_from(ids.len()).expect("instance too large for u32 offsets"));
        }
        InitialKnowledge { offsets, ids }
    }

    /// Number of nodes in the instance.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` for the zero-node instance.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node `u`'s initial knowledge: `u` itself first, then its
    /// out-neighbours ascending.
    pub fn of(&self, u: usize) -> &[NodeId] {
        &self.ids[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// All rows in node order.
    pub fn rows(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.len()).map(move |u| self.of(u))
    }
}

impl std::ops::Index<usize> for InitialKnowledge {
    type Output = [NodeId];

    fn index(&self, u: usize) -> &[NodeId] {
        self.of(u)
    }
}

/// Builds the per-node initial knowledge from an initial knowledge graph:
/// node `u` starts knowing itself plus every out-neighbour in `g`.
///
/// # Panics
///
/// Panics if `g` is not weakly connected — resource discovery is
/// undefined (and unsolvable) on disconnected knowledge graphs.
pub fn initial_knowledge(g: &DiGraph) -> InitialKnowledge {
    assert!(
        connectivity::is_weakly_connected(g),
        "initial knowledge graph must be weakly connected"
    );
    let csr = CsrAdjacency::from_digraph(g);
    let n = csr.node_count();
    assert!(
        n + csr.edge_count() <= u32::MAX as usize,
        "instance too large for u32 CSR offsets"
    );
    let mut offsets = Vec::with_capacity(n + 1);
    let mut ids = Vec::with_capacity(n + csr.edge_count());
    offsets.push(0);
    for u in 0..n {
        ids.push(NodeId::new(u as u32));
        ids.extend(csr.row(u).iter().map(|&v| NodeId::new(v)));
        offsets.push(ids.len() as u32);
    }
    InitialKnowledge { offsets, ids }
}

/// `true` when every node knows every identifier — the strongest
/// completion notion (`EveryoneKnowsEveryone` in DESIGN.md).
pub fn everyone_knows_everyone<N: KnowledgeView>(nodes: &[N]) -> bool {
    let n = nodes.len();
    nodes.iter().all(|node| node.knows_count() == n)
}

/// `true` when some node ℓ knows every identifier **and** every node
/// knows ℓ — the classic PODC '99 completion notion (`LeaderKnowsAll`):
/// one more broadcast round from ℓ finishes the job.
pub fn leader_knows_all<N: KnowledgeView>(nodes: &[N]) -> bool {
    let n = nodes.len();
    nodes.iter().enumerate().any(|(i, node)| {
        node.knows_count() == n && nodes.iter().all(|other| other.knows(NodeId::new(i as u32)))
    })
}

/// [`everyone_knows_everyone`] restricted to the live nodes of a
/// crash-faulted instance: every live node knows every live node.
/// (`live[i]` marks node `i` live; with every node live this is
/// equivalent to the unrestricted predicate.)
///
/// # Panics
///
/// Panics if `live.len() != nodes.len()`.
pub fn everyone_knows_everyone_among<N: KnowledgeView>(nodes: &[N], live: &[bool]) -> bool {
    assert_eq!(nodes.len(), live.len(), "live mask size mismatch");
    // A node knowing fewer ids than there are live nodes cannot know
    // them all — the O(1) count check prunes the O(n) membership scan,
    // which matters because the harness evaluates this every round.
    let live_count = live.iter().filter(|&&l| l).count();
    nodes.iter().enumerate().all(|(i, node)| {
        !live[i]
            || (node.knows_count() >= live_count
                && live
                    .iter()
                    .enumerate()
                    .all(|(j, &lj)| !lj || node.knows(NodeId::new(j as u32))))
    })
}

/// [`leader_knows_all`] restricted to live nodes: some live ℓ knows
/// every live node, and every live node knows ℓ.
///
/// # Panics
///
/// Panics if `live.len() != nodes.len()`.
pub fn leader_knows_all_among<N: KnowledgeView>(nodes: &[N], live: &[bool]) -> bool {
    assert_eq!(nodes.len(), live.len(), "live mask size mismatch");
    // Same count-based prune as `everyone_knows_everyone_among`.
    let live_count = live.iter().filter(|&&l| l).count();
    nodes.iter().enumerate().any(|(i, node)| {
        live[i]
            && node.knows_count() >= live_count
            && live
                .iter()
                .enumerate()
                .all(|(j, &lj)| !lj || node.knows(NodeId::new(j as u32)))
            && nodes
                .iter()
                .enumerate()
                .all(|(j, other)| !live[j] || other.knows(NodeId::new(i as u32)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        known: Vec<NodeId>,
    }

    impl KnowledgeView for Fake {
        fn knows(&self, id: NodeId) -> bool {
            self.known.contains(&id)
        }
        fn knows_count(&self) -> usize {
            self.known.len()
        }
        fn known_ids(&self) -> Vec<NodeId> {
            self.known.clone()
        }
    }

    fn fake(ids: &[u32]) -> Fake {
        Fake {
            known: ids.iter().map(|&i| NodeId::new(i)).collect(),
        }
    }

    #[test]
    fn initial_knowledge_includes_self_first() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let init = initial_knowledge(&g);
        assert_eq!(init.len(), 3);
        assert_eq!(&init[0], &[NodeId::new(0), NodeId::new(1)][..]);
        assert_eq!(&init[2], &[NodeId::new(2), NodeId::new(0)][..]);
        let rows: Vec<&[NodeId]> = init.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], init.of(1));
    }

    #[test]
    #[should_panic(expected = "weakly connected")]
    fn disconnected_instance_rejected() {
        initial_knowledge(&DiGraph::new(2));
    }

    #[test]
    fn everyone_predicate() {
        let done = [fake(&[0, 1]), fake(&[1, 0])];
        let not = [fake(&[0, 1]), fake(&[1])];
        assert!(everyone_knows_everyone(&done));
        assert!(!everyone_knows_everyone(&not));
    }

    #[test]
    fn leader_predicate_requires_backlinks() {
        // Node 0 knows all, and everyone knows 0.
        let ok = [fake(&[0, 1, 2]), fake(&[1, 0]), fake(&[2, 0])];
        assert!(leader_knows_all(&ok));
        // Node 0 knows all, but node 2 does not know 0.
        let no_backlink = [fake(&[0, 1, 2]), fake(&[1, 0]), fake(&[2, 1])];
        assert!(!leader_knows_all(&no_backlink));
        // Nobody knows all.
        let nobody = [fake(&[0, 1]), fake(&[1, 2]), fake(&[2, 0])];
        assert!(!leader_knows_all(&nobody));
    }

    #[test]
    fn leader_predicate_weaker_than_everyone() {
        let ok = [fake(&[0, 1, 2]), fake(&[1, 0]), fake(&[2, 0])];
        assert!(leader_knows_all(&ok));
        assert!(!everyone_knows_everyone(&ok));
    }

    #[test]
    fn among_variants_ignore_crashed_nodes() {
        // Node 2 crashed: nobody needs to know it, it needs to know no one.
        let nodes = [fake(&[0, 1]), fake(&[1, 0]), fake(&[2])];
        let live = [true, true, false];
        assert!(everyone_knows_everyone_among(&nodes, &live));
        assert!(leader_knows_all_among(&nodes, &live));
        assert!(!everyone_knows_everyone(&nodes));
        // The live nodes must still know each other.
        let gap = [fake(&[0]), fake(&[1, 0]), fake(&[2])];
        assert!(!everyone_knows_everyone_among(&gap, &live));
    }

    #[test]
    fn among_with_all_live_matches_unrestricted() {
        let nodes = [fake(&[0, 1]), fake(&[1, 0])];
        let live = [true, true];
        assert_eq!(
            everyone_knows_everyone_among(&nodes, &live),
            everyone_knows_everyone(&nodes)
        );
        assert_eq!(
            leader_knows_all_among(&nodes, &live),
            leader_knows_all(&nodes)
        );
    }

    #[test]
    #[should_panic(expected = "mask size")]
    fn among_rejects_wrong_mask() {
        let nodes = [fake(&[0])];
        everyone_knows_everyone_among(&nodes, &[true, false]);
    }
}
