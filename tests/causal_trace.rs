//! End-to-end checks of the causal provenance layer: on a fault-free
//! HM run with full sampling, the critical path extracted from the
//! archive must terminate exactly at the reported final round — the
//! last delivery that completed someone's knowledge *is* the last round
//! of the run — and the `rd-inspect why` narrative must say so.

use resource_discovery::core::algorithms::hm::HmConfig;
use resource_discovery::obs::archive;
use resource_discovery::obs::critical_path::{critical_path, why};
use resource_discovery::prelude::*;

fn traced_run(topo: Topology, n: usize, seed: u64, tag: &str) -> (RunReport, archive::Archive) {
    let dir = std::env::temp_dir().join(format!("rd-causal-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    let spec = ObsSpec::new()
        .with_archive(&path)
        .with_causal_trace(1 << 20, 1_000_000);
    let report = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(topo, n, seed)
            .with_max_rounds(2_000)
            .with_obs(spec),
    );
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let problems = archive::validate(&text);
    assert!(problems.is_empty(), "invalid archive: {problems:?}");
    (report, archive::parse(&text).unwrap())
}

#[test]
fn critical_path_terminates_at_the_reported_final_round() {
    for (seed, topo) in [
        (3u64, Topology::Cycle),
        (7, Topology::KOut { k: 3 }),
        (11, Topology::RandomTree),
    ] {
        let (report, parsed) = traced_run(topo, 48, seed, &format!("cp-{seed}"));
        assert!(report.completed, "{topo} did not complete");
        let chain = critical_path(&parsed).expect("fault-free full-sampling run has edges");
        let terminal = chain.last().unwrap();
        // The run ends the round the last node learns its last id; with
        // every message traced, that delivery is the terminal edge.
        assert_eq!(
            terminal.round, report.rounds,
            "{topo}: critical path ends at round {} but the run took {}",
            terminal.round, report.rounds
        );
        // Hops are real deliveries, so the chain fits inside the run
        // and each hop strictly advances the delivery round.
        assert!(chain.len() as u64 <= report.rounds);
        for pair in chain.windows(2) {
            assert!(pair[0].round < pair[1].round, "path rounds must increase");
            assert_eq!(pair[0].node, pair[1].src, "hops must chain by sender");
            assert_eq!(pair[0].id, pair[1].id, "a chain follows one id");
        }
        // No sampling, ample capacity: the trace saw everything.
        let tm = parsed.trace_meta.as_ref().unwrap();
        assert_eq!(tm.sampled_out, 0);
        assert_eq!(tm.overflow, 0);
    }
}

#[test]
fn why_narrative_names_the_final_round() {
    let (report, parsed) = traced_run(Topology::Cycle, 32, 5, "why");
    let text = why(&parsed);
    assert!(
        text.contains(&format!(
            "final round of the run is round {}",
            report.rounds
        )),
        "narrative missing the final round:\n{text}"
    );
    assert!(text.contains("critical path:"), "{text}");
}
