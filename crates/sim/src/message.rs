//! Message envelopes and cost accounting.

use crate::id::NodeId;

/// Number of header bits charged to every message regardless of payload
/// (source, destination, and a small type tag) when converting pointer
/// counts to bit complexity.
pub const HEADER_BITS: u64 = 96;

/// Cost model every protocol message must implement.
///
/// The resource-discovery literature measures communication in
/// *pointers*: the number of node identifiers a message carries. Bit
/// complexity follows as `pointers × ⌈log₂ n⌉ + O(1)` and is derived by
/// the metrics layer, so protocols only report pointer counts.
pub trait MessageCost {
    /// Number of node identifiers carried by this message.
    fn pointers(&self) -> usize;
}

/// A routed message: payload plus source and destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, payload: M) -> Self {
        Envelope { src, dst, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ids(Vec<NodeId>);
    impl MessageCost for Ids {
        fn pointers(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn envelope_carries_endpoints() {
        let e = Envelope::new(NodeId::new(1), NodeId::new(2), Ids(vec![NodeId::new(3)]));
        assert_eq!(e.src, NodeId::new(1));
        assert_eq!(e.dst, NodeId::new(2));
        assert_eq!(e.payload.pointers(), 1);
    }

    #[test]
    fn pointer_count_tracks_payload() {
        let ids: Vec<NodeId> = (0..7).map(NodeId::new).collect();
        assert_eq!(Ids(ids).pointers(), 7);
        assert_eq!(Ids(vec![]).pointers(), 0);
    }
}
