//! Phase-scoped wall-clock spans.
//!
//! A [`SpanEvent`] is one timed slice of engine work — "worker 3 spent
//! 410µs in `route_shard` during round 17". Timestamps are nanosecond
//! offsets from the [`Recorder`](crate::Recorder)'s epoch `Instant`,
//! so spans from different worker threads share one clock and can be
//! laid out on a common timeline (the Chrome trace exporter relies on
//! this).
//!
//! Spans are observation only: engines *produce* them from `Instant`
//! reads but never read them back, which is what keeps wall-clock out
//! of deterministic protocol state.

use std::time::Instant;

/// The engine phases that get timed. Serial engines emit every phase
/// from worker 0; the sharded engine emits `OnRound`, `RouteShard`,
/// and `MergeDestShard` once per worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Detector schedule, delayed-delivery promotion, retransmissions.
    BeginRound,
    /// Node stepping: inbox drain + `Node::on_round`.
    OnRound,
    /// Fate coins, tallies, and per-destination-shard bucket fan-out.
    RouteShard,
    /// Canonical-order merge of route buckets into one shard's inboxes.
    MergeDestShard,
    /// Serial fold of per-shard metric/trace/retry deltas.
    ApplyDeltas,
    /// End-of-round bookkeeping (row close-out, pool returns).
    FinishRound,
    /// Recorder bookkeeping at round close (row assembly, sink fan-out).
    /// Emitted only when profiling is enabled, so the profiler's own
    /// cost shows up as an attributed phase instead of unexplained gap.
    Telemetry,
}

impl Phase {
    /// Every phase, in within-round execution order.
    pub const ALL: [Phase; 7] = [
        Phase::BeginRound,
        Phase::OnRound,
        Phase::RouteShard,
        Phase::MergeDestShard,
        Phase::ApplyDeltas,
        Phase::FinishRound,
        Phase::Telemetry,
    ];

    /// The snake_case name used in archives and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Phase::BeginRound => "begin_round",
            Phase::OnRound => "on_round",
            Phase::RouteShard => "route_shard",
            Phase::MergeDestShard => "merge_dest_shard",
            Phase::ApplyDeltas => "apply_deltas",
            Phase::FinishRound => "finish_round",
            Phase::Telemetry => "telemetry",
        }
    }

    /// Inverse of [`Phase::name`], for archive parsing.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One timed slice of engine work, relative to the recorder's epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub phase: Phase,
    pub round: u64,
    /// Worker index (0 on serial engines; the shard index on parallel
    /// phases of the sharded engine).
    pub worker: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

impl SpanEvent {
    /// Builds a span from two `Instant` reads taken on any thread, as
    /// offsets from the shared `epoch`.
    pub fn from_instants(
        epoch: Instant,
        phase: Phase,
        round: u64,
        worker: u32,
        start: Instant,
        end: Instant,
    ) -> SpanEvent {
        let start_ns = end_ns_since(epoch, start);
        let end_ns = end_ns_since(epoch, end);
        SpanEvent {
            phase,
            round,
            worker,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        }
    }
}

fn end_ns_since(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("unknown"), None);
    }

    #[test]
    fn spans_are_epoch_relative_and_non_negative() {
        let epoch = Instant::now();
        let start = Instant::now();
        let end = Instant::now();
        let s = SpanEvent::from_instants(epoch, Phase::RouteShard, 3, 1, start, end);
        assert_eq!(s.round, 3);
        assert_eq!(s.worker, 1);
        assert!(s.start_ns + s.dur_ns >= s.start_ns);
        // An end before the epoch saturates to zero rather than
        // panicking (possible if a worker read its clock before the
        // recorder was attached).
        let s = SpanEvent::from_instants(end, Phase::OnRound, 0, 0, epoch, start);
        assert_eq!(s.start_ns, 0);
    }
}
