//! Convergence under message latency: the same algorithm, seed, and
//! overlay on the discrete-event engine across latency models — the
//! experiment the round engines cannot express, since their only
//! asynchrony knob is bounded uniform delay added after the fact.
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```
//!
//! Every run shares one seed, so the drop coins and node randomness
//! are identical across rows; only *when* messages land changes. The
//! table reports completion time in simulated ticks, the stretch over
//! the synchronous baseline, and the message count (which drifts with
//! timing: nodes keep probing while knowledge is in flight).

use resource_discovery::core::algorithms::hm::HmConfig;
use resource_discovery::prelude::*;

fn main() {
    let n = 1024;
    let seed = 42;
    let models: &[(&str, LatencyModel)] = &[
        ("synchronous", LatencyModel::Constant { ticks: 1 }),
        ("const:4", LatencyModel::Constant { ticks: 4 }),
        ("uniform:1:8", LatencyModel::Uniform { min: 1, max: 8 }),
        (
            "heavy tail",
            LatencyModel::LogNormal {
                mu_milli: 700,
                sigma_milli: 1_200,
                cap: 64,
            },
        ),
        (
            "asym:1:6",
            LatencyModel::Asymmetric {
                forward: 1,
                backward: 6,
            },
        ),
    ];

    for kind in [
        AlgorithmKind::NameDropper,
        AlgorithmKind::Hm(HmConfig::default()),
    ] {
        println!(
            "{} on a 3-out random overlay, n = {n}, seed {seed}:",
            kind.name()
        );
        let mut baseline = None;
        for &(label, latency) in models {
            let config = RunConfig::new(Topology::KOut { k: 3 }, n, seed)
                .with_max_rounds(8_000)
                .with_engine(EngineKind::Event { latency });
            let report = run(kind, &config);
            assert!(
                report.completed && report.sound,
                "{label}: did not converge"
            );
            let base = *baseline.get_or_insert(report.rounds);
            println!(
                "  {:<24} {:>5} ticks   stretch {:>5.2}x   {:>8} messages",
                format!("{label} ({})", latency.name()),
                report.rounds,
                report.rounds as f64 / base as f64,
                report.messages
            );
        }
        println!();
    }
}
