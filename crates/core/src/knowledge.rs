//! The per-node knowledge set.

use rand::Rng;
use rd_sim::NodeId;

/// The set of identifiers a node has learned, with freshness tracking.
///
/// Resource-discovery protocols constantly ask three things of their
/// knowledge state: *do I know this id?* (fast), *give me everything I
/// learned since I last forwarded* (the freshness queue, drained by
/// [`take_fresh`](Self::take_fresh)), and *pick a uniformly random known
/// id* (Name-Dropper's only primitive). `KnowledgeSet` serves all three.
///
/// Internally membership starts as a small **sorted index** (binary
/// search) and spills into a **growable bitmap** over raw identifier
/// indices once the set exceeds [`SPARSE_MAX`] entries, plus an
/// insertion-order list for O(1) random sampling. The hybrid matters at
/// scale: a bitmap alone costs `max_id / 8` bytes *per set*, which sums
/// to Θ(n²) bytes across a million singleton clusters — the sparse tier
/// keeps per-set memory proportional to what the set actually holds,
/// while big sets (merged clusters, full rosters) still get O(1) bitmap
/// lookups. This is a set *representation* choice only — protocols
/// still treat identifiers as opaque and learn them exclusively through
/// messages.
///
/// # Example
///
/// ```
/// use rd_core::KnowledgeSet;
/// use rd_sim::NodeId;
///
/// let mut k = KnowledgeSet::new(NodeId::new(3));
/// assert!(k.contains(NodeId::new(3)));
/// k.insert(NodeId::new(7));
/// k.insert(NodeId::new(7)); // duplicate: no effect
/// assert_eq!(k.len(), 2);
/// assert_eq!(k.take_fresh(), vec![NodeId::new(7)]); // self is not "fresh"
/// assert!(k.take_fresh().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KnowledgeSet {
    membership: Membership,
    list: Vec<NodeId>,
    fresh: Vec<NodeId>,
}

/// Spill threshold: sets at or below this size stay sorted-vec (≤ 2 KiB,
/// O(log s) lookups); beyond it the bitmap's `max_id / 8` bytes are
/// amortised over enough members to be worth paying.
const SPARSE_MAX: usize = 512;

#[derive(Debug, Clone)]
enum Membership {
    /// Sorted raw indices — the small-set tier.
    Sparse(Vec<u32>),
    /// Bitmap over raw indices — the large-set tier.
    Dense(Vec<u64>),
}

impl Default for Membership {
    fn default() -> Self {
        Membership::Sparse(Vec::new())
    }
}

impl KnowledgeSet {
    /// Creates a knowledge set containing only the node's own id (which
    /// is *not* queued as fresh: a node never needs to tell anyone about
    /// an id they necessarily learn from the message envelope).
    pub fn new(own: NodeId) -> Self {
        let mut k = KnowledgeSet::default();
        k.insert_quiet(own);
        k
    }

    fn word_bit(id: NodeId) -> (usize, u64) {
        let i = id.index();
        (i / 64, 1u64 << (i % 64))
    }

    /// Heap bytes this set currently holds (capacities, not lengths),
    /// plus the inline struct itself. Sampled per round by the profiler
    /// to build the memory timeline; never read by protocol logic.
    pub fn resident_bytes(&self) -> usize {
        let membership = match &self.membership {
            Membership::Sparse(sorted) => sorted.capacity() * std::mem::size_of::<u32>(),
            Membership::Dense(bits) => bits.capacity() * std::mem::size_of::<u64>(),
        };
        std::mem::size_of::<Self>()
            + membership
            + self.list.capacity() * std::mem::size_of::<NodeId>()
            + self.fresh.capacity() * std::mem::size_of::<NodeId>()
    }

    /// `true` if `id` has been learned.
    pub fn contains(&self, id: NodeId) -> bool {
        match &self.membership {
            Membership::Sparse(sorted) => sorted.binary_search(&(id.index() as u32)).is_ok(),
            Membership::Dense(bits) => {
                let (w, b) = Self::word_bit(id);
                bits.get(w).is_some_and(|word| word & b != 0)
            }
        }
    }

    /// Learns `id`, queuing it as fresh if new. Returns `true` if new.
    pub fn insert(&mut self, id: NodeId) -> bool {
        if self.insert_quiet(id) {
            self.fresh.push(id);
            true
        } else {
            false
        }
    }

    fn insert_quiet(&mut self, id: NodeId) -> bool {
        let added = match &mut self.membership {
            Membership::Sparse(sorted) => {
                let raw = id.index() as u32;
                match sorted.binary_search(&raw) {
                    Ok(_) => false,
                    Err(pos) => {
                        sorted.insert(pos, raw);
                        true
                    }
                }
            }
            Membership::Dense(bits) => {
                let (w, b) = Self::word_bit(id);
                if w >= bits.len() {
                    bits.resize(w + 1, 0);
                }
                if bits[w] & b != 0 {
                    false
                } else {
                    bits[w] |= b;
                    true
                }
            }
        };
        if added {
            self.list.push(id);
            self.maybe_spill();
        }
        added
    }

    /// Converts sparse membership to the bitmap once past the threshold.
    fn maybe_spill(&mut self) {
        if let Membership::Sparse(sorted) = &self.membership {
            if sorted.len() > SPARSE_MAX {
                let max = *sorted.last().expect("non-empty past threshold") as usize;
                let mut bits = vec![0u64; max / 64 + 1];
                for &raw in sorted {
                    bits[raw as usize / 64] |= 1 << (raw % 64);
                }
                self.membership = Membership::Dense(bits);
            }
        }
    }

    /// Learns every id in `ids`; returns how many were new.
    pub fn extend(&mut self, ids: impl IntoIterator<Item = NodeId>) -> usize {
        let mut added = 0;
        for id in ids {
            if self.insert(id) {
                added += 1;
            }
        }
        added
    }

    /// Learns `id` without queueing it as fresh. Returns `true` if new.
    ///
    /// For protocols that track dissemination with [`mark`](Self::mark)
    /// frontiers instead of the fresh queue — mixing both on one set
    /// would leak queue entries that are never drained.
    pub fn insert_untracked(&mut self, id: NodeId) -> bool {
        self.insert_quiet(id)
    }

    /// Learns every id in `ids` without queueing them as fresh; returns
    /// how many were new.
    pub fn extend_untracked(&mut self, ids: impl IntoIterator<Item = NodeId>) -> usize {
        let mut added = 0;
        for id in ids {
            if self.insert_quiet(id) {
                added += 1;
            }
        }
        added
    }

    /// Merges `other` into `self`; returns how many ids were newly
    /// learned (queued as fresh, like [`insert`](Self::insert)).
    ///
    /// When both sets are in the dense tier this is a **word-level**
    /// union: one pass of `new = theirs & !ours; ours |= theirs` per
    /// u64 chunk with a popcount for the newly-learned count — 64
    /// membership decisions per instruction instead of a per-id insert
    /// loop, and zero per-id work on chunks that contribute nothing
    /// (the common case once knowledge has mostly converged). Only the
    /// genuinely new ids are extracted bit-by-bit to extend the
    /// learning-order list.
    ///
    /// Newly learned ids enter the list in ascending id order (the
    /// order a word scan discovers them) — deterministic, but not
    /// necessarily the insertion order `other` was built in, so bulk
    /// union and per-id iteration are interchangeable only where
    /// learning *order* is not wire-visible.
    pub fn union_from(&mut self, other: &KnowledgeSet) -> usize {
        // A dense peer can push a sparse self far past the spill
        // threshold; promote first so the merge below is word-level.
        if matches!(self.membership, Membership::Sparse(_))
            && matches!(other.membership, Membership::Dense(_))
        {
            self.spill_now();
        }
        match (&mut self.membership, &other.membership) {
            (Membership::Dense(ours), Membership::Dense(theirs)) => {
                if theirs.len() > ours.len() {
                    ours.resize(theirs.len(), 0);
                }
                let mut added = 0;
                for (w, (a, &b)) in ours.iter_mut().zip(theirs).enumerate() {
                    let mut new = b & !*a;
                    if new != 0 {
                        *a |= b;
                        added += new.count_ones() as usize;
                        while new != 0 {
                            let id = NodeId::new((w * 64 + new.trailing_zeros() as usize) as u32);
                            self.list.push(id);
                            self.fresh.push(id);
                            new &= new - 1;
                        }
                    }
                }
                added
            }
            // Sparse other: its sorted index doubles as the iteration
            // order, so dense self pays one O(1) bit probe per id and
            // sparse self one two-pointer merge instead of repeated
            // binary-search inserts.
            (Membership::Dense(ours), Membership::Sparse(theirs)) => {
                let mut added = 0;
                for &raw in theirs {
                    let (w, b) = (raw as usize / 64, 1u64 << (raw % 64));
                    if w >= ours.len() {
                        ours.resize(w + 1, 0);
                    }
                    if ours[w] & b == 0 {
                        ours[w] |= b;
                        let id = NodeId::new(raw);
                        self.list.push(id);
                        self.fresh.push(id);
                        added += 1;
                    }
                }
                added
            }
            (Membership::Sparse(ours), Membership::Sparse(theirs)) => {
                let mut merged = Vec::with_capacity(ours.len() + theirs.len());
                let (mut i, mut j) = (0, 0);
                let mut added = 0;
                while i < ours.len() && j < theirs.len() {
                    let (x, y) = (ours[i], theirs[j]);
                    merged.push(x.min(y));
                    if y < x {
                        let id = NodeId::new(y);
                        self.list.push(id);
                        self.fresh.push(id);
                        added += 1;
                    }
                    i += (x <= y) as usize;
                    j += (y <= x) as usize;
                }
                merged.extend_from_slice(&ours[i..]);
                for &raw in &theirs[j..] {
                    merged.push(raw);
                    let id = NodeId::new(raw);
                    self.list.push(id);
                    self.fresh.push(id);
                    added += 1;
                }
                *ours = merged;
                self.maybe_spill();
                added
            }
            (Membership::Sparse(_), Membership::Dense(_)) => {
                unreachable!("sparse self promoted above when other is dense")
            }
        }
    }

    /// Forces the sparse→dense promotion regardless of the threshold.
    fn spill_now(&mut self) {
        if let Membership::Sparse(sorted) = &self.membership {
            let max = sorted.last().copied().unwrap_or(0) as usize;
            let mut bits = vec![0u64; max / 64 + 1];
            for &raw in sorted {
                bits[raw as usize / 64] |= 1 << (raw % 64);
            }
            self.membership = Membership::Dense(bits);
        }
    }

    /// Number of identifiers known.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// `true` only for the (unreachable in practice) empty set.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// All known identifiers, in learning order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.list.iter().copied()
    }

    /// A copy of the full knowledge, in learning order.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.list.clone()
    }

    /// The full knowledge in learning order, borrowed — the zero-copy
    /// sibling of [`to_vec`](Self::to_vec). Position `0` is the id the
    /// set was constructed with ([`new`](Self::new)); the list is
    /// append-only, so positions are stable forever.
    pub fn list(&self) -> &[NodeId] {
        &self.list
    }

    /// The current frontier position: the number of ids learned so far.
    /// Capture it after a send, and [`since`](Self::since) later yields
    /// exactly the ids learned after that point — a borrow-only
    /// alternative to the [`take_fresh`](Self::take_fresh) queue that
    /// supports any number of independent readers (e.g. one high-water
    /// mark per neighbor).
    pub fn mark(&self) -> usize {
        self.list.len()
    }

    /// The ids learned since `mark` (a value previously returned by
    /// [`mark`](Self::mark)), in learning order.
    pub fn since(&self, mark: usize) -> &[NodeId] {
        &self.list[mark.min(self.list.len())..]
    }

    /// Drains and returns identifiers learned since the previous drain
    /// (never includes the node's own id from construction).
    pub fn take_fresh(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.fresh)
    }

    /// `true` if identifiers have been learned since the last drain.
    pub fn has_fresh(&self) -> bool {
        !self.fresh.is_empty()
    }

    /// A uniformly random known id, excluding `exclude` (typically the
    /// node itself). Returns `None` if no other id is known.
    pub fn sample_other<R: Rng + ?Sized>(&self, rng: &mut R, exclude: NodeId) -> Option<NodeId> {
        // The list contains at most one excluded entry, so rejection
        // sampling terminates in O(1) expected tries once len > 1.
        if self.list.is_empty() || (self.list.len() == 1 && self.list[0] == exclude) {
            return None;
        }
        loop {
            let id = self.list[rng.random_range(0..self.list.len())];
            if id != exclude {
                return Some(id);
            }
        }
    }

    /// The maximum known id (total-order tie-breaking primitive used by
    /// the deterministic baseline and the cluster protocol).
    pub fn max_id(&self) -> Option<NodeId> {
        self.list.iter().copied().max()
    }
}

impl FromIterator<NodeId> for KnowledgeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut k = KnowledgeSet::default();
        for id in iter {
            k.insert_quiet(id);
        }
        k
    }
}

impl Extend<NodeId> for KnowledgeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        KnowledgeSet::extend(self, iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn new_contains_self_only() {
        let k = KnowledgeSet::new(id(5));
        assert!(k.contains(id(5)));
        assert!(!k.contains(id(4)));
        assert_eq!(k.len(), 1);
        assert!(!k.has_fresh());
    }

    #[test]
    fn insert_tracks_freshness_once() {
        let mut k = KnowledgeSet::new(id(0));
        assert!(k.insert(id(9)));
        assert!(!k.insert(id(9)));
        assert_eq!(k.take_fresh(), vec![id(9)]);
        assert!(k.take_fresh().is_empty());
        assert!(k.contains(id(9)));
    }

    #[test]
    fn extend_counts_new_only() {
        let mut k = KnowledgeSet::new(id(0));
        let added = KnowledgeSet::extend(&mut k, [id(1), id(2), id(1), id(0)]);
        assert_eq!(added, 2);
        assert_eq!(k.len(), 3);
    }

    #[test]
    fn iteration_preserves_learning_order() {
        let mut k = KnowledgeSet::new(id(2));
        k.insert(id(7));
        k.insert(id(1));
        assert_eq!(k.to_vec(), vec![id(2), id(7), id(1)]);
    }

    #[test]
    fn sample_other_excludes_self() {
        let mut k = KnowledgeSet::new(id(0));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(k.sample_other(&mut rng, id(0)), None);
        k.insert(id(3));
        for _ in 0..20 {
            assert_eq!(k.sample_other(&mut rng, id(0)), Some(id(3)));
        }
    }

    #[test]
    fn sample_other_is_roughly_uniform() {
        let mut k = KnowledgeSet::new(id(0));
        for i in 1..5 {
            k.insert(id(i));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 5];
        for _ in 0..4000 {
            counts[k.sample_other(&mut rng, id(0)).unwrap().index()] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            assert!((800..1200).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn max_id_tracks_maximum() {
        let mut k = KnowledgeSet::new(id(4));
        assert_eq!(k.max_id(), Some(id(4)));
        k.insert(id(9));
        k.insert(id(2));
        assert_eq!(k.max_id(), Some(id(9)));
    }

    #[test]
    fn huge_ids_in_small_sets_stay_sparse() {
        // The scale-critical property: holding a few ids never costs
        // O(max id) memory — a million-node simulation allocates
        // per-node sets proportional to what each node knows.
        let mut k = KnowledgeSet::new(id(0));
        k.insert(id(1_000_000));
        assert!(k.contains(id(1_000_000)));
        assert!(!k.contains(id(999_999)));
        assert_eq!(k.len(), 2);
        assert!(matches!(k.membership, Membership::Sparse(_)));
    }

    #[test]
    fn spill_to_bitmap_preserves_membership() {
        let mut k = KnowledgeSet::new(id(0));
        for i in 0..2 * SPARSE_MAX as u32 {
            k.insert(id(3 * i));
        }
        assert!(matches!(k.membership, Membership::Dense(_)));
        assert_eq!(k.len(), 2 * SPARSE_MAX); // id(0) deduplicated
        for i in 0..2 * SPARSE_MAX as u32 {
            assert!(k.contains(id(3 * i)), "lost id {}", 3 * i);
            assert!(!k.contains(id(3 * i + 1)));
        }
        // Dedup keeps working across the representation change.
        assert!(!k.insert(id(3)));
        assert!(k.insert(id(1)));
    }

    #[test]
    fn from_iterator_dedups_without_freshness() {
        let k: KnowledgeSet = [id(1), id(2), id(2)].into_iter().collect();
        assert_eq!(k.len(), 2);
        assert!(!k.has_fresh());
    }

    #[test]
    fn marks_window_learning_order() {
        let mut k = KnowledgeSet::new(id(0));
        k.insert(id(7));
        let m = k.mark();
        assert!(k.since(m).is_empty());
        k.insert_untracked(id(3));
        k.insert_untracked(id(9));
        assert_eq!(k.since(m), &[id(3), id(9)]);
        assert_eq!(k.list()[0], id(0));
        assert!(!k.has_fresh() || k.take_fresh() == vec![id(7)]);
        // A stale over-long mark (can't arise from `mark()`) clamps.
        assert!(k.since(usize::MAX).is_empty());
    }

    #[test]
    fn untracked_inserts_skip_fresh_queue() {
        let mut k = KnowledgeSet::new(id(0));
        assert!(k.insert_untracked(id(4)));
        assert!(!k.insert_untracked(id(4)));
        assert_eq!(k.extend_untracked([id(4), id(5), id(6)]), 2);
        assert!(!k.has_fresh());
        assert_eq!(k.len(), 4);
    }

    #[test]
    fn union_from_covers_all_tier_pairs() {
        // (self tier, other tier) — every Sparse/Dense combination.
        let sparse_small: KnowledgeSet = (0..10u32).map(|i| id(5 * i)).collect();
        let dense_big: KnowledgeSet = (0..2000u32).map(|i| id(3 * i)).collect();
        for a_src in [&sparse_small, &dense_big] {
            for b in [&sparse_small, &dense_big] {
                let mut a = a_src.clone();
                let expect_new = b.iter().filter(|&v| !a.contains(v)).count();
                let added = a.union_from(b);
                assert_eq!(added, expect_new);
                assert_eq!(a.len(), a_src.len() + expect_new);
                for v in b.iter() {
                    assert!(a.contains(v));
                }
                for v in a_src.iter() {
                    assert!(a.contains(v));
                }
                // Idempotent: a second union learns nothing.
                assert_eq!(a.union_from(b), 0);
            }
        }
    }

    #[test]
    fn union_from_queues_new_ids_as_fresh() {
        let mut a = KnowledgeSet::new(id(0));
        a.insert(id(2));
        a.take_fresh();
        let b: KnowledgeSet = [id(2), id(4), id(6)].into_iter().collect();
        assert_eq!(a.union_from(&b), 2);
        assert_eq!(a.take_fresh(), vec![id(4), id(6)]);
    }

    #[test]
    fn extend_trait_matches_inherent() {
        let mut k = KnowledgeSet::new(id(0));
        Extend::extend(&mut k, [id(1), id(2)]);
        assert_eq!(k.len(), 3);
        assert!(k.has_fresh());
    }
}
