//! Compressed sparse row (CSR) adjacency: the flat, cache-friendly
//! read-side counterpart of [`DiGraph`].
//!
//! [`DiGraph`] stores one heap `Vec` per node — convenient for
//! incremental construction (sorted-insert dedup), but traversing a
//! million rows chases a million separate allocations. `CsrAdjacency`
//! freezes a finished graph into exactly two arrays: a single edge
//! array holding every target consecutively, and an `n + 1` offset
//! array delimiting each node's slice. Row lookup is two loads into
//! memory that prefetchers understand, and the whole structure for
//! n=2^20 / 3-out graphs is ~16 MB contiguous instead of a pointer
//! forest.
//!
//! Everything downstream of topology generation consumes adjacency
//! read-only — instance construction
//! (`rd_core::problem::initial_knowledge`) flattens through here, so
//! both the sequential and sharded engines are fed from CSR rows.

use crate::digraph::DiGraph;

/// Frozen CSR adjacency built from a [`DiGraph`].
///
/// Rows preserve `DiGraph`'s ordering guarantee: each node's targets
/// are sorted ascending and deduplicated.
///
/// # Example
///
/// ```
/// use rd_graphs::{CsrAdjacency, DiGraph};
///
/// let g = DiGraph::from_edges(3, [(0, 2), (0, 1), (2, 0)]);
/// let csr = CsrAdjacency::from_digraph(&g);
/// assert_eq!(csr.row(0), &[1, 2]);
/// assert_eq!(csr.row(1), &[] as &[u32]);
/// assert_eq!(csr.row(2), &[0]);
/// assert_eq!(csr.edge_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `offsets[u]..offsets[u + 1]` delimits node `u`'s slice of
    /// `targets`; `offsets.len() == node_count + 1`.
    offsets: Vec<u32>,
    /// All out-edges, row by row — the single flat edge array.
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// Flattens `g` into CSR form.
    ///
    /// # Panics
    ///
    /// Panics if `g` has more than `u32::MAX` edges (offsets are `u32`
    /// to halve the offset array's cache footprint; 4 G edges is far
    /// beyond any instance this repository simulates).
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.node_count();
        assert!(
            g.edge_count() <= u32::MAX as usize,
            "edge count {} exceeds u32 offsets",
            g.edge_count()
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for u in 0..n {
            targets.extend_from_slice(g.out(u));
            offsets.push(targets.len() as u32);
        }
        CsrAdjacency { offsets, targets }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `u`, sorted ascending.
    pub fn row(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Iterates all rows in node order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.node_count()).map(move |u| self.row(u))
    }

    /// The flat edge array (row-major).
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The offset array (`node_count + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }
}

impl From<&DiGraph> for CsrAdjacency {
    fn from(g: &DiGraph) -> Self {
        CsrAdjacency::from_digraph(g)
    }
}

impl DiGraph {
    /// Freezes this graph into a [`CsrAdjacency`].
    pub fn to_csr(&self) -> CsrAdjacency {
        CsrAdjacency::from_digraph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn csr_matches_digraph_rows_exactly() {
        for topo in [
            Topology::Path,
            Topology::KOut { k: 3 },
            Topology::BinaryTree,
            Topology::CliqueChain { cliques: 4 },
        ] {
            let g = topo.generate(100, 9);
            let csr = g.to_csr();
            assert_eq!(csr.node_count(), g.node_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            for u in 0..g.node_count() {
                assert_eq!(csr.row(u), g.out(u), "row {u} diverged");
                assert_eq!(csr.degree(u), g.out_degree(u));
            }
        }
    }

    #[test]
    fn empty_and_isolated_rows() {
        let csr = DiGraph::new(3).to_csr();
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 0);
        for u in 0..3 {
            assert!(csr.row(u).is_empty());
        }
        let none = DiGraph::new(0).to_csr();
        assert_eq!(none.node_count(), 0);
        assert!(none.rows().next().is_none());
    }

    #[test]
    fn rows_iterator_covers_edge_array() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (1, 3), (3, 0)]);
        let csr = g.to_csr();
        let flattened: Vec<u32> = csr.rows().flatten().copied().collect();
        assert_eq!(flattened, csr.targets());
        assert_eq!(csr.offsets(), &[0, 1, 3, 3, 4]);
    }
}
