//! Online SLO monitors: declarative [`AlertRule`]s evaluated against
//! each [`LiveSnapshot`](crate::LiveSnapshot) as the run executes.
//!
//! Fired alerts become structured `alert` records in the run archive
//! (schema v4) and land in the shared [`AlertLog`] side-channel so
//! `scenario_runner --alerts-fatal` can exit non-zero — they NEVER
//! touch the deterministic `RunReport`, because two of the rules
//! (imbalance, RSS) observe wall-clock- and host-dependent facts.
//!
//! Each rule *latches*: it fires at most once per run, at the first
//! snapshot that violates it, so a sustained violation produces one
//! attributable record instead of one per round.

use crate::live::LiveSnapshot;
use std::sync::{Arc, Mutex};

/// Minimum send attempts (`dropped + messages`) before the drop-rate
/// rule is evaluated: a loss ratio over a double-digit sample is
/// noise, not an SLO violation.
pub const DROP_RATE_MIN_ATTEMPTS: u64 = 1_000;

/// One declarative alert rule.
#[derive(Clone, Debug, PartialEq)]
pub enum AlertRule {
    /// Fires when total knowledge has not grown for `window`
    /// consecutive rounds (deterministic — a pure function of the
    /// knowledge series).
    Stall {
        /// Rounds without knowledge growth before firing.
        window: u64,
    },
    /// Fires when the cumulative fraction of send *attempts* lost —
    /// `dropped / (dropped + messages)`, where `dropped` counts every
    /// failed attempt including retransmissions — exceeds `max_ratio`
    /// (deterministic). Evaluated only once at least
    /// [`DROP_RATE_MIN_ATTEMPTS`] attempts have been made, so a handful
    /// of unlucky early coins cannot trip it.
    DropRate {
        /// Ceiling on `dropped / (dropped + messages)`.
        max_ratio: f64,
    },
    /// Fires when the per-round shard imbalance (max/mean parallel
    /// busy time) exceeds `max_factor` for `window` consecutive rounds
    /// (host-dependent: reads wall clocks).
    Imbalance {
        /// Imbalance ceiling (1.0 = perfectly even shards).
        max_factor: f64,
        /// Consecutive violating rounds before firing — a single slow
        /// round on a noisy host is not an SLO violation.
        window: u64,
    },
    /// Fires when resident knowledge plus pool high-water exceeds
    /// `max_bytes` (host-dependent).
    RssBudget {
        /// Memory ceiling in bytes.
        max_bytes: u64,
    },
}

impl AlertRule {
    /// The rule's stable name (the archive record's `rule` field).
    pub fn name(&self) -> &'static str {
        match self {
            AlertRule::Stall { .. } => "stall",
            AlertRule::DropRate { .. } => "drop-rate",
            AlertRule::Imbalance { .. } => "imbalance",
            AlertRule::RssBudget { .. } => "rss-budget",
        }
    }

    /// The default monitor ruleset: one of each, with deliberately
    /// generous thresholds. A healthy run fires nothing — which keeps
    /// live-attached archives identical to blind ones — while a run
    /// that is genuinely wedged, drowning, skewed, or leaking still
    /// trips the matching rule.
    pub fn defaults() -> Vec<AlertRule> {
        vec![
            AlertRule::Stall { window: 10_000 },
            // 0.95 of *attempts*: the adversarial churn campaign peaks
            // at ~0.92 mid-regime (suppression drops most retransmit
            // attempts) and still completes, so the drowning ceiling
            // must sit above what a passing run reaches.
            AlertRule::DropRate { max_ratio: 0.95 },
            AlertRule::Imbalance {
                max_factor: 50.0,
                window: 64,
            },
            AlertRule::RssBudget {
                max_bytes: 64 << 30,
            },
        ]
    }
}

/// One fired alert.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// Rule name (`stall`, `drop-rate`, `imbalance`, `rss-budget`).
    pub rule: String,
    /// Round at which the rule fired.
    pub round: u64,
    /// The observed value that violated the threshold.
    pub value: f64,
    /// The threshold it violated.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub message: String,
}

/// Shared, thread-safe alert collection: the driver pushes, the caller
/// (e.g. `scenario_runner`) drains after the run.
#[derive(Clone, Debug, Default)]
pub struct AlertLog(Arc<Mutex<Vec<Alert>>>);

impl AlertLog {
    /// An empty log.
    pub fn new() -> Self {
        AlertLog::default()
    }

    /// Appends one alert.
    pub fn push(&self, alert: Alert) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(alert);
    }

    /// A copy of everything fired so far.
    pub fn snapshot(&self) -> Vec<Alert> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of alerts fired so far.
    pub fn len(&self) -> usize {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has fired.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-rule evaluation state.
struct RuleState {
    rule: AlertRule,
    fired: bool,
    /// Consecutive violating rounds (windowed rules).
    streak: u64,
    /// Stall bookkeeping: last observed knowledge total and the round
    /// it last grew.
    last_knowledge: Option<u64>,
    last_growth: u64,
}

/// Evaluates a ruleset against the per-round snapshot stream.
pub struct MonitorEngine {
    rules: Vec<RuleState>,
}

impl MonitorEngine {
    /// A monitor over `rules`.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        MonitorEngine {
            rules: rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    fired: false,
                    streak: 0,
                    last_knowledge: None,
                    last_growth: 0,
                })
                .collect(),
        }
    }

    /// Evaluates every rule against `snap`; returns the alerts that
    /// fired *this* round (each rule latches after its first fire).
    pub fn evaluate(&mut self, snap: &LiveSnapshot) -> Vec<Alert> {
        let mut fired = Vec::new();
        for state in &mut self.rules {
            if state.fired {
                continue;
            }
            let alert = match state.rule {
                AlertRule::Stall { window } => {
                    if state.last_knowledge == Some(snap.knowledge_total) {
                        let stagnant = snap.round.saturating_sub(state.last_growth);
                        (stagnant >= window).then(|| Alert {
                            rule: "stall".into(),
                            round: snap.round,
                            value: stagnant as f64,
                            threshold: window as f64,
                            message: format!(
                                "no knowledge growth for {stagnant} rounds (window {window}); \
                                 last progress at round {}",
                                state.last_growth
                            ),
                        })
                    } else {
                        state.last_knowledge = Some(snap.knowledge_total);
                        state.last_growth = snap.round;
                        None
                    }
                }
                AlertRule::DropRate { max_ratio } => {
                    let attempts = snap.dropped() + snap.messages;
                    let ratio = snap.dropped() as f64 / attempts.max(1) as f64;
                    (attempts >= DROP_RATE_MIN_ATTEMPTS && ratio > max_ratio).then(|| Alert {
                        rule: "drop-rate".into(),
                        round: snap.round,
                        value: ratio,
                        threshold: max_ratio,
                        message: format!(
                            "drop rate {ratio:.3} exceeds ceiling {max_ratio:.3} \
                             ({} of {} send attempts lost)",
                            snap.dropped(),
                            attempts
                        ),
                    })
                }
                AlertRule::Imbalance { max_factor, window } => {
                    let imbalance = snap.imbalance();
                    if imbalance > max_factor {
                        state.streak += 1;
                    } else {
                        state.streak = 0;
                    }
                    (state.streak >= window).then(|| Alert {
                        rule: "imbalance".into(),
                        round: snap.round,
                        value: imbalance,
                        threshold: max_factor,
                        message: format!(
                            "shard imbalance {imbalance:.2} above ceiling {max_factor:.2} \
                             for {} consecutive rounds",
                            state.streak
                        ),
                    })
                }
                AlertRule::RssBudget { max_bytes } => {
                    let rss = snap.resident_bytes + snap.pool_bytes;
                    (rss > max_bytes).then(|| Alert {
                        rule: "rss-budget".into(),
                        round: snap.round,
                        value: rss as f64,
                        threshold: max_bytes as f64,
                        message: format!("resident + pool bytes {rss} exceed budget {max_bytes}"),
                    })
                }
            };
            if let Some(alert) = alert {
                state.fired = true;
                fired.push(alert);
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(round: u64, knowledge: u64) -> LiveSnapshot {
        LiveSnapshot {
            round,
            messages: 100 * round,
            knowledge_total: knowledge,
            knowledge_target: 1 << 20,
            ..LiveSnapshot::default()
        }
    }

    #[test]
    fn stall_fires_once_after_the_window_and_latches() {
        let mut mon = MonitorEngine::new(vec![AlertRule::Stall { window: 3 }]);
        assert!(mon.evaluate(&snap(1, 10)).is_empty());
        assert!(mon.evaluate(&snap(2, 20)).is_empty(), "still growing");
        for r in 3..5 {
            assert!(mon.evaluate(&snap(r, 20)).is_empty(), "inside window");
        }
        let fired = mon.evaluate(&snap(5, 20));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "stall");
        assert_eq!(fired[0].round, 5);
        assert_eq!(fired[0].threshold, 3.0);
        assert!(fired[0].message.contains("last progress at round 2"));
        assert!(mon.evaluate(&snap(6, 20)).is_empty(), "latched");
    }

    #[test]
    fn stall_resets_when_knowledge_grows_again() {
        let mut mon = MonitorEngine::new(vec![AlertRule::Stall { window: 4 }]);
        assert!(mon.evaluate(&snap(1, 10)).is_empty());
        for r in 2..5 {
            assert!(mon.evaluate(&snap(r, 10)).is_empty());
        }
        // Growth at round 5 resets the stagnation clock.
        assert!(mon.evaluate(&snap(5, 11)).is_empty());
        for r in 6..9 {
            assert!(mon.evaluate(&snap(r, 11)).is_empty());
        }
        assert_eq!(mon.evaluate(&snap(9, 11)).len(), 1);
    }

    #[test]
    fn drop_rate_fires_on_the_attempt_fraction() {
        let mut mon = MonitorEngine::new(vec![AlertRule::DropRate { max_ratio: 0.5 }]);
        let mut s = snap(1, 10);
        s.messages = 1_000;
        s.dropped_coin = 600;
        // 600 of 1600 attempts lost = 0.375, under the ceiling.
        assert!(mon.evaluate(&s).is_empty());
        s.round = 2;
        s.dropped_link = 1_000;
        // 1600 of 2600 attempts lost ≈ 0.615.
        let fired = mon.evaluate(&s);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "drop-rate");
        assert!((fired[0].value - 1600.0 / 2600.0).abs() < 1e-9);
        assert!(fired[0].message.contains("send attempts lost"));
    }

    #[test]
    fn drop_rate_needs_a_meaningful_sample() {
        // 92 of 102 attempts lost is a terrible ratio over a
        // meaningless volume — the rule must stay quiet below the
        // attempt floor, then judge once the sample is real.
        let mut mon = MonitorEngine::new(vec![AlertRule::DropRate { max_ratio: 0.9 }]);
        let mut s = snap(1, 10);
        s.messages = 10;
        s.dropped_coin = 92;
        assert!(mon.evaluate(&s).is_empty(), "below DROP_RATE_MIN_ATTEMPTS");
        s.round = 2;
        s.dropped_coin = 9_500;
        s.messages = 100;
        assert_eq!(mon.evaluate(&s).len(), 1, "above the floor it fires");
    }

    #[test]
    fn imbalance_needs_a_sustained_streak() {
        let mut mon = MonitorEngine::new(vec![AlertRule::Imbalance {
            max_factor: 2.0,
            window: 3,
        }]);
        let skewed = |round| LiveSnapshot {
            round,
            shard_busy_ns: vec![1000, 10, 10, 10],
            ..LiveSnapshot::default()
        };
        assert!(mon.evaluate(&skewed(1)).is_empty());
        assert!(mon.evaluate(&skewed(2)).is_empty());
        // One even round breaks the streak.
        let even = LiveSnapshot {
            round: 3,
            shard_busy_ns: vec![100, 100, 100, 100],
            ..LiveSnapshot::default()
        };
        assert!(mon.evaluate(&even).is_empty());
        assert!(mon.evaluate(&skewed(4)).is_empty());
        assert!(mon.evaluate(&skewed(5)).is_empty());
        assert_eq!(mon.evaluate(&skewed(6)).len(), 1);
    }

    #[test]
    fn rss_budget_fires_on_resident_plus_pool() {
        let mut mon = MonitorEngine::new(vec![AlertRule::RssBudget { max_bytes: 1000 }]);
        let mut s = snap(1, 10);
        s.resident_bytes = 600;
        s.pool_bytes = 300;
        assert!(mon.evaluate(&s).is_empty());
        s.pool_bytes = 500;
        let fired = mon.evaluate(&s);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "rss-budget");
        assert_eq!(fired[0].value, 1100.0);
    }

    #[test]
    fn alert_log_is_shared_across_clones() {
        let log = AlertLog::new();
        let clone = log.clone();
        clone.push(Alert {
            rule: "stall".into(),
            round: 9,
            value: 5.0,
            threshold: 3.0,
            message: "test".into(),
        });
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].round, 9);
        assert!(!log.is_empty());
    }

    #[test]
    fn defaults_cover_all_four_rules() {
        let rules = AlertRule::defaults();
        let names: Vec<_> = rules.iter().map(AlertRule::name).collect();
        assert_eq!(names, ["stall", "drop-rate", "imbalance", "rss-budget"]);
    }
}
