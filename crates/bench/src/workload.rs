//! The canonical bench gossip workload, shared by `benches/exec.rs`,
//! `benches/route.rs`-style harnesses, and the `profile` binary so
//! every throughput number and every phase profile measures the *same*
//! node program.
//!
//! Bounded push gossip: each round a node folds its inbox into a
//! sorted, capped knowledge vector and shares its lowest-`BATCH` ids
//! with two random known contacts. The knowledge vector is maintained
//! **sorted at all times**, so inbox folding is a two-pointer capped
//! merge ([`rd_core::merge`]) instead of the former
//! concat→sort→dedup→truncate — ~5× less per-node work — and the
//! shared batch is built once per round as an `Arc<[NodeId]>` whose
//! clones are pointer bumps, not payload copies.
//!
//! Delta encoding was evaluated here and deliberately **not** adopted:
//! this workload's random-peer push means sender-side novelty never
//! dries up (a sender almost always learned *something* since it last
//! contacted a given peer, even though the receiver usually knows it
//! already), so per-peer high-water marks suppressed under 10% of
//! messages while the tag bookkeeping doubled rewrite traffic — a net
//! slowdown, measured at n=2^16. Delta transfers live where they pay:
//! fixed-neighbor flooding ([`rd_core::delta`]), where a node resends
//! to the same peers every round and the frontier empties permanently.
//!
//! Bit-identity with the original sort-based workload is pinned by the
//! order-sensitive state digest printed by the `profile` binary
//! (`0xb8fc70f1233c5e2d` at n=2^16 × 4 rounds, seed 7) and by the
//! message-count assertions in the exec bench smoke test: iterated
//! capped merges compute exactly the global sort's smallest-cap-of-
//! union, and pre-sorting initial knowledge is invisible because the
//! original folded (and thus sorted) its inbox before the first RNG
//! draw of round 0.

use rand::Rng;
use rd_core::merge::merge_sorted_capped;
use rd_core::problem;
use rd_graphs::Topology;
use rd_sim::{Envelope, MessageCost, Node, NodeId, RoundContext};
use std::sync::Arc;

/// Seed used by every bench/profile entry point.
pub const SEED: u64 = 7;
/// Knowledge cap: keeps per-node state (and thus per-round compute)
/// bounded so every round costs the same and samples are comparable.
pub const KNOWLEDGE_CAP: usize = 256;
/// Identifiers shipped per message — a gossip "MTU".
pub const BATCH: usize = 64;

/// A batch of known ids. The payload is reference-counted so the two
/// sends a node makes per round share one allocation.
#[derive(Clone, Debug)]
pub struct Batch(pub Arc<[NodeId]>);

impl MessageCost for Batch {
    fn pointers(&self) -> usize {
        self.0.len()
    }

    fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
        for &id in self.0.iter() {
            visit(id);
        }
    }
}

/// Bounded push gossip: merge the inbox, keep the lowest
/// `KNOWLEDGE_CAP` identifiers, share a batch with two random contacts.
///
/// Invariant: `known` is sorted, deduplicated, and at most
/// `KNOWLEDGE_CAP` long from construction onward.
#[derive(Clone)]
pub struct Gossip {
    /// Sorted capped knowledge vector.
    pub known: Vec<NodeId>,
    /// Ping-pong buffer for the in-place merge; reused across rounds.
    scratch: Vec<NodeId>,
}

impl Node for Gossip {
    type Msg = Batch;

    fn on_round(&mut self, inbox: &mut Vec<Envelope<Batch>>, ctx: &mut RoundContext<'_, Batch>) {
        for env in inbox.drain(..) {
            merge_sorted_capped(
                &mut self.known,
                &env.payload.0,
                KNOWLEDGE_CAP,
                &mut self.scratch,
            );
        }
        let mut share: Option<Batch> = None;
        for _ in 0..2 {
            let dst = self.known[ctx.rng().random_range(0..self.known.len())];
            if dst != ctx.id() {
                let batch = share
                    .get_or_insert_with(|| {
                        // Arc::from(slice) is one allocation + one
                        // memcpy; collect() would round-trip through an
                        // intermediate Vec.
                        Batch(Arc::from(&self.known[..self.known.len().min(BATCH)]))
                    })
                    .clone();
                ctx.send(dst, batch);
            }
        }
    }
}

/// Build the gossip fleet on the standard 3-out random overlay.
///
/// Initial knowledge is pre-sorted here (the engine-visible behavior is
/// unchanged: the original workload sorted before its first RNG draw).
pub fn make_nodes(n: usize, seed: u64) -> Vec<Gossip> {
    let graph = Topology::KOut { k: 3 }.generate(n, seed);
    problem::initial_knowledge(&graph)
        .rows()
        .map(|row| {
            let mut known = row.to_vec();
            known.sort_unstable();
            known.dedup();
            known.truncate(KNOWLEDGE_CAP);
            Gossip {
                known,
                scratch: Vec::new(),
            }
        })
        .collect()
}
