//! Swamping (Harchol-Balter, Leighton, Lewin — PODC '99): the second
//! classic baseline of the original resource-discovery paper.
//!
//! Every round, every machine opens a connection to *every* machine it
//! currently knows and ships its complete knowledge (the original paper
//! has both endpoints swap neighbour lists; in a one-way message model
//! the reverse direction materialises one round later, once the
//! receiver has learned the sender from the envelope). Neighbourhoods
//! compose, so knowledge radius doubles per round: `O(log n)` rounds —
//! but unlike [`Flooding`](crate::algorithms::flooding::Flooding),
//! swamping is not freshness-gated and re-ships complete knowledge on
//! every edge every round, which is exactly why HLL '99 dismiss it:
//! `Θ(n²)` messages *per round* near completion and `Θ(n³)` pointers
//! overall. Run it only at modest `n`.

use crate::algorithms::{DiscoveryAlgorithm, KnowledgeView};
use crate::knowledge::KnowledgeSet;
use crate::problem::InitialKnowledge;
use rd_sim::{Envelope, MessageCost, Node, NodeId, PointerList, RoundContext};

/// Factory for the swamping baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Swamping;

/// Swamping payload: the sender's entire knowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwampMsg {
    /// Every identifier the sender knows.
    pub ids: PointerList,
}

impl MessageCost for SwampMsg {
    fn pointers(&self) -> usize {
        self.ids.len()
    }

    fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
        self.ids.visit_ids(visit);
    }
}

/// Per-node state of swamping.
#[derive(Debug, Clone)]
pub struct SwampingNode {
    knowledge: KnowledgeSet,
    /// Once the node's knowledge has been stable for a full round *and*
    /// every neighbour it contacted stayed silent, it stops swamping
    /// (without this local damping the protocol literally never stops;
    /// HLL assume a known round budget instead).
    idle_rounds: u32,
}

impl Node for SwampingNode {
    type Msg = SwampMsg;

    fn on_round(
        &mut self,
        inbox: &mut Vec<Envelope<SwampMsg>>,
        ctx: &mut RoundContext<'_, SwampMsg>,
    ) {
        let mut learned = false;
        for env in inbox.drain(..) {
            learned |= self.knowledge.insert(env.src);
            learned |= self.knowledge.extend(env.payload.ids) > 0;
        }
        if learned || ctx.round() == 0 {
            self.idle_rounds = 0;
        } else {
            self.idle_rounds += 1;
        }
        // Two rounds without learning anything: every known neighbour
        // already received our complete knowledge in our last active
        // round, so there is nothing left to say until something new
        // arrives (which resets the counter and resumes swamping).
        if self.idle_rounds >= 2 {
            return;
        }
        let me = ctx.id();
        let all: Vec<NodeId> = self.knowledge.iter().filter(|&v| v != me).collect();
        for &dst in &all {
            let ids: PointerList = self.knowledge.iter().filter(|&v| v != dst).collect();
            ctx.send(dst, SwampMsg { ids });
        }
    }
}

impl KnowledgeView for SwampingNode {
    fn knows(&self, id: NodeId) -> bool {
        self.knowledge.contains(id)
    }
    fn knows_count(&self) -> usize {
        self.knowledge.len()
    }
    fn known_ids(&self) -> Vec<NodeId> {
        self.knowledge.to_vec()
    }
    fn resident_bytes(&self) -> u64 {
        self.knowledge.resident_bytes() as u64
    }
}

impl DiscoveryAlgorithm for Swamping {
    type NodeState = SwampingNode;

    fn name(&self) -> String {
        "swamping".into()
    }

    fn make_nodes(&self, initial: &InitialKnowledge) -> Vec<SwampingNode> {
        initial
            .rows()
            .enumerate()
            .map(|(u, ids)| {
                let mut knowledge = KnowledgeSet::new(NodeId::new(u as u32));
                knowledge.extend(ids.iter().copied());
                SwampingNode {
                    knowledge,
                    idle_rounds: 0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Flooding;
    use crate::problem;
    use crate::runner::{run_algorithm, RunConfig};
    use rd_graphs::Topology;
    use rd_sim::Engine;

    fn run_swamp(topo: Topology, n: usize, seed: u64) -> crate::RunReport {
        run_algorithm(
            &Swamping,
            &RunConfig::new(topo, n, seed).with_max_rounds(5_000),
        )
    }

    #[test]
    fn completes_on_survey_topologies() {
        for topo in [
            Topology::Path,
            Topology::Cycle,
            Topology::StarIn,
            Topology::StarOut,
            Topology::BinaryTree,
            Topology::KOut { k: 3 },
        ] {
            let report = run_swamp(topo, 64, 5);
            assert!(report.completed, "{topo} incomplete");
            assert!(report.sound, "{topo} unsound");
        }
    }

    #[test]
    fn rounds_are_logarithmic_like_flooding() {
        let swamp = run_swamp(Topology::Path, 128, 1);
        let flood = run_algorithm(&Flooding, &RunConfig::new(Topology::Path, 128, 1));
        assert!(swamp.completed && flood.completed);
        // Same doubling mechanism, so same order of rounds.
        assert!(swamp.rounds <= flood.rounds + 4);
    }

    #[test]
    fn wastes_far_more_messages_than_flooding() {
        let swamp = run_swamp(Topology::KOut { k: 3 }, 128, 1);
        let flood = run_algorithm(&Flooding, &RunConfig::new(Topology::KOut { k: 3 }, 128, 1));
        assert!(
            swamp.pointers > flood.pointers,
            "swamping {} <= flooding {}",
            swamp.pointers,
            flood.pointers
        );
    }

    #[test]
    fn damping_quiesces_after_completion() {
        let g = Topology::Cycle.generate(32, 1);
        let nodes = Swamping.make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, 1);
        let outcome = engine.run_until(1_000, problem::everyone_knows_everyone);
        assert!(outcome.completed);
        // Give the damping a few rounds, then verify silence.
        for _ in 0..4 {
            engine.step();
        }
        let before = engine.metrics().total_messages();
        engine.step();
        assert_eq!(
            engine.metrics().total_messages(),
            before,
            "still chattering"
        );
    }

    #[test]
    fn single_node_trivial() {
        let report = run_swamp(Topology::Path, 1, 1);
        assert!(report.completed);
        assert_eq!(report.messages, 0);
    }
}
