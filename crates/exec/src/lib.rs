#![warn(missing_docs)]

//! A sharded, multi-threaded execution engine for large discovery runs.
//!
//! [`ShardedEngine`] drives the same [`Node`] programs as the sequential
//! [`rd_sim::Engine`], at the same [`RoundEngine`] interface, but steps
//! nodes on several worker threads per round. The population is sharded
//! *statically by `NodeId`* into contiguous blocks — one block of nodes
//! and the matching block of mailboxes per worker — so workers need no
//! locks: each owns its slice of nodes and inboxes for the duration of
//! the stepping phase.
//!
//! # Determinism
//!
//! The engine is **bit-identical** to the sequential engine: same seed,
//! same nodes, same faults ⇒ same `RunOutcome`, same `RunMetrics`, same
//! trace, round for round. Three properties make this work:
//!
//! 1. *Node steps are order-independent.* Every node draws from a
//!    private per-`(seed, node, round)` random stream
//!    ([`rd_sim::rng::node_round_rng`]) and sees only its own inbox, so
//!    stepping nodes concurrently cannot change what any node computes.
//! 2. *Message fates are order-independent.* Drop and delay coins are a
//!    pure function of `(seed, sender, round, send-sequence)`
//!    ([`rd_sim::route_fate`]): routing one envelope never advances any
//!    stream another envelope reads, so routing order — and therefore
//!    worker count — cannot change any coin.
//! 3. *Deliveries merge in canonical `(sender, sequence)` order.* Each
//!    worker stages and routes its shard's sends in node-index order
//!    (each node's sends in send order) into per-destination-shard
//!    buckets; the merge phase processes, for every destination shard,
//!    the workers' buckets in worker (= sender shard) order. Because
//!    shards are contiguous index blocks, every mailbox receives its
//!    messages in exactly the global sender order the sequential engine
//!    produces.
//!
//! Round bookkeeping and the routing/accounting primitives are
//! inherited from [`EngineCore`] — the single accounting layer both
//! engines use, so metrics and fault semantics cannot drift between
//! them. Both the node-stepping phase and the routing phase are fanned
//! out across `crossbeam` scoped threads; shard-local routing results
//! ([`rd_sim::engine_core::RouteDelta`]) fold associatively back into
//! the core's metrics, trace, and delay queue.
//!
//! # Example
//!
//! ```
//! use rd_exec::ShardedEngine;
//! use rd_sim::{Engine, Envelope, MessageCost, Node, NodeId, RoundContext, RoundEngine};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl MessageCost for Ping {
//!     fn pointers(&self) -> usize { 0 }
//! }
//!
//! #[derive(Clone)]
//! struct Player { peer: NodeId, hits: u32 }
//! impl Node for Player {
//!     type Msg = Ping;
//!     fn on_round(
//!         &mut self,
//!         inbox: &mut Vec<Envelope<Ping>>,
//!         ctx: &mut RoundContext<'_, Ping>,
//!     ) {
//!         if ctx.round() == 0 && ctx.id() == NodeId::new(0) {
//!             ctx.send(self.peer, Ping);
//!         }
//!         for _ in inbox.drain(..) {
//!             self.hits += 1;
//!             if self.hits < 3 { ctx.send(self.peer, Ping); }
//!         }
//!     }
//! }
//!
//! let players = vec![
//!     Player { peer: NodeId::new(1), hits: 0 },
//!     Player { peer: NodeId::new(0), hits: 0 },
//! ];
//! let done = |nodes: &[Player]| nodes.iter().all(|p| p.hits >= 2);
//!
//! let mut sharded = ShardedEngine::new(players.clone(), 42, 2);
//! let mut sequential = Engine::new(players, 42);
//! assert_eq!(
//!     sharded.run_until(20, done),
//!     sequential.run_until(20, done),
//! );
//! assert_eq!(sharded.metrics(), sequential.metrics());
//! ```

use rd_obs::{CausalTrace, Phase, Recorder, SpanEvent};
use rd_sim::engine_core::{
    merge_dest_shard, route_shard, step_node, take_capped, EngineCore, RouteDelta, RouteParams,
};
use rd_sim::{
    round_obs, BufferPool, Envelope, FaultPlan, MessageCost, Node, RetryPolicy, RoundEngine,
    RunMetrics, RunOutcome, Trace,
};
use std::time::Instant;

/// Below this many staged messages per round, the per-destination merge
/// runs on the calling thread: spawning merge workers costs more than
/// the merge itself. (The *routing* fan-out has no such threshold — the
/// route workers exist anyway, and running every configuration through
/// the sharded route path keeps it continuously exercised by the
/// equivalence tests.)
const PARALLEL_MERGE_MIN_MESSAGES: usize = 4096;

/// The staged/scratch buffer pair one stepping worker owns for a round.
type ShardBufs<M> = (Vec<Envelope<M>>, Vec<Envelope<M>>);

/// Deliverable messages tagged with their extra delay, one bucket per
/// destination shard.
type RoutedBuckets<M> = Vec<Vec<(u64, Envelope<M>)>>;

/// A round engine that steps nodes on `workers` threads.
///
/// Construction and the builder knobs mirror [`rd_sim::Engine`]; see the
/// [crate docs](crate) for the sharding scheme and the determinism
/// argument.
pub struct ShardedEngine<N: Node> {
    nodes: Vec<N>,
    core: EngineCore<N::Msg>,
    workers: usize,
    /// Recycled staging/scratch buffers for the stepping phase.
    env_pool: BufferPool<Envelope<N::Msg>>,
    /// Recycled bucket/delay buffers for the routing phase.
    routed_pool: BufferPool<(u64, Envelope<N::Msg>)>,
    /// The attached telemetry recorder, if observability is enabled.
    /// Strictly outside deterministic state: wall-clock flows *into* it,
    /// never back into the run.
    obs: Option<Recorder>,
}

impl<N> ShardedEngine<N>
where
    N: Node + Send,
    N::Msg: Send,
{
    /// Creates an engine over `nodes` with the given worker-thread
    /// count, where node `i` has identifier `NodeId::new(i)`. `seed`
    /// determines all protocol and fault randomness, exactly as in the
    /// sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(nodes: Vec<N>, seed: u64, workers: usize) -> Self {
        assert!(workers > 0, "a sharded engine needs at least one worker");
        let core = EngineCore::new(nodes.len(), seed);
        ShardedEngine {
            nodes,
            core,
            workers,
            env_pool: BufferPool::new(),
            routed_pool: BufferPool::new(),
            obs: None,
        }
    }

    /// Attaches a telemetry [`Recorder`]: phases are timed per worker,
    /// rounds are recorded, and attached sinks export at run end.
    /// Purely observational — a run with a recorder is bit-identical to
    /// the same run without one, for every worker count.
    pub fn with_obs(mut self, mut recorder: Recorder) -> Self {
        // One-time message-cost registration: the profiler attributes
        // per-kind byte costs at finish from these constants plus the
        // deterministic round counters (no-op unless profiling is on).
        recorder.profile_msg_kind(
            rd_sim::short_type_name::<N::Msg>(),
            std::mem::size_of::<Envelope<N::Msg>>() as u64,
            std::mem::size_of::<rd_sim::NodeId>() as u64,
        );
        self.obs = Some(recorder);
        self
    }

    /// Installs a fault plan (drops, crashes).
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes a node index that does not exist.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.core.set_faults(faults);
        self
    }

    /// Enables message tracing with the given event capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.core.enable_trace(capacity);
        self
    }

    /// Attaches a causal knowledge-provenance trace, exactly as in the
    /// sequential engine: sampling is counter-based and offers fold in
    /// canonical shard order, so the retained DAG is byte-identical for
    /// every worker count — and attaching it never perturbs the run.
    pub fn with_causal_trace(mut self, causal: CausalTrace) -> Self {
        self.core.set_causal(causal);
        self
    }

    /// Caps deliveries at `cap` messages per node per round; excess
    /// messages queue (in arrival order) for later rounds.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_receive_cap(mut self, cap: usize) -> Self {
        self.core.set_receive_cap(cap);
        self
    }

    /// Makes delivery asynchronous: every message independently takes
    /// `1 + U{0..=max_extra}` rounds to arrive instead of exactly one.
    pub fn with_max_extra_delay(mut self, max_extra: u64) -> Self {
        self.core.set_max_extra_delay(max_extra);
        self
    }

    /// Enables reliable delivery: every dropped message is
    /// retransmitted under `policy`, exactly as in the sequential
    /// engine (retransmissions are processed serially at round close,
    /// so they stay bit-identical across worker counts).
    ///
    /// # Panics
    ///
    /// Panics if the policy's timeout or retry budget is 0.
    pub fn with_reliable_delivery(mut self, policy: RetryPolicy) -> Self {
        self.core.set_reliable(policy);
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The configured worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Read access to the node programs.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.core.round()
    }

    /// The complexity record.
    pub fn metrics(&self) -> &RunMetrics {
        self.core.metrics()
    }

    /// The message trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace()
    }

    /// The causal provenance trace, if enabled.
    pub fn causal(&self) -> Option<&CausalTrace> {
        self.core.causal()
    }

    /// Records the closed round into the recorder, if one is attached.
    fn observe_round_end(&mut self, round: u64, t_finish: Option<Instant>) {
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::FinishRound, round, 0, t_finish.unwrap());
            // Under profiling, the recorder's own round-close
            // bookkeeping is timed as a `Telemetry` span so the
            // profiler's self-cost shows up in the attribution instead
            // of inflating the unattributed remainder.
            let t_tel = rec.profiling_enabled().then(Instant::now);
            let row = *self
                .core
                .metrics()
                .rounds()
                .last()
                .expect("finish_round closed a row");
            rec.end_round(round_obs(round, &row));
            if let Some(t) = t_tel {
                rec.span_from(Phase::Telemetry, round, 0, t);
            }
        }
    }

    /// Executes one synchronous round; see the [crate docs](crate) for
    /// the three phases and which of them run in parallel.
    pub fn step(&mut self) {
        if let Some(rec) = &mut self.obs {
            rec.begin_round();
        }
        let t_begin = self.obs.as_ref().map(|_| Instant::now());
        let round = self.core.begin_round();
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::BeginRound, round, 0, t_begin.unwrap());
        }
        let suspects = self.core.suspects().to_vec();
        let n = self.nodes.len();
        // Contiguous blocks of ⌈n / workers⌉ nodes; the final shard may
        // be short. A worker without nodes is never spawned.
        let workers = self.workers.min(n).max(1);
        let shard_len = n.div_ceil(workers).max(1);

        if workers == 1 {
            // One worker degenerates to the sequential loop; skip the
            // thread machinery (and its overhead) entirely.
            let mut staged = self.env_pool.take();
            let mut scratch = self.env_pool.take();
            let t_step = self.obs.as_ref().map(|_| Instant::now());
            let state = self.core.step_state();
            let crashes_possible = state.faults.has_crashes();
            for (i, node) in self.nodes.iter_mut().enumerate() {
                if crashes_possible && state.faults.is_crashed_at(i, round) {
                    // Crashed nodes neither run nor receive; their
                    // pending deliveries are consumed and lost.
                    state.inboxes[i].clear();
                    continue;
                }
                let inbox = take_capped(&mut state.inboxes[i], &mut scratch, state.receive_cap);
                step_node(node, i, round, state.seed, &suspects, inbox, &mut staged);
            }
            if let Some(rec) = &mut self.obs {
                rec.span_from(Phase::OnRound, round, 0, t_step.unwrap());
            }
            let t_route = self.obs.as_ref().map(|_| Instant::now());
            self.core.route_batch(&mut staged);
            if let Some(rec) = &mut self.obs {
                rec.span_from(Phase::RouteShard, round, 0, t_route.unwrap());
            }
            self.env_pool.put(staged);
            self.env_pool.put(scratch);
            let t_finish = self.obs.as_ref().map(|_| Instant::now());
            self.core.finish_round();
            self.observe_round_end(round, t_finish);
            return;
        }

        let shard_count = n.div_ceil(shard_len);
        let mut bufs: Vec<ShardBufs<N::Msg>> = (0..shard_count)
            .map(|_| (self.env_pool.take(), self.env_pool.take()))
            .collect();

        // Workers time their own stepping slice against the recorder's
        // shared epoch (`Instant` is `Copy + Send`); the spans fold back
        // in shard order after the join, so telemetry never races.
        let epoch = self.obs.as_ref().map(|rec| rec.epoch());
        let state = self.core.step_state();
        let step_spans = {
            let faults = state.faults;
            let crashes_possible = faults.has_crashes();
            let seed = state.seed;
            let cap = state.receive_cap;
            let suspects = &suspects[..];
            let node_shards = self.nodes.chunks_mut(shard_len);
            let inbox_shards = state.inboxes.chunks_mut(shard_len);
            let stepped = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = node_shards
                    .zip(inbox_shards)
                    .zip(bufs.iter_mut())
                    .enumerate()
                    .map(|(shard, ((nodes, inboxes), (staged, scratch)))| {
                        scope.spawn(move |_| {
                            let start = epoch.map(|_| Instant::now());
                            for (offset, node) in nodes.iter_mut().enumerate() {
                                let i = shard * shard_len + offset;
                                if crashes_possible && faults.is_crashed_at(i, round) {
                                    inboxes[offset].clear();
                                    continue;
                                }
                                let inbox = take_capped(&mut inboxes[offset], scratch, cap);
                                step_node(node, i, round, seed, suspects, inbox, staged);
                            }
                            epoch.map(|e| {
                                SpanEvent::from_instants(
                                    e,
                                    Phase::OnRound,
                                    round,
                                    shard as u32,
                                    start.unwrap(),
                                    Instant::now(),
                                )
                            })
                        })
                    })
                    .collect();
                // Join in shard order. A panicking node program panics
                // the engine, exactly as in the sequential engine.
                let mut spans = Vec::new();
                for handle in handles {
                    match handle.join() {
                        Ok(Some(span)) => spans.push(span),
                        Ok(None) => {}
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                spans
            });
            match stepped {
                Ok(spans) => spans,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        };
        if let Some(rec) = &mut self.obs {
            for span in step_spans {
                rec.record_span(span);
            }
        }

        let mut staged_shards: Vec<Vec<Envelope<N::Msg>>> = Vec::with_capacity(shard_count);
        for (staged, scratch) in bufs {
            self.env_pool.put(scratch);
            staged_shards.push(staged);
        }

        route_staged(
            &mut self.core,
            &mut staged_shards,
            shard_len,
            &mut self.routed_pool,
            self.obs.as_mut(),
        );
        for staged in staged_shards {
            self.env_pool.put(staged);
        }
        let t_finish = self.obs.as_ref().map(|_| Instant::now());
        self.core.finish_round();
        self.observe_round_end(round, t_finish);
    }

    /// Runs until `done(nodes)` holds (checked before the first round and
    /// after every round) or `max_rounds` have executed.
    pub fn run_until(&mut self, max_rounds: u64, done: impl FnMut(&[N]) -> bool) -> RunOutcome {
        RoundEngine::run_until(self, max_rounds, done)
    }

    /// Like [`run_until`](Self::run_until), additionally invoking
    /// `observe(round, nodes)` after every round.
    pub fn run_observed(
        &mut self,
        max_rounds: u64,
        done: impl FnMut(&[N]) -> bool,
        observe: impl FnMut(u64, &[N]),
    ) -> RunOutcome {
        RoundEngine::run_observed(self, max_rounds, done, observe)
    }
}

/// Routes one round's staged envelopes — one buffer per sender shard,
/// shard order, each in canonical `(sender, send-sequence)` order —
/// through the parallel shard/route/merge pipeline into `core`.
///
/// With a single shard this degenerates to the serial
/// [`EngineCore::route_batch`]. Otherwise every sender shard is routed
/// on its own thread into per-destination-shard buckets
/// ([`route_shard`]), the buckets are merged per destination shard
/// ([`merge_dest_shard`] — in parallel too, once the round carries
/// enough messages to pay for the spawns), and the shard-local deltas
/// fold back into the core. Bit-identical to the serial path for every
/// shard count; the staged buffers are drained and left empty for
/// reuse.
///
/// Public so the routing micro-benchmark can drive the exact pipeline
/// the engine uses.
///
/// When a [`Recorder`] is passed, every route worker and merge job
/// times itself against the recorder's epoch ([`Phase::RouteShard`] and
/// [`Phase::MergeDestShard`] spans, one per shard), and the serial
/// delta fold is timed as [`Phase::ApplyDeltas`]. Telemetry is folded
/// back only after the joins, in shard order, so it cannot perturb the
/// run.
///
/// # Panics
///
/// Panics if any envelope addresses a node that does not exist.
pub fn route_staged<M: MessageCost + Send>(
    core: &mut EngineCore<M>,
    staged_shards: &mut [Vec<Envelope<M>>],
    shard_len: usize,
    routed_pool: &mut BufferPool<(u64, Envelope<M>)>,
    mut obs: Option<&mut Recorder>,
) {
    if staged_shards.len() <= 1 {
        if let Some(staged) = staged_shards.first_mut() {
            let round = core.round();
            let start = obs.as_ref().map(|_| Instant::now());
            core.route_batch(staged);
            if let Some(rec) = obs {
                rec.span_from(Phase::RouteShard, round, 0, start.unwrap());
            }
        }
        return;
    }
    let epoch = obs.as_ref().map(|rec| rec.epoch());
    let shard_count = staged_shards.len();
    let total_messages: usize = staged_shards.iter().map(Vec::len).sum();
    let mut bucket_sets: Vec<RoutedBuckets<M>> = (0..shard_count)
        .map(|_| (0..shard_count).map(|_| routed_pool.take()).collect())
        .collect();
    let mut delayed_lists: Vec<Vec<(u64, Envelope<M>)>> =
        (0..shard_count).map(|_| routed_pool.take()).collect();

    let parts = core.parallel_parts();
    let params = RouteParams {
        seed: parts.seed,
        round: parts.round,
        faults: parts.faults,
        max_extra_delay: parts.max_extra_delay,
        trace_capacity: parts.trace_capacity,
        causal_ppm: parts.causal_ppm,
        reliable: parts.reliable,
        node_count: parts.inboxes.len(),
        shard_len,
    };
    let round = params.round;

    // Route phase: one worker per sender shard, each writing only its
    // own shard's sent-tally lanes and its own destination buckets.
    let (mut deltas, route_spans): (Vec<RouteDelta<M>>, Vec<SpanEvent>) = {
        let sent_lanes = parts.node_lanes.chunks_mut(shard_len);
        let routed = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = staged_shards
                .iter_mut()
                .zip(sent_lanes)
                .zip(bucket_sets.drain(..))
                .enumerate()
                .map(|(w, ((staged, sent_lanes), buckets))| {
                    scope.spawn(move |_| {
                        let start = epoch.map(|_| Instant::now());
                        let delta = route_shard(params, staged, w * shard_len, sent_lanes, buckets);
                        let span = epoch.map(|e| {
                            SpanEvent::from_instants(
                                e,
                                Phase::RouteShard,
                                round,
                                w as u32,
                                start.unwrap(),
                                Instant::now(),
                            )
                        });
                        (delta, span)
                    })
                })
                .collect();
            let mut deltas = Vec::with_capacity(handles.len());
            let mut spans = Vec::new();
            for handle in handles {
                match handle.join() {
                    Ok((delta, span)) => {
                        deltas.push(delta);
                        spans.extend(span);
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            (deltas, spans)
        });
        match routed {
            Ok(out) => out,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    };
    if let Some(rec) = obs.as_deref_mut() {
        for span in route_spans {
            rec.record_span(span);
        }
    }

    // Transpose: per destination shard, the per-worker bucket parts in
    // worker (= sender shard) order.
    let mut per_dest: Vec<RoutedBuckets<M>> = (0..shard_count)
        .map(|_| Vec::with_capacity(shard_count))
        .collect();
    for delta in &mut deltas {
        for (d, bucket) in delta.buckets.drain(..).enumerate() {
            per_dest[d].push(bucket);
        }
    }

    // Merge phase: one job per destination shard, each owning its
    // shard's mailboxes and recv-tally lanes.
    {
        let merge_jobs = parts
            .inboxes
            .chunks_mut(shard_len)
            .zip(parts.node_lanes.chunks_mut(shard_len))
            .zip(per_dest.iter_mut().zip(delayed_lists.iter_mut()))
            .enumerate();
        let merge_spans: Vec<SpanEvent> = if total_messages >= PARALLEL_MERGE_MIN_MESSAGES {
            let merged = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = merge_jobs
                    .map(|(d, ((inboxes, recv_lanes), (parts_d, delayed)))| {
                        scope.spawn(move |_| {
                            let start = epoch.map(|_| Instant::now());
                            merge_dest_shard(
                                round,
                                d * shard_len,
                                parts_d,
                                inboxes,
                                recv_lanes,
                                delayed,
                            );
                            epoch.map(|e| {
                                SpanEvent::from_instants(
                                    e,
                                    Phase::MergeDestShard,
                                    round,
                                    d as u32,
                                    start.unwrap(),
                                    Instant::now(),
                                )
                            })
                        })
                    })
                    .collect();
                let mut spans = Vec::new();
                for handle in handles {
                    match handle.join() {
                        Ok(span) => spans.extend(span),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                spans
            });
            match merged {
                Ok(spans) => spans,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        } else {
            let mut spans = Vec::new();
            for (d, ((inboxes, recv_lanes), (parts_d, delayed))) in merge_jobs {
                let start = epoch.map(|_| Instant::now());
                merge_dest_shard(round, d * shard_len, parts_d, inboxes, recv_lanes, delayed);
                if let Some(e) = epoch {
                    spans.push(SpanEvent::from_instants(
                        e,
                        Phase::MergeDestShard,
                        round,
                        d as u32,
                        start.unwrap(),
                        Instant::now(),
                    ));
                }
            }
            spans
        };
        if let Some(rec) = obs.as_deref_mut() {
            for span in merge_spans {
                rec.record_span(span);
            }
        }
    }

    let t_apply = obs.as_ref().map(|_| Instant::now());
    core.apply_route_deltas(&mut deltas, &mut delayed_lists);
    if let Some(rec) = obs {
        rec.span_from(Phase::ApplyDeltas, round, 0, t_apply.unwrap());
    }
    for set in per_dest {
        for bucket in set {
            routed_pool.put(bucket);
        }
    }
    for list in delayed_lists {
        routed_pool.put(list);
    }
}

impl<N> RoundEngine<N> for ShardedEngine<N>
where
    N: Node + Send,
    N::Msg: Send,
{
    fn step(&mut self) {
        ShardedEngine::step(self)
    }

    fn nodes(&self) -> &[N] {
        ShardedEngine::nodes(self)
    }

    fn round(&self) -> u64 {
        ShardedEngine::round(self)
    }

    fn metrics(&self) -> &RunMetrics {
        ShardedEngine::metrics(self)
    }

    fn trace(&self) -> Option<&Trace> {
        ShardedEngine::trace(self)
    }

    fn causal(&self) -> Option<&CausalTrace> {
        self.core.causal()
    }

    fn take_causal(&mut self) -> Option<CausalTrace> {
        self.core.take_causal()
    }

    fn obs_mut(&mut self) -> Option<&mut Recorder> {
        self.obs.as_mut()
    }

    fn take_obs(&mut self) -> Option<Recorder> {
        self.obs.take()
    }

    fn pool_counters(&self) -> Vec<(&'static str, u64, u64)> {
        let delay = self.core.pool_stats();
        let env = self.env_pool.stats();
        let routed = self.routed_pool.stats();
        vec![
            ("delay", delay.takes, delay.reuses),
            ("env", env.takes, env.reuses),
            ("routed", routed.takes, routed.reuses),
        ]
    }

    fn pool_high_water(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("delay", self.core.pool_high_water_bytes()),
            ("env", self.env_pool.high_water_bytes()),
            ("routed", self.routed_pool.high_water_bytes()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_sim::{Engine, MessageCost, NodeId, RoundContext};

    /// Gossip probe exercising every determinism-sensitive surface:
    /// randomness, fan-out, and inbox contents.
    #[derive(Clone, Debug, PartialEq)]
    struct Gossiper {
        n: u32,
        heard: Vec<NodeId>,
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Rumor(Vec<NodeId>);
    impl MessageCost for Rumor {
        fn pointers(&self) -> usize {
            self.0.len()
        }
    }

    impl Node for Gossiper {
        type Msg = Rumor;
        fn on_round(
            &mut self,
            inbox: &mut Vec<Envelope<Rumor>>,
            ctx: &mut RoundContext<'_, Rumor>,
        ) {
            use rand::Rng;
            for env in inbox.drain(..) {
                self.heard.push(env.src);
                self.heard.extend(env.payload.0);
            }
            // Two random contacts per round, avoiding self-sends.
            for _ in 0..2 {
                let dst = NodeId::new(ctx.rng().random_range(0..self.n));
                if dst != ctx.id() {
                    ctx.send(dst, Rumor(self.heard.clone()));
                }
            }
            self.heard.truncate(8);
        }
    }

    fn gossipers(n: u32) -> Vec<Gossiper> {
        (0..n)
            .map(|_| Gossiper {
                n,
                heard: Vec::new(),
            })
            .collect()
    }

    fn states(nodes: &[Gossiper]) -> Vec<Gossiper> {
        nodes.to_vec()
    }

    /// Runs both engines for `rounds` rounds under the same plan and
    /// asserts identical nodes, metrics, and traces.
    fn assert_engines_agree(
        n: u32,
        seed: u64,
        workers: usize,
        rounds: u64,
        configure: impl Fn(Engine<Gossiper>) -> Engine<Gossiper>,
        configure_sharded: impl Fn(ShardedEngine<Gossiper>) -> ShardedEngine<Gossiper>,
    ) {
        let mut seq = configure(Engine::new(gossipers(n), seed).with_trace(1 << 14));
        let mut par =
            configure_sharded(ShardedEngine::new(gossipers(n), seed, workers).with_trace(1 << 14));
        for _ in 0..rounds {
            seq.step();
            par.step();
        }
        assert_eq!(states(seq.nodes()), states(par.nodes()));
        assert_eq!(seq.metrics(), par.metrics());
        assert_eq!(seq.trace().unwrap().events(), par.trace().unwrap().events());
    }

    #[test]
    fn matches_sequential_engine_exactly() {
        for workers in [1, 2, 3, 8] {
            assert_engines_agree(23, 7, workers, 12, |e| e, |e| e);
        }
    }

    #[test]
    fn matches_under_faults_and_detection() {
        let plan = || {
            FaultPlan::new()
                .with_crashes([3])
                .with_crash_at(11, 4)
                .with_drop_probability(0.2)
                .with_crash_detection_after(2)
        };
        assert_engines_agree(
            19,
            5,
            4,
            15,
            |e| e.with_faults(plan()),
            |e| e.with_faults(plan()),
        );
    }

    #[test]
    fn matches_under_churn_with_reliable_delivery() {
        // Crash-recovery, a partition window, drops, detection, and the
        // retransmission layer all at once — the full adversarial
        // schedule must stay bit-identical across worker counts.
        let plan = || {
            FaultPlan::new()
                .with_crash_at(3, 2)
                .with_recovery_at(3, 7)
                .with_crashes([14])
                .with_drop_probability(0.15)
                .with_partition([vec![0, 1, 2, 3, 4], vec![10, 11, 12]], 3, 8)
                .with_crash_detection_after(2)
        };
        let policy = RetryPolicy {
            timeout: 1,
            max_retries: 4,
            max_backoff: 4,
        };
        for workers in [2, 5] {
            assert_engines_agree(
                19,
                13,
                workers,
                18,
                |e| e.with_faults(plan()).with_reliable_delivery(policy),
                |e| e.with_faults(plan()).with_reliable_delivery(policy),
            );
        }
    }

    #[test]
    fn matches_under_receive_cap_and_delay() {
        assert_engines_agree(
            17,
            9,
            3,
            15,
            |e| e.with_receive_cap(2).with_max_extra_delay(3),
            |e| e.with_receive_cap(2).with_max_extra_delay(3),
        );
    }

    #[test]
    fn more_workers_than_nodes_is_fine() {
        assert_engines_agree(3, 1, 16, 6, |e| e, |e| e);
    }

    /// High-fan-out probe: enough traffic per round to cross
    /// `PARALLEL_MERGE_MIN_MESSAGES`, so the threaded merge path (not
    /// just its serial fallback) is pinned against the sequential
    /// engine — including delayed deliveries and drops.
    #[derive(Clone, Debug, PartialEq)]
    struct Spammer {
        n: u32,
        received: u64,
    }

    impl Node for Spammer {
        type Msg = Rumor;
        fn on_round(
            &mut self,
            inbox: &mut Vec<Envelope<Rumor>>,
            ctx: &mut RoundContext<'_, Rumor>,
        ) {
            self.received += inbox.len() as u64;
            inbox.clear();
            let me = u32::from(ctx.id());
            for k in 0..200u32 {
                let dst = NodeId::new((me + 1 + k % (self.n - 1)) % self.n);
                if dst != ctx.id() {
                    ctx.send(dst, Rumor(vec![ctx.id()]));
                }
            }
        }
    }

    #[test]
    fn parallel_merge_is_bit_identical_above_threshold() {
        let n = 32u32;
        let spammers = || -> Vec<Spammer> { (0..n).map(|_| Spammer { n, received: 0 }).collect() };
        assert!(
            (n as usize) * 200 >= super::PARALLEL_MERGE_MIN_MESSAGES,
            "workload must cross the parallel-merge threshold"
        );
        let plan = || {
            FaultPlan::new()
                .with_drop_probability(0.1)
                .with_crash_at(5, 2)
        };
        let mut seq = Engine::new(spammers(), 11)
            .with_faults(plan())
            .with_max_extra_delay(2)
            .with_trace(1 << 12);
        let mut par = ShardedEngine::new(spammers(), 11, 4)
            .with_faults(plan())
            .with_max_extra_delay(2)
            .with_trace(1 << 12);
        for _ in 0..6 {
            seq.step();
            par.step();
        }
        assert_eq!(seq.nodes().to_vec(), par.nodes().to_vec());
        assert_eq!(seq.metrics(), par.metrics());
        assert_eq!(seq.trace().unwrap().events(), par.trace().unwrap().events());
        assert_eq!(
            seq.trace().unwrap().overflow(),
            par.trace().unwrap().overflow()
        );
    }

    #[test]
    fn run_until_agrees_on_outcome() {
        let done = |nodes: &[Gossiper]| nodes.iter().all(|g| !g.heard.is_empty());
        let mut seq = Engine::new(gossipers(32), 2);
        let mut par = ShardedEngine::new(gossipers(32), 2, 4);
        assert_eq!(seq.run_until(64, done), par.run_until(64, done));
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ShardedEngine::new(gossipers(4), 1, 0);
    }

    #[test]
    fn empty_population_steps_harmlessly() {
        let mut engine = ShardedEngine::new(Vec::<Gossiper>::new(), 1, 4);
        engine.step();
        assert_eq!(engine.round(), 1);
    }
}
