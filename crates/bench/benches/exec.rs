//! Wall-clock comparison of the two execution engines: the sequential
//! `rd-sim` engine vs the sharded `rd-exec` engine at 1/2/4/8 workers,
//! at n ∈ {2¹², 2¹⁴, 2¹⁶}.
//!
//! The workload is a bounded gossip protocol — every node merges its
//! inbox into a capped knowledge set and pushes 64-identifier batches to
//! two random contacts — chosen so per-node compute (set merging) is
//! substantial relative to routing, the regime the sharded engine is
//! built for. Both engines produce bit-identical runs (pinned by
//! `tests/prop_engine_equivalence.rs`), so this bench measures pure
//! wall-clock, not behaviour.
//!
//! Besides the usual criterion report, a `cargo bench` run writes
//! machine-readable results — rounds/sec per configuration and speedup
//! relative to the sequential engine — to `BENCH_exec.json` at the
//! workspace root, including a note on the host parallelism the numbers
//! were recorded under (speedup is bounded by physical cores; on a
//! single-core host the sharded engine can at best tie). The summary
//! also re-times the sequential and 4-worker configurations with a
//! sink-less `rd-obs` recorder attached (`"obs": true` rows with an
//! `obs_overhead_pct` field), again with a sampling causal trace on
//! top (`"trace": true` rows with a `trace_overhead_pct` field), and
//! again with cost-attribution profiling on (`"prof": true` rows with
//! a `prof_overhead_pct` field), and again with a live telemetry bus
//! plus loopback scrape endpoint serving while the rounds run
//! (`"live": true` rows with a `live_overhead_pct` field): the
//! combined in-run telemetry overhead budget is < 5% at n = 2^16 on
//! the sequential engine, profiling must stay inside the same budget,
//! and the live bus must stay under 5% at n = 2^14. Three `micro:*` rows time the knowledge-merge
//! kernels directly (dense ∪ dense and dense ∪ sparse `union_from`,
//! and delta extraction + payload build) so the hot-path primitives are
//! ratcheted independently of the end-to-end workload; for those rows
//! `rounds_per_sec` means kernel iterations per second.
//!
//! ```text
//! cargo bench -p rd-bench --bench exec
//! ```
//!
//! `--smoke-measure [PATH]` is the CI perf-gate mode: the same
//! best-of-N timing pass as the full bench (minus the criterion
//! report), written to `PATH` (default `BENCH_exec.fresh.json` at the
//! workspace root) for `rd-inspect bench-diff` against the committed
//! `BENCH_exec.json`.

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rd_bench::workload::{make_nodes, Gossip, SEED};
use rd_core::delta::DeltaFrontier;
use rd_core::KnowledgeSet;
use rd_exec::ShardedEngine;
use rd_obs::{CausalTrace, LiveBus, LivePublisher, LiveServer, LiveSnapshot, Recorder, RunMeta};
use rd_sim::{Engine, NodeId};
use std::sync::Arc;
use std::time::Instant;

/// `(log2 n, rounds timed per run)`: fewer rounds at larger n keeps
/// every timed rep at roughly the same duration (~0.2–0.3 s) — reps
/// much shorter than that are dominated by scheduler noise (best-of-5
/// at 0.1 s/rep was observed swinging ±15 % run to run at n = 2^12,
/// hence 60 rounds there), which matters for the `bench-diff`
/// regression gate fed from these rows. Round counts also pick the
/// workload mix — early rounds grow knowledge, later rounds merge at
/// the cap — so changing them changes `rounds_per_sec` itself, not
/// just its variance; the 2^14/2^16 counts are kept at the original
/// values for comparability with previously recorded numbers.
const SIZES: [(u32, u64); 3] = [(12, 60), (14, 8), (16, 4)];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A sink-less recorder: every span/round/metric recording cost is
/// paid, nothing is exported, so the measured delta is the honest
/// in-run overhead of attaching telemetry.
fn bare_recorder(n: usize, workers: usize) -> Recorder {
    Recorder::new(RunMeta {
        algorithm: "bench-gossip".into(),
        topology: "kout-3".into(),
        n,
        seed: SEED,
        engine: engine_label(workers),
        workers: workers.max(1),
        latency_model: None,
    })
}

/// Causal-trace configuration for the `trace: true` rows: the sampling
/// rate recommended for large production runs (0.1% of messages; each
/// sampled gossip message offers a 64-id batch) with a pair budget that
/// never overflows at these sizes.
const TRACE_CAPACITY: usize = 1 << 16;
const TRACE_PPM: u32 = 1_000;

/// The live-telemetry leg: a real [`LiveServer`] on an ephemeral
/// loopback port backed by a [`LiveBus`], plus the per-round snapshot
/// the publisher pushes — the same work `drive()` does with `--live`
/// (including the O(n) knowledge scan), so the measured delta is the
/// honest per-round cost of serving live telemetry. Server start and
/// shutdown stay outside the timed region, like engine construction.
struct LiveLeg {
    publisher: LivePublisher,
    server: Option<LiveServer>,
    base: LiveSnapshot,
}

impl LiveLeg {
    fn start(n: usize, workers: usize) -> LiveLeg {
        let bus = Arc::new(LiveBus::new());
        let server = LiveServer::start("127.0.0.1:0", bus.clone()).ok();
        LiveLeg {
            publisher: LivePublisher::with_bus(bus),
            server,
            base: LiveSnapshot {
                algorithm: "bench-gossip".into(),
                topology: "kout-3".into(),
                engine: engine_label(workers),
                n: n as u64,
                seed: SEED,
                workers: workers.max(1) as u64,
                max_rounds: u64::MAX,
                ..Default::default()
            },
        }
    }

    fn publish(&mut self, round: u64, messages: u64, knowledge_total: u64) {
        self.base.round = round;
        self.base.messages = messages;
        self.base.knowledge_total = knowledge_total;
        let mut snap = self.base.clone();
        self.publisher.publish(&mut snap);
    }

    fn finish(mut self) {
        self.base.finished = true;
        let mut snap = self.base.clone();
        self.publisher.publish_final(&mut snap);
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

/// One run of `rounds` rounds on the chosen engine; `workers == 0`
/// means the sequential `rd-sim` engine, `obs` attaches a sink-less
/// [`Recorder`], `trace` additionally attaches a sampling
/// [`CausalTrace`], `prof` enables cost-attribution profiling on
/// the recorder, and `live` publishes a per-round snapshot to a
/// served loopback scrape endpoint. The node population is cloned from
/// a prebuilt prototype so instance construction (graph generation and
/// initial knowledge) stays outside every timed region. Returns total
/// messages (a checksum that also keeps the work observable) and the
/// wall-clock of the stepping loop alone.
fn run_rounds(
    proto: &[Gossip],
    rounds: u64,
    workers: usize,
    obs: bool,
    trace: bool,
    prof: bool,
    live: bool,
) -> (u64, f64) {
    let recorder = |n: usize| {
        let rec = bare_recorder(n, workers);
        if prof {
            rec.with_profiling()
        } else {
            rec
        }
    };
    if workers == 0 {
        let mut engine = Engine::new(proto.to_vec(), SEED);
        if obs {
            engine = engine.with_obs(recorder(proto.len()));
        }
        if trace {
            engine = engine.with_causal_trace(CausalTrace::new(TRACE_CAPACITY, TRACE_PPM));
        }
        let mut leg = live.then(|| LiveLeg::start(proto.len(), workers));
        let start = Instant::now();
        for r in 0..rounds {
            engine.step();
            if let Some(leg) = leg.as_mut() {
                let known: u64 = engine.nodes().iter().map(|g| g.known.len() as u64).sum();
                leg.publish(r + 1, engine.metrics().total_messages(), known);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        if let Some(leg) = leg.take() {
            leg.finish();
        }
        (engine.metrics().total_messages(), secs)
    } else {
        let mut engine = ShardedEngine::new(proto.to_vec(), SEED, workers);
        if obs {
            engine = engine.with_obs(recorder(proto.len()));
        }
        if trace {
            engine = engine.with_causal_trace(CausalTrace::new(TRACE_CAPACITY, TRACE_PPM));
        }
        let mut leg = live.then(|| LiveLeg::start(proto.len(), workers));
        let start = Instant::now();
        for r in 0..rounds {
            engine.step();
            if let Some(leg) = leg.as_mut() {
                let known: u64 = engine.nodes().iter().map(|g| g.known.len() as u64).sum();
                leg.publish(r + 1, engine.metrics().total_messages(), known);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        if let Some(leg) = leg.take() {
            leg.finish();
        }
        (engine.metrics().total_messages(), secs)
    }
}

fn engine_label(workers: usize) -> String {
    if workers == 0 {
        "sequential".to_string()
    } else {
        format!("sharded:{workers}")
    }
}

/// Iterations per timed rep of a knowledge-merge micro-kernel: enough
/// to push each rep into the hundreds of microseconds, where the
/// best-of-reps minimum is stable against timer granularity.
const MICRO_ITERS: u64 = 512;

/// One knowledge-merge micro-kernel: `(engine label, n, op)`.
type MicroKernel = (&'static str, usize, Box<dyn FnMut()>);

/// A `KnowledgeSet` holding `count` distinct pseudorandom ids drawn
/// from `0..universe` (plus the own id `universe`, placed outside the
/// draw range so every case has exactly `count + 1` members).
fn micro_set(count: usize, universe: u32, seed: u64) -> KnowledgeSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut k = KnowledgeSet::new(NodeId::new(universe));
    while k.len() <= count {
        k.insert_untracked(NodeId::new(rng.random_range(0..universe)));
    }
    k
}

/// The three knowledge-merge micro-kernels behind the `micro:*` rows:
///
/// * `micro:union-dense-dense` — word-level [`KnowledgeSet::union_from`]
///   of two dense (bitmap-backed) sets of 4096 ids over a 2^14
///   universe (~1k new ids per merge), cloning the destination each
///   iteration so every merge starts from the same state;
/// * `micro:union-dense-sparse` — the dense ∪ sparse arm: a 256-id
///   sparse set merged into a 4096-id dense one;
/// * `micro:delta-extract` — [`DeltaFrontier`] delta extraction and
///   payload materialisation against a 2^16-id knowledge list for 16
///   peers at staggered high-water marks (1k–16k ids behind), the
///   shape of a delta-encoded knowledge transfer.
///
/// Returns `(engine label, n, op)` where one `op()` call performs one
/// kernel iteration; both the criterion group and the JSON summary run
/// the same closures.
fn micro_kernels() -> Vec<MicroKernel> {
    let dst = micro_set(4096, 1 << 14, 11);
    let src = micro_set(4096, 1 << 14, 12);
    let union_dense_dense = Box::new(move || {
        let mut t = dst.clone();
        std::hint::black_box(t.union_from(&src));
    });

    let dst = micro_set(4096, 1 << 14, 13);
    let src = micro_set(256, 1 << 14, 14);
    let union_dense_sparse = Box::new(move || {
        let mut t = dst.clone();
        std::hint::black_box(t.union_from(&src));
    });

    let knowledge = micro_set(1 << 16, 1 << 20, 15);
    let peers: Vec<NodeId> = (0..16u32).map(|i| NodeId::new((1 << 20) + 1 + i)).collect();
    let full = knowledge.mark();
    let mut frontier = DeltaFrontier::new();
    let delta_extract = Box::new(move || {
        for (i, &peer) in peers.iter().enumerate() {
            // Pull the mark back to a staggered lag (rewind never moves
            // forward, so after the first pass each peer sits exactly
            // (i + 1) * 1024 ids behind), extract, materialise the wire
            // payload, and advance — one full delta-transfer send path.
            frontier.rewind(peer, full - (i + 1) * 1024);
            let payload: Arc<[NodeId]> = frontier.delta(peer, &knowledge).into();
            std::hint::black_box(payload.len());
            frontier.advance(peer, &knowledge);
        }
    });

    vec![
        ("micro:union-dense-dense", 4096, union_dense_dense),
        ("micro:union-dense-sparse", 4096, union_dense_sparse),
        ("micro:delta-extract", 1 << 16, delta_extract),
    ]
}

/// The criterion-visible view of the knowledge-merge micro-kernels.
fn bench_knowledge_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge-merge-micro");
    for (label, _, mut op) in micro_kernels() {
        group.bench_function(label, |b| b.iter(&mut op));
    }
    group.finish();
}

/// The criterion-visible comparison at every size × engine config.
/// (Engine construction from the cloned prototype is inside the sample,
/// but it is O(n) against the rounds' O(rounds · messages) — noise.)
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec-round-throughput");
    group.sample_size(3);
    for &(log2_n, rounds) in &SIZES {
        let n = 1usize << log2_n;
        let proto = make_nodes(n, SEED);
        for workers in std::iter::once(0).chain(WORKER_COUNTS) {
            group.bench_with_input(
                BenchmarkId::new(engine_label(workers), format!("2^{log2_n}")),
                &proto,
                |b, proto| {
                    b.iter(|| run_rounds(proto, rounds, workers, false, false, false, false))
                },
            );
        }
    }
    group.finish();
}

struct Measurement {
    log2_n: u32,
    rounds: u64,
    workers: usize,
    obs: bool,
    trace: bool,
    prof: bool,
    live: bool,
    best_seconds: f64,
}

/// Times each configuration directly (best of `reps`) and writes the
/// machine-readable summary to `path`. Besides the engine sweep, the
/// sequential and 4-worker configurations are re-timed with a sink-less
/// recorder attached (`"obs": true` rows) and again with a sampling
/// causal trace on top (`"trace": true` rows): the combined in-run
/// telemetry overhead budget is < 5% at n = 2^16 on the sequential
/// engine.
fn write_json_summary(reps: usize, path: &str) {
    let mut measurements = Vec::new();
    for &(log2_n, rounds) in &SIZES {
        let n = 1usize << log2_n;
        let proto = make_nodes(n, SEED);
        let configs: Vec<_> = std::iter::once(0)
            .chain(WORKER_COUNTS)
            .map(|w| (w, false, false, false, false))
            .chain([
                (0, true, false, false, false),
                (4, true, false, false, false),
            ])
            .chain([(0, true, true, false, false), (4, true, true, false, false)])
            .chain([(0, true, false, true, false), (4, true, false, true, false)])
            .chain([(0, true, false, false, true), (4, true, false, false, true)])
            .collect();
        // Interleave the reps across configurations (each pass times every
        // config once) instead of running one config's reps back-to-back:
        // slow monotonic host drift over a sweep then lands on every config
        // equally, so the paired *_overhead_pct deltas cancel it rather
        // than charging it all to whichever configs happen to run last.
        let mut bests = vec![f64::INFINITY; configs.len()];
        for _ in 0..reps {
            for (i, &(workers, obs, trace, prof, live)) in configs.iter().enumerate() {
                let (msgs, secs) = run_rounds(&proto, rounds, workers, obs, trace, prof, live);
                std::hint::black_box(msgs);
                bests[i] = bests[i].min(secs);
            }
        }
        for (&(workers, obs, trace, prof, live), &best) in configs.iter().zip(&bests) {
            eprintln!(
                "[exec-bench] n=2^{log2_n} {:<12} obs={} trace={} prof={} live={} best {:.3}s for {rounds} rounds",
                engine_label(workers),
                if obs { "on " } else { "off" },
                if trace { "on " } else { "off" },
                if prof { "on " } else { "off" },
                if live { "on " } else { "off" },
                best
            );
            measurements.push(Measurement {
                log2_n,
                rounds,
                workers,
                obs,
                trace,
                prof,
                live,
                best_seconds: best,
            });
        }
    }

    // The knowledge-merge micro-kernels ride in the same `configs`
    // array as `micro:*` engine rows so `rd-inspect bench-diff` can
    // ratchet them like any other configuration; for these rows
    // `rounds_per_sec` means kernel iterations per second.
    let mut micros = Vec::new();
    for (label, n, mut op) in micro_kernels() {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for _ in 0..MICRO_ITERS {
                op();
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        let per_sec = MICRO_ITERS as f64 / best;
        eprintln!(
            "[exec-bench] {label:<28} best {best:.4}s for {MICRO_ITERS} iters ({per_sec:.0}/s)"
        );
        micros.push((label, n, best, per_sec));
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"exec-round-throughput\",\n");
    json.push_str(
        "  \"workload\": \"bounded gossip (fan-out 2, 64-id batches, 256-id knowledge cap) on a 3-out random overlay\",\n",
    );
    json.push_str("  \"hardware\": {\n");
    json.push_str(&format!("    \"available_parallelism\": {cores},\n"));
    json.push_str(&format!(
        "    \"note\": \"recorded on a host with {cores} hardware thread(s); parallel speedup is bounded by physical cores, so on a single-core host the sharded engine can at best tie the sequential one and these numbers measure sharding overhead, not scaling — speedup_vs_sequential is omitted there entirely, rerun on a multi-core host for speedup\"\n",
    ));
    json.push_str("  },\n");
    json.push_str("  \"configs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let n = 1usize << m.log2_n;
        let sequential = measurements
            .iter()
            .find(|s| {
                s.log2_n == m.log2_n && s.workers == 0 && !s.obs && !s.trace && !s.prof && !s.live
            })
            .expect("sequential baseline present");
        // Obs rows additionally report overhead vs their own obs-off
        // twin (same engine, same workers); trace, prof, and live rows
        // report overhead vs their plain-obs twin on top.
        let twin = measurements
            .iter()
            .find(|s| {
                s.log2_n == m.log2_n
                    && s.workers == m.workers
                    && !s.obs
                    && !s.trace
                    && !s.prof
                    && !s.live
            })
            .expect("obs-off twin present");
        let rounds_per_sec = m.rounds as f64 / m.best_seconds;
        // On a single-core host "speedup" can only measure sharding
        // overhead, so the field is omitted entirely rather than
        // recorded as a misleading sub-1.0 number; the overhead rows
        // below carry the honest story there.
        let speedup = (cores > 1).then(|| {
            format!(
                ", \"speedup_vs_sequential\": {:.3}",
                sequential.best_seconds / m.best_seconds
            )
        });
        let mut overheads = String::new();
        if m.obs {
            overheads.push_str(&format!(
                ", \"obs_overhead_pct\": {:.2}",
                (m.best_seconds / twin.best_seconds - 1.0) * 100.0
            ));
        }
        if m.trace || m.prof || m.live {
            let obs_twin = measurements
                .iter()
                .find(|s| {
                    s.log2_n == m.log2_n
                        && s.workers == m.workers
                        && s.obs
                        && !s.trace
                        && !s.prof
                        && !s.live
                })
                .expect("plain-obs twin present");
            let overhead = (m.best_seconds / obs_twin.best_seconds - 1.0) * 100.0;
            if m.trace {
                overheads.push_str(&format!(", \"trace_overhead_pct\": {overhead:.2}"));
            }
            if m.prof {
                overheads.push_str(&format!(", \"prof_overhead_pct\": {overhead:.2}"));
            }
            if m.live {
                overheads.push_str(&format!(", \"live_overhead_pct\": {overhead:.2}"));
            }
        }
        json.push_str(&format!(
            "    {{\"n\": {n}, \"log2_n\": {}, \"rounds\": {}, \"engine\": \"{}\", \"workers\": {}, \"obs\": {}, \"trace\": {}, \"prof\": {}, \"live\": {}, \"best_seconds\": {:.4}, \"rounds_per_sec\": {:.2}{}{}}}{}\n",
            m.log2_n,
            m.rounds,
            engine_label(m.workers),
            m.workers,
            m.obs,
            m.trace,
            m.prof,
            m.live,
            m.best_seconds,
            rounds_per_sec,
            speedup.as_deref().unwrap_or(""),
            overheads,
            if i + 1 == measurements.len() && micros.is_empty() {
                ""
            } else {
                ","
            }
        ));
    }
    for (j, (label, n, best, per_sec)) in micros.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {n}, \"engine\": \"{label}\", \"workers\": 0, \"obs\": false, \"trace\": false, \"prof\": false, \"live\": false, \"iters\": {MICRO_ITERS}, \"best_seconds\": {best:.6}, \"rounds_per_sec\": {per_sec:.0}}}{}\n",
            if j + 1 == micros.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("[exec-bench] wrote {path}");
}

/// Smoke check for test runs: both engines agree on a small instance,
/// and attaching a recorder, a causal trace, a profiler, or a live
/// telemetry server changes none of them.
fn smoke() {
    let proto = make_nodes(256, SEED);
    let (seq, _) = run_rounds(&proto, 3, 0, false, false, false, false);
    let (par, _) = run_rounds(&proto, 3, 4, false, false, false, false);
    assert_eq!(seq, par, "engines diverged on the bench workload");
    let (seq_obs, _) = run_rounds(&proto, 3, 0, true, false, false, false);
    let (par_obs, _) = run_rounds(&proto, 3, 4, true, false, false, false);
    assert_eq!(seq, seq_obs, "telemetry perturbed the sequential engine");
    assert_eq!(par, par_obs, "telemetry perturbed the sharded engine");
    let (seq_trace, _) = run_rounds(&proto, 3, 0, true, true, false, false);
    let (par_trace, _) = run_rounds(&proto, 3, 4, true, true, false, false);
    assert_eq!(
        seq, seq_trace,
        "causal tracing perturbed the sequential engine"
    );
    assert_eq!(
        par, par_trace,
        "causal tracing perturbed the sharded engine"
    );
    let (seq_prof, _) = run_rounds(&proto, 3, 0, true, false, true, false);
    let (par_prof, _) = run_rounds(&proto, 3, 4, true, false, true, false);
    assert_eq!(seq, seq_prof, "profiling perturbed the sequential engine");
    assert_eq!(par, par_prof, "profiling perturbed the sharded engine");
    let (seq_live, _) = run_rounds(&proto, 3, 0, true, false, false, true);
    let (par_live, _) = run_rounds(&proto, 3, 4, true, false, false, true);
    assert_eq!(
        seq, seq_live,
        "live telemetry perturbed the sequential engine"
    );
    assert_eq!(par, par_live, "live telemetry perturbed the sharded engine");
    eprintln!(
        "[exec-bench] smoke ok: both engines sent {seq} messages (obs, trace, prof, and live on and off)"
    );
}

/// Default output path of the full `cargo bench` summary: the committed
/// baseline at the workspace root.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");

/// Reps for both the committed baseline and the CI gate's fresh
/// measurement. Both sides MUST take the best of the same number of
/// draws: the minimum of k samples shrinks with k, so comparing a
/// best-of-5 baseline against a best-of-2 re-measurement reads as a
/// uniform phantom regression.
const MEASURE_REPS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // CI perf gate: re-measure every configuration, written next to —
    // never over — the committed baseline, for `rd-inspect bench-diff`.
    if let Some(i) = args.iter().position(|a| a == "--smoke-measure") {
        let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.fresh.json");
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with('-'))
            .map_or(default.to_string(), Clone::clone);
        write_json_summary(MEASURE_REPS, &path);
        return;
    }
    // Cargo passes `--bench` when launched via `cargo bench`; under
    // `cargo test` (or a bare run) stay fast and skip the timed pass.
    if !args.iter().any(|a| a == "--bench") {
        smoke();
        return;
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_engines(&mut criterion);
    bench_knowledge_micro(&mut criterion);
    write_json_summary(MEASURE_REPS, BASELINE_PATH);
}
