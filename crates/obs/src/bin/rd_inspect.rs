//! rd-inspect: summarize, diff, and validate JSONL run archives.
//!
//! ```text
//! rd-inspect summarize <archive.jsonl>
//! rd-inspect diff <a.jsonl> <b.jsonl>
//! rd-inspect validate <archive.jsonl>...
//! ```
//!
//! Exit codes: 0 on success, 1 when validation finds problems (or a
//! file fails to parse), 2 on usage errors.

use rd_obs::{archive, inspect};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rd-inspect summarize <archive.jsonl>\n  rd-inspect diff <a.jsonl> <b.jsonl>\n  rd-inspect validate <archive.jsonl>..."
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("rd-inspect: cannot read {path}: {e}");
        ExitCode::from(1)
    })
}

fn parse(path: &str) -> Result<archive::Archive, ExitCode> {
    archive::parse(&read(path)?).map_err(|e| {
        eprintln!("rd-inspect: {path}: {e}");
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") => {
            let [path] = &args[1..] else { return usage() };
            match parse(path) {
                Ok(a) => {
                    print!("{}", inspect::summarize(&a));
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        Some("diff") => {
            let [pa, pb] = &args[1..] else { return usage() };
            match (parse(pa), parse(pb)) {
                (Ok(a), Ok(b)) => {
                    print!("{}", inspect::diff(pa, &a, pb, &b));
                    ExitCode::SUCCESS
                }
                (Err(code), _) | (_, Err(code)) => code,
            }
        }
        Some("validate") => {
            if args.len() < 2 {
                return usage();
            }
            let mut failed = false;
            for path in &args[1..] {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(_) => {
                        failed = true;
                        continue;
                    }
                };
                let problems = archive::validate(&text);
                if problems.is_empty() {
                    println!("{path}: ok (schema {})", archive::SCHEMA_VERSION);
                } else {
                    failed = true;
                    println!("{path}: {} problem(s)", problems.len());
                    for p in &problems {
                        println!("  {p}");
                    }
                }
            }
            if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
