//! Integration tests for the rd-live loopback scrape endpoint: bind,
//! serve, scrape concurrently, shut down cleanly, release the port.
//! Everything here talks real TCP against `127.0.0.1` — no mocks — so
//! the properties the round loop relies on (readers never block the
//! writer, shutdown leaves nothing behind) are tested end to end.

use rd_obs::json::Json;
use rd_obs::sink::prom_check_conformance;
use rd_obs::{http_get, LiveBus, LivePublisher, LiveServer, LiveSnapshot};
use std::sync::Arc;

fn sample_snapshot(round: u64) -> LiveSnapshot {
    LiveSnapshot {
        algorithm: "hm".into(),
        topology: "3-out".into(),
        engine: "sharded:4".into(),
        n: 1024,
        seed: 42,
        workers: 4,
        round,
        max_rounds: 100_000,
        messages: round * 3000,
        retransmissions: 5,
        dropped_coin: 17,
        dropped_partition: 3,
        knowledge_total: round * 10_000,
        knowledge_target: 1_048_576,
        shard_busy_ns: vec![100, 200, 300, 400],
        round_wall_ns: 450,
        resident_bytes: 8 * 1024 * 1024,
        ..Default::default()
    }
}

fn serve_sample(round: u64) -> (LiveServer, String) {
    let bus = Arc::new(LiveBus::new());
    let server = LiveServer::start("127.0.0.1:0", bus.clone()).expect("bind ephemeral loopback");
    let mut publisher = LivePublisher::with_bus(bus);
    let mut snap = sample_snapshot(round);
    publisher.publish_final(&mut snap);
    let addr = server.addr().to_string();
    (server, addr)
}

#[test]
fn healthz_is_up_before_any_snapshot() {
    let bus = Arc::new(LiveBus::new());
    let server = LiveServer::start("127.0.0.1:0", bus).expect("bind");
    let addr = server.addr().to_string();
    let (code, body) = http_get(&addr, "/healthz").expect("GET /healthz");
    assert_eq!(code, 200);
    assert_eq!(body, "ok\n");
    // No snapshot published yet: data endpoints say 503, not garbage.
    let (code, _) = http_get(&addr, "/status").expect("GET /status");
    assert_eq!(code, 503);
    let (code, _) = http_get(&addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 503);
    server.shutdown();
}

#[test]
fn status_round_trips_through_the_serde_free_parser() {
    let (server, addr) = serve_sample(41);
    let (code, body) = http_get(&addr, "/status").expect("GET /status");
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("served /status is valid JSON");
    assert_eq!(doc.get("round").and_then(Json::as_u64), Some(41));
    assert_eq!(doc.get("algorithm").and_then(Json::as_str), Some("hm"));
    assert_eq!(doc.get("n").and_then(Json::as_u64), Some(1024));
    assert_eq!(
        doc.get("dropped")
            .and_then(|d| d.get("coin"))
            .and_then(Json::as_u64),
        Some(17)
    );
    let busy = doc
        .get("shard_busy_ns")
        .and_then(Json::as_arr)
        .expect("shard_busy_ns array");
    assert_eq!(busy.len(), 4);
    server.shutdown();
}

#[test]
fn metrics_pass_the_prometheus_conformance_checker() {
    let (server, addr) = serve_sample(7);
    let (code, body) = http_get(&addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    prom_check_conformance(&body).expect("served exposition is conformant");
    assert!(body.contains("rd_live_round"));
    assert!(body.contains("cause=\"coin\""));
    server.shutdown();
}

#[test]
fn unknown_paths_get_404() {
    let (server, addr) = serve_sample(1);
    let (code, _) = http_get(&addr, "/flamegraph").expect("GET unknown");
    assert_eq!(code, 404);
    server.shutdown();
}

#[test]
fn concurrent_scrapes_all_succeed_while_the_writer_publishes() {
    let bus = Arc::new(LiveBus::new());
    let server = LiveServer::start("127.0.0.1:0", bus.clone()).expect("bind");
    let addr = server.addr().to_string();
    let mut publisher = LivePublisher::with_bus(bus);
    let mut snap = sample_snapshot(1);
    publisher.publish_final(&mut snap);

    // Eight scrapers hammer all three endpoints while the writer keeps
    // publishing — readers must never see an error or a torn document.
    let writer_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrapers: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let path = ["/status", "/metrics", "/healthz"][i % 3];
                for _ in 0..20 {
                    let (code, body) = http_get(&addr, path).expect("scrape succeeds");
                    assert_eq!(code, 200, "{path}");
                    if path == "/status" {
                        Json::parse(&body).expect("never a torn JSON document");
                    }
                }
            })
        })
        .collect();
    for round in 2..200 {
        let mut snap = sample_snapshot(round);
        publisher.publish(&mut snap);
        if writer_done.load(std::sync::atomic::Ordering::Relaxed) {
            break;
        }
    }
    for handle in scrapers {
        handle.join().expect("scraper thread panicked");
    }
    writer_done.store(true, std::sync::atomic::Ordering::Relaxed);
    server.shutdown();
}

#[test]
fn shutdown_releases_the_port_for_rebinding() {
    let bus = Arc::new(LiveBus::new());
    let server = LiveServer::start("127.0.0.1:0", bus).expect("bind");
    let addr = server.addr();
    server.shutdown();
    // The exact port must be immediately rebindable: shutdown() joined
    // the accept loop, so nothing holds the listener open.
    let bus = Arc::new(LiveBus::new());
    let server =
        LiveServer::start(&addr.to_string(), bus).expect("rebinding the released port succeeds");
    assert_eq!(server.addr(), addr);
    server.shutdown();
    // And after the final shutdown connections are refused — the
    // accept thread is really gone, not leaked.
    assert!(
        http_get(&addr.to_string(), "/healthz").is_err(),
        "server still answering after shutdown"
    );
}

#[test]
fn non_loopback_binds_are_refused() {
    let bus = Arc::new(LiveBus::new());
    match LiveServer::start("0.0.0.0:0", bus) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("wildcard bind must be refused"),
    }
}
