#![warn(missing_docs)]

//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot)
//! over `std::sync`, vendored so the workspace builds in network-less
//! environments. Provides the `Mutex`/`RwLock` subset used here, with
//! parking_lot's no-`Result` locking API (poisoning is swallowed: a
//! panicked holder does not poison the data for the next locker).

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let c = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = c.lock();
            panic!("die while holding");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 1);
    }
}
