//! **F5** — diameter dependence at fixed `n`: the clique-chain knob.
//!
//! Holding `n` fixed and stretching a chain of cliques isolates the
//! `O(log D)` spreading term from the `O(log log n)` consolidation term:
//! the reconstructed bound predicts rounds growing linearly in `log D`
//! with a constant offset.

use crate::profile::Profile;
use rd_analysis::experiment::{sweep, SweepSpec};
use rd_analysis::fit::{fit_model, ScalingModel};
use rd_analysis::Table;
use rd_core::runner::{AlgorithmKind, EngineKind};
use rd_graphs::{metrics, topology, Topology};

/// Runs HM and pointer doubling on clique chains of growing length,
/// on the sequential engine. Returns the table and HM's
/// `(diameter, rounds)` series for fitting.
pub fn run(profile: Profile) -> (Table, Vec<(f64, f64)>) {
    run_with(profile, EngineKind::Sequential)
}

/// Like [`run`], on the chosen execution engine.
pub fn run_with(profile: Profile, engine: EngineKind) -> (Table, Vec<(f64, f64)>) {
    let (n, chain_lengths): (usize, Vec<usize>) = match profile {
        Profile::Quick => (256, vec![2, 4, 8, 16, 32]),
        Profile::Full => (4096, vec![2, 4, 8, 16, 32, 64, 128, 256, 512]),
    };
    let kinds = [
        AlgorithmKind::Hm(Default::default()),
        AlgorithmKind::PointerDoubling,
    ];
    let mut headers = vec!["cliques".to_string(), "diameter".to_string()];
    headers.extend(kinds.iter().map(|k| format!("{} rounds", k.name())));
    let mut t = Table::new(headers);
    let mut hm_series = Vec::new();
    for &cliques in &chain_lengths {
        let g = topology::clique_chain(n, cliques);
        let d = metrics::approx_undirected_diameter(&g, 0).expect("connected") as f64;
        let mut row = vec![cliques.to_string(), format!("{d:.0}")];
        for (i, &kind) in kinds.iter().enumerate() {
            let cells = sweep(&SweepSpec {
                kinds: vec![kind],
                topology: Topology::CliqueChain { cliques },
                ns: vec![n],
                seeds: profile.seeds(),
                threads: match engine {
                    EngineKind::Sequential | EngineKind::Event { .. } => 0,
                    EngineKind::Sharded { .. } => 1,
                },
                engine,
                ..Default::default()
            });
            row.push(format!("{:.0}", cells[0].rounds.mean));
            if i == 0 {
                hm_series.push((d, cells[0].rounds.mean));
            }
        }
        t.row(row);
    }
    (t, hm_series)
}

/// Fits HM's rounds against `log D` (treating the diameter as the size
/// variable): the reconstructed claim predicts an excellent linear fit.
pub fn log_d_fit(series: &[(f64, f64)]) -> rd_analysis::FitResult {
    let ds: Vec<f64> = series.iter().map(|&(d, _)| d.max(2.0)).collect();
    let ys: Vec<f64> = series.iter().map(|&(_, y)| y).collect();
    fit_model(ScalingModel::Log, &ds, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_d_fit_recovers_synthetic_law() {
        let series: Vec<(f64, f64)> = [4.0, 16.0, 64.0, 256.0]
            .iter()
            .map(|&d: &f64| (d, 10.0 + 6.0 * d.log2()))
            .collect();
        let fit = log_d_fit(&series);
        assert!((fit.b - 6.0).abs() < 1e-9);
        assert!(fit.r2 > 0.999);
    }
}
