//! The per-node state machine of the cluster-merge algorithm.

use super::config::{HmConfig, MergeRule};
use super::messages::HmMsg;
use crate::algorithms::KnowledgeView;
use crate::knowledge::KnowledgeSet;
use rand::Rng;
use rd_sim::{Envelope, Node, NodeId, PointerList, RoundContext};
use std::collections::VecDeque;

/// Rounds per super-round. Phase 0 reports, phase 1 assigns, phase 2
/// probes; phases 3–4 carry the probe-forward/reply hops; phase 5 merges.
pub const PHASES: u64 = 6;

const REPORT: u64 = 0;
const ASSIGN: u64 = 1;
const PROBE: u64 = 2;
const MERGE: u64 = 5;

/// One machine of the reconstructed Haeupler–Malkhi protocol.
///
/// Every node starts as the leader of its own singleton cluster with its
/// initial acquaintances as the *frontier*. Super-rounds then gather
/// fresh pointers to the leader, hand each member one distinct frontier
/// target to probe, and merge clusters along discovered leader–leader
/// edges, always toward the larger identifier. See `DESIGN.md` §3.2 for
/// the full protocol narrative and the complexity argument.
#[derive(Debug, Clone)]
pub struct HmNode {
    me: NodeId,
    cfg: HmConfig,
    /// Everything this node has learned (ids only ever grow).
    knowledge: KnowledgeSet,
    /// Current leader pointer (`me` while this node leads).
    leader: NodeId,
    /// Leader-only: cluster members (this node first).
    members: KnowledgeSet,
    /// Leader-only: external ids awaiting a probe, oldest first.
    frontier: VecDeque<NodeId>,
    /// Leader-only: every id ever enqueued (enqueue dedup).
    seen: KnowledgeSet,
    /// Leader-only: targets assigned this super-round, not yet confirmed.
    outstanding: Vec<NodeId>,
    /// Leader-only: foreign leaders discovered since the last merge phase.
    discovered: Vec<NodeId>,
    /// Leader-only: smaller leaders to invite, retried every merge phase
    /// until they become members (or the invite is handed over).
    pending_invites: Vec<NodeId>,
    /// Member-side: targets to probe at the next probe phase.
    pending_probes: Vec<NodeId>,
    /// Member-side: fresh identifiers not yet acknowledged by the leader.
    pending_report: Vec<NodeId>,
    /// Member-side: epoch of the most recent report in flight.
    report_epoch: u64,
    /// Member-side: `(epoch, ids covered)` of the report in flight.
    inflight_report: Option<(u64, usize)>,
    /// Ex-leader: the join payload retried every merge phase until an
    /// [`HmMsg::Adopt`] proves some leader absorbed it.
    pending_join: Option<(Vec<NodeId>, Vec<NodeId>)>,
    /// Member-side: a roster has been received (speculative completion).
    got_roster: bool,
    /// Nodes reported crashed by the failure detector (when configured).
    suspected: KnowledgeSet,
}

impl HmNode {
    pub(super) fn new(me: NodeId, initial: &[NodeId], cfg: HmConfig) -> Self {
        let mut node = HmNode {
            me,
            cfg,
            knowledge: KnowledgeSet::new(me),
            leader: me,
            members: KnowledgeSet::new(me),
            frontier: VecDeque::new(),
            seen: KnowledgeSet::new(me),
            outstanding: Vec::new(),
            discovered: Vec::new(),
            pending_invites: Vec::new(),
            pending_probes: Vec::new(),
            pending_report: Vec::new(),
            report_epoch: 0,
            inflight_report: None,
            pending_join: None,
            got_roster: false,
            suspected: KnowledgeSet::default(),
        };
        for &id in initial {
            node.knowledge.insert(id);
            node.enqueue_external(id);
        }
        node.knowledge.take_fresh(); // initial ids are in the frontier already
        node
    }

    /// Whether this node currently leads a cluster.
    pub fn is_leader(&self) -> bool {
        self.leader == self.me
    }

    /// This node's current leader pointer.
    pub fn leader(&self) -> NodeId {
        self.leader
    }

    /// Leader-only: current cluster size (1 for non-leaders' stale view).
    pub fn cluster_size(&self) -> usize {
        self.members.len()
    }

    /// The members this node believes it leads (meaningful for leaders;
    /// a plain member reports just itself). Exposed for white-box
    /// observation and tests.
    pub fn members(&self) -> Vec<NodeId> {
        self.members.iter().collect()
    }

    /// Leader-only: whether the cluster has exhausted all leads and all
    /// known ids are members — the speculative local-completion signal.
    pub fn is_quiescent(&self) -> bool {
        self.is_leader()
            && self.frontier.is_empty()
            && self.outstanding.is_empty()
            && self.discovered.is_empty()
            && self.pending_invites.is_empty()
            && self.all_known_accounted_for()
    }

    /// Every known id is either a member or reported crashed. (Without a
    /// failure detector `suspected` is empty and this reduces to the
    /// count comparison `members == knowledge`.)
    fn all_known_accounted_for(&self) -> bool {
        if self.suspected.is_empty() {
            return self.members.len() == self.knowledge.len();
        }
        self.knowledge
            .iter()
            .all(|id| self.members.contains(id) || self.suspected.contains(id))
    }

    /// Digests the failure detector's report: newly crashed nodes are
    /// purged from every work queue so the cluster can drain to
    /// quiescence, a member whose leader died fails over to leading
    /// again, and a *retracted* suspicion (the node recovered) readmits
    /// the survivor to the exploration pipeline.
    fn digest_suspects(&mut self, report: &[NodeId]) {
        let newly: Vec<NodeId> = report
            .iter()
            .copied()
            .filter(|&s| !self.suspected.contains(s))
            .collect();
        let revived: Vec<NodeId> = self
            .suspected
            .iter()
            .filter(|s| !report.contains(s))
            .collect();
        if newly.is_empty() && revived.is_empty() {
            return;
        }
        // The report is the detector's full current view, so rebuilding
        // handles suspicions and retractions in one shot.
        self.suspected = report.iter().copied().collect();
        for &s in &newly {
            self.frontier.retain(|&t| t != s);
            self.outstanding.retain(|&t| t != s);
            self.pending_invites.retain(|&t| t != s);
            self.discovered.retain(|&t| t != s);
            self.pending_probes.retain(|&t| t != s);
        }
        for r in revived {
            // The recovered node must be re-integrated before the run
            // can complete: it is a discovery target again. `seen` may
            // already hold it from before the crash, so the frontier
            // re-entry is forced rather than going through
            // `enqueue_external`.
            self.knowledge.insert(r);
            self.seen.insert(r);
            if self.is_leader()
                && !self.members.contains(r)
                && !self.frontier.contains(&r)
                && !self.outstanding.contains(&r)
            {
                self.frontier.push_back(r);
            }
        }
    }

    /// Leader-crash recovery: resume leadership of whatever members
    /// still point at this node (an ex-leader with an unacknowledged
    /// join keeps its old member list; an ordinary member leads itself),
    /// and rebuild the exploration frontier from everything known.
    fn fail_over(&mut self) {
        self.leader = self.me;
        self.pending_join = None;
        self.pending_report.clear();
        self.inflight_report = None;
        self.got_roster = false;
        self.outstanding.clear();
        self.discovered.clear();
        self.pending_invites.clear();
        self.frontier.clear();
        self.seen = self.members.clone();
        let known: Vec<NodeId> = self.knowledge.iter().collect();
        for id in known {
            self.enqueue_external(id);
        }
    }

    fn enqueue_external(&mut self, id: NodeId) {
        if !self.members.contains(id) && !self.suspected.contains(id) && self.seen.insert(id) {
            self.frontier.push_back(id);
        }
    }

    fn record_discovery(&mut self, foreign: NodeId) {
        // A suspected (crashed) node must never re-enter the work
        // queues: a single stale in-flight message naming it would
        // otherwise park it in `pending_invites` forever, blocking
        // quiescence — and with it the final roster.
        if foreign == self.me || self.members.contains(foreign) || self.suspected.contains(foreign)
        {
            return;
        }
        self.knowledge.insert(foreign);
        if !self.discovered.contains(&foreign) {
            self.discovered.push(foreign);
        }
    }

    fn forward(&self, ctx: &mut RoundContext<'_, HmMsg>, msg: HmMsg) {
        debug_assert!(!self.is_leader());
        debug_assert!(self.leader > self.me, "leader pointers increase");
        ctx.send(self.leader, msg);
    }

    fn absorb_join(
        &mut self,
        members: PointerList,
        frontier: PointerList,
        ctx: &mut RoundContext<'_, HmMsg>,
    ) {
        for m in members {
            self.knowledge.insert(m);
            if self.members.insert(m) {
                self.seen.insert(m);
            }
            // Adopt is (re)sent even for members we already hold: a
            // retried Join means the original Adopt may have been lost,
            // and the Adopt doubles as the join acknowledgement.
            if m != self.me {
                ctx.send(m, HmMsg::Adopt { leader: self.me });
            }
        }
        for f in frontier {
            self.knowledge.insert(f);
            self.enqueue_external(f);
        }
    }

    fn handle_message(&mut self, env: Envelope<HmMsg>, ctx: &mut RoundContext<'_, HmMsg>) {
        self.knowledge.insert(env.src);
        match env.payload {
            HmMsg::Report { from, epoch, ids } => {
                self.knowledge.insert(from);
                if self.is_leader() {
                    for id in ids {
                        self.knowledge.insert(id);
                        self.enqueue_external(id);
                    }
                    if from != self.me {
                        ctx.send(from, HmMsg::ReportAck { epoch });
                    }
                } else {
                    self.forward(ctx, HmMsg::Report { from, epoch, ids });
                }
            }
            HmMsg::ReportAck { epoch } => {
                if !self.is_leader() {
                    // The ack comes straight from the current leader:
                    // adopt it (pointers only ever move up), shortcutting
                    // any forwarding chain the report travelled through.
                    // An *acting* leader must never be demoted this way —
                    // a stray ack for a pre-failover report would
                    // silently orphan the members it now leads.
                    self.leader = self.leader.max(env.src);
                } else {
                    self.record_discovery(env.src);
                }
                if let Some((inflight_epoch, covered)) = self.inflight_report {
                    if inflight_epoch == epoch {
                        self.pending_report
                            .drain(..covered.min(self.pending_report.len()));
                        self.inflight_report = None;
                    }
                }
            }
            HmMsg::Assign { target } => {
                self.knowledge.insert(target);
                self.pending_probes.push(target);
            }
            HmMsg::Probe { from_leader } => {
                self.knowledge.insert(from_leader);
                if self.is_leader() {
                    if from_leader == self.me {
                        // A probe of the leader by its own cluster: the
                        // leader is internal by definition, nothing to do.
                    } else {
                        self.record_discovery(from_leader);
                        ctx.send(
                            from_leader,
                            HmMsg::ProbeReply {
                                leader: self.me,
                                target: self.me,
                            },
                        );
                    }
                } else {
                    // Whether the probe is foreign or from our own
                    // cluster, the leader decides: it either records the
                    // discovery or retires an internal probe.
                    self.forward(
                        ctx,
                        HmMsg::ProbeFwd {
                            from_leader,
                            target: self.me,
                        },
                    );
                }
            }
            HmMsg::ProbeFwd {
                from_leader,
                target,
            } => {
                self.knowledge.insert(from_leader);
                self.knowledge.insert(target);
                if self.is_leader() {
                    if from_leader == self.me {
                        // Our own probe found one of our own members.
                        self.outstanding.retain(|&t| t != target);
                    } else {
                        self.record_discovery(from_leader);
                        ctx.send(
                            from_leader,
                            HmMsg::ProbeReply {
                                leader: self.me,
                                target,
                            },
                        );
                    }
                } else {
                    self.forward(
                        ctx,
                        HmMsg::ProbeFwd {
                            from_leader,
                            target,
                        },
                    );
                }
            }
            HmMsg::ProbeReply { leader, target } => {
                self.knowledge.insert(leader);
                self.knowledge.insert(target);
                if self.is_leader() {
                    self.outstanding.retain(|&t| t != target);
                    self.record_discovery(leader);
                } else {
                    self.forward(ctx, HmMsg::ProbeReply { leader, target });
                }
            }
            HmMsg::Join { members, frontier } => {
                if self.is_leader() {
                    self.absorb_join(members, frontier, ctx);
                } else {
                    self.forward(ctx, HmMsg::Join { members, frontier });
                }
            }
            HmMsg::Invite { leader } => {
                self.knowledge.insert(leader);
                if self.is_leader() {
                    self.record_discovery(leader);
                } else if leader != self.leader {
                    self.forward(ctx, HmMsg::Invite { leader });
                }
            }
            HmMsg::Adopt { leader } => {
                self.knowledge.insert(leader);
                if self.is_leader() {
                    // A stale adoption (from a join or report that
                    // predates a leader-crash recovery) must not demote
                    // an acting leader: its members — and its frontier
                    // leads — would be silently orphaned. Treat it as a
                    // discovery and merge through the ordinary join path
                    // instead.
                    self.record_discovery(leader);
                } else {
                    // Leader pointers only ever move to larger ids, so
                    // the max is always the newest information.
                    self.leader = self.leader.max(leader);
                    // Any adoption proves our join payload reached a
                    // leader.
                    self.pending_join = None;
                }
            }
            HmMsg::Roster { ids } => {
                self.knowledge.extend(ids);
                self.got_roster = true;
            }
        }
    }

    fn phase_report(&mut self, ctx: &mut RoundContext<'_, HmMsg>) {
        if self.is_leader() {
            let fresh = self.knowledge.take_fresh();
            for id in fresh {
                self.enqueue_external(id);
            }
            return;
        }
        let fresh = self.knowledge.take_fresh();
        self.pending_report.extend(fresh);
        if self.pending_report.is_empty() && self.got_roster {
            return;
        }
        // (Re)transmit everything unacknowledged under a fresh epoch;
        // the ack releases exactly the prefix this transmission covered.
        // An empty report doubles as a heartbeat: the acknowledgement
        // comes back from the *current* leader, healing leader pointers
        // that went stale through dropped Adopt messages.
        self.report_epoch += 1;
        self.inflight_report = Some((self.report_epoch, self.pending_report.len()));
        self.forward(
            ctx,
            HmMsg::Report {
                from: self.me,
                epoch: self.report_epoch,
                ids: self.pending_report.as_slice().into(),
            },
        );
    }

    fn phase_assign(&mut self, ctx: &mut RoundContext<'_, HmMsg>) {
        if !self.is_leader() {
            return;
        }
        // Recycle unconfirmed probes from the previous super-round
        // (drops, forwarding latency): they go back to the front so
        // retries happen before new exploration.
        for t in std::mem::take(&mut self.outstanding).into_iter().rev() {
            self.frontier.push_front(t);
        }
        let cap = if self.cfg.parallel_probes {
            self.members.len()
        } else {
            1
        };
        let mut targets = Vec::new();
        while targets.len() < cap {
            let Some(t) = self.frontier.pop_front() else {
                break;
            };
            if self.members.contains(t) {
                continue; // became internal since enqueue
            }
            targets.push(t);
        }
        if targets.is_empty() {
            self.maybe_broadcast_roster(ctx);
            return;
        }
        // First target is probed by the leader itself; the rest go to
        // members in roster order.
        let assignees: Vec<NodeId> = self
            .members
            .iter()
            .filter(|&m| m != self.me)
            .take(targets.len().saturating_sub(1))
            .collect();
        self.outstanding.push(targets[0]);
        self.pending_probes.push(targets[0]);
        for (&t, &m) in targets[1..].iter().zip(&assignees) {
            self.outstanding.push(t);
            ctx.send(m, HmMsg::Assign { target: t });
        }
        // Targets beyond the member pool (cannot happen with the default
        // cap, but kept for safety) return to the frontier.
        for &t in targets[1 + assignees.len()..].iter().rev() {
            self.frontier.push_front(t);
        }
    }

    fn maybe_broadcast_roster(&mut self, ctx: &mut RoundContext<'_, HmMsg>) {
        // Rebroadcast every quiescent super-round: a dropped roster must
        // not strand a member one id short of completion. In fault-free
        // runs the harness observes completion right after the first
        // roster lands, so at most one broadcast is ever sent.
        if !self.is_quiescent() || self.members.len() <= 1 {
            return;
        }
        let roster: Vec<NodeId> = self.members.iter().collect();
        for m in self.members.iter() {
            if m != self.me {
                ctx.send(
                    m,
                    HmMsg::Roster {
                        ids: roster.as_slice().into(),
                    },
                );
            }
        }
        self.got_roster = true;
    }

    fn phase_probe(&mut self, ctx: &mut RoundContext<'_, HmMsg>) {
        let from_leader = self.leader;
        for t in std::mem::take(&mut self.pending_probes) {
            if t == self.me {
                continue;
            }
            ctx.send(t, HmMsg::Probe { from_leader });
        }
    }

    fn phase_merge(&mut self, ctx: &mut RoundContext<'_, HmMsg>) {
        // Join retry: until some leader's Adopt confirms our payload was
        // absorbed, re-send it along the freshest leader pointer we hold.
        if let Some((members, frontier)) = &self.pending_join {
            debug_assert!(!self.is_leader());
            let msg = HmMsg::Join {
                members: members.as_slice().into(),
                frontier: frontier.as_slice().into(),
            };
            ctx.send(self.leader, msg);
            return;
        }
        if !self.is_leader() {
            return;
        }
        // Sort the discoveries of this super-round.
        let mut above: Vec<NodeId> = Vec::new();
        for d in std::mem::take(&mut self.discovered) {
            if self.members.contains(d) {
                continue; // merged into us in the meantime
            }
            if d > self.me {
                above.push(d);
            } else if !self.pending_invites.contains(&d) {
                self.pending_invites.push(d);
            }
        }
        self.pending_invites
            .retain(|&b| !self.members.contains(b) && !self.suspected.contains(b));
        if above.is_empty() {
            if self.cfg.invites {
                // Retried every merge phase until the invitee joins (or
                // we defect and hand the lead over).
                for &b in &self.pending_invites {
                    ctx.send(b, HmMsg::Invite { leader: self.me });
                }
            }
            return;
        }
        let target = match self.cfg.merge_rule {
            MergeRule::MaxId => above.iter().copied().max().expect("nonempty"),
            MergeRule::MinAbove => above.iter().copied().min().expect("nonempty"),
            MergeRule::RandomAbove => above[ctx.rng().random_range(0..above.len())],
        };
        // Hand over every lead we hold: the frontier, unconfirmed
        // probes, unresolved invites, and the discovered leaders we are
        // not joining.
        let mut handover: Vec<NodeId> = std::mem::take(&mut self.frontier).into_iter().collect();
        handover.append(&mut self.outstanding);
        handover.extend(above.iter().copied().filter(|&d| d != target));
        handover.append(&mut self.pending_invites);
        let members: Vec<NodeId> = self.members.iter().collect();
        ctx.send(
            target,
            HmMsg::Join {
                members: members.as_slice().into(),
                frontier: handover.as_slice().into(),
            },
        );
        self.leader = target;
        self.knowledge.insert(target);
        self.pending_join = Some((members, handover));
    }
}

impl Node for HmNode {
    type Msg = HmMsg;

    fn on_round(&mut self, inbox: &mut Vec<Envelope<HmMsg>>, ctx: &mut RoundContext<'_, HmMsg>) {
        // Called even on an empty report: the previous round's suspects
        // may all have been retracted, and that shrink must be digested.
        if !ctx.suspects().is_empty() || !self.suspected.is_empty() {
            let report: Vec<NodeId> = ctx.suspects().to_vec();
            self.digest_suspects(&report);
        }
        for env in inbox.drain(..) {
            self.handle_message(env, ctx);
        }
        // Checked every round (not just on fresh reports): a stale Adopt
        // can point us at an already-reported-dead leader.
        if !self.is_leader() && self.suspected.contains(self.leader) {
            self.fail_over();
        }
        match ctx.round() % PHASES {
            REPORT => self.phase_report(ctx),
            ASSIGN => self.phase_assign(ctx),
            PROBE => self.phase_probe(ctx),
            MERGE => self.phase_merge(ctx),
            _ => {}
        }
    }
}

impl KnowledgeView for HmNode {
    fn knows(&self, id: NodeId) -> bool {
        self.knowledge.contains(id)
    }
    fn knows_count(&self) -> usize {
        self.knowledge.len()
    }
    fn known_ids(&self) -> Vec<NodeId> {
        self.knowledge.to_vec()
    }
    fn believes_done(&self) -> bool {
        if self.is_leader() {
            self.is_quiescent()
        } else {
            self.got_roster
        }
    }
    fn resident_bytes(&self) -> u64 {
        self.knowledge.resident_bytes() as u64
    }
}
