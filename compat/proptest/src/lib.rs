#![warn(missing_docs)]

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, vendored so the workspace's property tests run in network-less
//! environments.
//!
//! The subset provided is exactly what this workspace uses: the
//! [`Strategy`] trait over integer ranges, [`Just`], tuples,
//! [`prop_map`](Strategy::prop_map), [`any`], `prop::collection::vec`,
//! the [`prop_oneof!`]/[`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assume!`] macros, and a [`ProptestConfig`](test_runner::Config)
//! with a case count.
//!
//! Differences from upstream, deliberate for this environment:
//!
//! * **No shrinking.** A failing case reports its generated inputs and
//!   the reproducible derivation `(test name, case index)` instead of a
//!   minimized counterexample.
//! * **Deterministic seeding.** Cases derive from a fixed base seed (or
//!   `PROPTEST_SEED` if set), so CI runs are reproducible by default.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod test_runner {
    //! Test-runner configuration and case-level error plumbing.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped, not
        /// failed.
        Reject(String),
        /// `prop_assert!`-style failure: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }
}

/// The base seed for a named test: `PROPTEST_SEED` if set, else a fixed
/// constant — property runs are reproducible by default.
pub fn base_seed(test_name: &str) -> u64 {
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x005e_ed0f_cafe);
    // FNV-1a over the test name separates the streams of different tests.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    env ^ h
}

/// A source of generated values: maps a random stream to a value.
///
/// Object-safe so heterogeneous strategies (e.g. [`prop_oneof!`] arms)
/// can be boxed together.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy producing `f(value)` for generated `value`s.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical full-domain strategy (the [`any`] entry point).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy of an [`Arbitrary`] type.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Uniformly picks one of several boxed strategies per generated value.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A strategy for `Vec`s whose length is drawn from `range` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        range: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.range.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, range: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, range }
    }
}

pub mod prelude {
    //! One-import access to the strategy combinators and macros.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    pub mod prop {
        //! The `prop::` module namespace of upstream proptest.
        pub use crate::collection;
    }
}

/// Picks one of several strategies, uniformly, per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Discards the current case (without failing) unless the assumption
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[doc(hidden)]
pub fn __run_case<F>(config: &test_runner::Config, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
{
    let base = base_seed(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_idx = 0u64;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(case_idx));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case #{case_idx} \
                     (base seed {base:#x}; set PROPTEST_SEED to reproduce):\n{msg}"
                );
            }
        }
        case_idx += 1;
    }
}

/// Declares property tests: each `fn` runs its body over generated
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);
        $($(#[$meta:meta])* fn $name:ident (
            $($arg:ident in $strat:expr),* $(,)?
        ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::__run_case(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    let mut __case = move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn union_draws_every_arm() {
        use super::Strategy;
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
        }

        #[test]
        fn maps_and_tuples_compose(
            pair in (0u32..5, 10u32..20).prop_map(|(a, b)| a + b),
            v in prop::collection::vec((0usize..4, 0u64..100), 0..8),
        ) {
            prop_assert!((10..25).contains(&pair));
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 100);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_surface_as_panics() {
        proptest! {
            @cfg (ProptestConfig::with_cases(4));
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
