//! rd-live: the streaming telemetry bus.
//!
//! While a run executes, the driver publishes one [`LiveSnapshot`] per
//! round into a [`LiveBus`] — a seqlock-style double-buffer that HTTP
//! scrape threads read without ever blocking the round loop. The bus is
//! strictly outside the determinism boundary: snapshots are one-way
//! facts out of the run (the round loop never reads anything back), so
//! a run with a live server attached is bit-identical to a blind one
//! (pinned by `tests/prop_engine_equivalence.rs`).
//!
//! The writer side is *lock-light*, not lock-free: a true seqlock would
//! read the snapshot's heap payloads (`Vec`, `String`) through torn
//! pointers, which is undefined behaviour in safe Rust. Instead the bus
//! keeps two `Mutex`-guarded slots and an atomic index: the writer
//! `try_lock`s the back slot — if a slow reader still holds it the
//! publish is *skipped* (latest-wins; the next round overwrites it) —
//! then flips the index. Readers briefly lock the front slot and clone.
//! The round loop therefore never waits on a reader, which is the
//! property the name "seqlock-style" is claiming.

use crate::json::{escape, fmt_f64};
use crate::monitor::AlertRule;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One round's worth of live run state, as published to the bus and
/// rendered by `/status`, `/metrics`, the stderr heartbeat, and
/// `rd-inspect watch`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LiveSnapshot {
    /// Run identity (the same fields the archive header carries).
    pub algorithm: String,
    pub topology: String,
    pub engine: String,
    pub n: u64,
    pub seed: u64,
    pub workers: u64,
    /// Progress.
    pub round: u64,
    pub max_rounds: u64,
    /// Throughput, computed by the [`LivePublisher`] over a short
    /// wall-clock window (0.0 until the first window closes).
    pub rounds_per_sec: f64,
    pub msgs_per_sec: f64,
    /// Cumulative message totals from the engine's metrics.
    pub messages: u64,
    pub retransmissions: u64,
    /// Cumulative drops by cause.
    pub dropped_coin: u64,
    pub dropped_crash: u64,
    pub dropped_partition: u64,
    pub dropped_link: u64,
    pub dropped_suppression: u64,
    /// Convergence: the live population's total known identifiers, the
    /// target it converges towards (live² under the default completion
    /// notion), and the last round the total still grew.
    pub knowledge_total: u64,
    pub knowledge_target: u64,
    pub last_progress: u64,
    /// Parallel-phase busy time per worker over the last round, and the
    /// round's wall time (empty/0 when the run is not observed).
    pub shard_busy_ns: Vec<u64>,
    pub round_wall_ns: u64,
    /// Memory: resident knowledge bytes plus buffer-pool high water.
    pub resident_bytes: u64,
    pub pool_bytes: u64,
    /// Alerts fired so far by the online monitor.
    pub alerts: u64,
    /// Set on the final publish, together with the verdict name.
    pub finished: bool,
    pub verdict: String,
}

impl LiveSnapshot {
    /// Convergence progress in percent, clamped to 100 (crashed nodes
    /// retain knowledge the live target no longer counts, so the raw
    /// ratio can overshoot).
    pub fn convergence_pct(&self) -> f64 {
        if self.knowledge_target == 0 {
            return 0.0;
        }
        (self.knowledge_total as f64 / self.knowledge_target as f64 * 100.0).min(100.0)
    }

    /// Per-round shard imbalance: max/mean of per-worker parallel busy
    /// time (1.0 = perfectly even; 0.0 when fewer than two shards
    /// reported work).
    pub fn imbalance(&self) -> f64 {
        let busy = self.shard_busy_ns.to_vec();
        if busy.len() < 2 {
            return 0.0;
        }
        let max = busy.iter().copied().max().unwrap_or(0) as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }

    /// Shard utilization over the last round: total parallel busy time
    /// over `workers × round wall time`, clamped to 1.
    pub fn utilization(&self) -> f64 {
        let lanes = self.shard_busy_ns.len() as u64;
        if lanes == 0 || self.round_wall_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.shard_busy_ns.iter().sum();
        (busy as f64 / (lanes * self.round_wall_ns) as f64).min(1.0)
    }

    /// Total drops across every cause.
    pub fn dropped(&self) -> u64 {
        self.dropped_coin
            + self.dropped_crash
            + self.dropped_partition
            + self.dropped_link
            + self.dropped_suppression
    }

    /// The `/status` JSON document. Serde-free by construction — the
    /// matching parser is [`crate::json::Json::parse`], which
    /// `rd-inspect watch` uses, so this round-trips without any
    /// external dependency.
    pub fn status_json(&self) -> String {
        let mut out = String::with_capacity(640);
        let _ = write!(
            out,
            "{{\"algorithm\":{},\"topology\":{},\"engine\":{},\"n\":{},\"seed\":{},\"workers\":{}",
            escape(&self.algorithm),
            escape(&self.topology),
            escape(&self.engine),
            self.n,
            self.seed,
            self.workers
        );
        let _ = write!(
            out,
            ",\"round\":{},\"max_rounds\":{},\"rounds_per_sec\":{},\"msgs_per_sec\":{}",
            self.round,
            self.max_rounds,
            fmt_f64(self.rounds_per_sec),
            fmt_f64(self.msgs_per_sec)
        );
        let _ = write!(
            out,
            ",\"messages\":{},\"retransmissions\":{}",
            self.messages, self.retransmissions
        );
        let _ = write!(
            out,
            ",\"dropped\":{{\"coin\":{},\"crash\":{},\"partition\":{},\"link\":{},\"suppression\":{}}}",
            self.dropped_coin,
            self.dropped_crash,
            self.dropped_partition,
            self.dropped_link,
            self.dropped_suppression
        );
        let _ = write!(
            out,
            ",\"knowledge_total\":{},\"knowledge_target\":{},\"convergence_pct\":{},\"last_progress\":{}",
            self.knowledge_total,
            self.knowledge_target,
            fmt_f64(self.convergence_pct()),
            self.last_progress
        );
        let busy = self
            .shard_busy_ns
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            out,
            ",\"shard_busy_ns\":[{busy}],\"round_wall_ns\":{},\"imbalance\":{},\"utilization\":{}",
            self.round_wall_ns,
            fmt_f64(self.imbalance()),
            fmt_f64(self.utilization())
        );
        let _ = write!(
            out,
            ",\"resident_bytes\":{},\"pool_bytes\":{},\"alerts\":{},\"finished\":{},\"verdict\":{}}}",
            self.resident_bytes,
            self.pool_bytes,
            self.alerts,
            self.finished,
            escape(&self.verdict)
        );
        out
    }

    /// The `/metrics` Prometheus text exposition for this snapshot —
    /// the same conformant format (`# HELP`/`# TYPE` per family, label
    /// values escaped) [`crate::PrometheusSink`] writes at run end,
    /// rendered live instead.
    pub fn render_metrics(&self) -> String {
        use crate::sink::{prom_labels, prom_sample, prom_type};
        let labels = prom_labels(&[
            ("algorithm", &self.algorithm),
            ("topology", &self.topology),
            ("engine", &self.engine),
            ("n", &self.n.to_string()),
            ("seed", &self.seed.to_string()),
        ]);
        let mut out = String::with_capacity(2048);
        let gauges: &[(&str, &str, f64)] = &[
            (
                "rd_live_round",
                "Current round of the run.",
                self.round as f64,
            ),
            (
                "rd_live_rounds_per_sec",
                "Round throughput over the publisher's rate window.",
                self.rounds_per_sec,
            ),
            (
                "rd_live_msgs_per_sec",
                "Message throughput over the publisher's rate window.",
                self.msgs_per_sec,
            ),
            (
                "rd_live_convergence_pct",
                "Live-population knowledge as a percentage of its target.",
                self.convergence_pct(),
            ),
            (
                "rd_live_knowledge_total",
                "Total identifiers known across all nodes.",
                self.knowledge_total as f64,
            ),
            (
                "rd_live_last_progress_round",
                "Last round in which total knowledge still grew.",
                self.last_progress as f64,
            ),
            (
                "rd_live_shard_imbalance",
                "Max/mean per-worker parallel busy time over the last round.",
                self.imbalance(),
            ),
            (
                "rd_live_shard_utilization",
                "Parallel busy time over workers x wall time, last round.",
                self.utilization(),
            ),
            (
                "rd_live_resident_bytes",
                "Resident knowledge bytes across all nodes.",
                self.resident_bytes as f64,
            ),
            (
                "rd_live_pool_bytes",
                "Buffer-pool high-water bytes.",
                self.pool_bytes as f64,
            ),
            (
                "rd_live_finished",
                "1 once the run has finished, 0 while it executes.",
                if self.finished { 1.0 } else { 0.0 },
            ),
        ];
        for &(name, help, value) in gauges {
            prom_type(&mut out, name, help, "gauge");
            prom_sample(&mut out, name, &labels, value);
        }
        let counters: &[(&str, &str, u64)] = &[
            (
                "rd_live_messages_total",
                "Messages sent since the run started.",
                self.messages,
            ),
            (
                "rd_live_retransmissions_total",
                "Retransmission attempts by the reliable-delivery layer.",
                self.retransmissions,
            ),
            (
                "rd_live_alerts_total",
                "Alerts fired by the online monitor.",
                self.alerts,
            ),
        ];
        for &(name, help, value) in counters {
            prom_type(&mut out, name, help, "counter");
            prom_sample(&mut out, name, &labels, value as f64);
        }
        // Drops keyed by cause carry an extra label on the same family.
        prom_type(
            &mut out,
            "rd_live_dropped_total",
            "Messages lost to fault injection, by cause.",
            "counter",
        );
        for (cause, value) in [
            ("coin", self.dropped_coin),
            ("crash", self.dropped_crash),
            ("partition", self.dropped_partition),
            ("link", self.dropped_link),
            ("suppression", self.dropped_suppression),
        ] {
            let mut with_cause = labels.clone();
            with_cause.push_str(",cause=\"");
            with_cause.push_str(cause);
            with_cause.push('"');
            prom_sample(&mut out, "rd_live_dropped_total", &with_cause, value as f64);
        }
        prom_type(
            &mut out,
            "rd_live_shard_busy_ns",
            "Parallel-phase busy nanoseconds per worker, last round.",
            "gauge",
        );
        for (shard, busy) in self.shard_busy_ns.iter().enumerate() {
            let mut with_shard = labels.clone();
            let _ = write!(with_shard, ",shard=\"{shard}\"");
            prom_sample(&mut out, "rd_live_shard_busy_ns", &with_shard, *busy as f64);
        }
        out
    }
}

/// How a run's live telemetry is attached: where the loopback server
/// binds, which alert rules the online monitor evaluates, and an
/// optional shared log the caller can drain after the run (the
/// `scenario_runner --alerts-fatal` side-channel — alerts never touch
/// the deterministic `RunReport`).
#[derive(Clone, Debug, Default)]
pub struct LiveSpec {
    /// Bind address for the scrape endpoint; `None` means
    /// `127.0.0.1:0` (loopback, ephemeral port, printed to stderr).
    pub addr: Option<String>,
    /// Alert rules the monitor evaluates against each snapshot
    /// (empty disables the monitor).
    pub rules: Vec<AlertRule>,
    /// Shared alert log, cloned by the caller before the run.
    pub log: Option<crate::monitor::AlertLog>,
}

impl LiveSpec {
    /// A live spec with the default bind address and the default,
    /// deliberately generous alert rules.
    pub fn new() -> Self {
        LiveSpec {
            addr: None,
            rules: AlertRule::defaults(),
            log: None,
        }
    }

    /// Overrides the bind address (e.g. `127.0.0.1:19117`).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = Some(addr.into());
        self
    }

    /// Replaces the alert rules.
    pub fn with_rules(mut self, rules: Vec<AlertRule>) -> Self {
        self.rules = rules;
        self
    }

    /// Attaches a shared alert log.
    pub fn with_log(mut self, log: crate::monitor::AlertLog) -> Self {
        self.log = Some(log);
        self
    }
}

/// The double-buffered snapshot bus. See the module docs for why this
/// is two mutexed slots rather than an unsafe seqlock.
#[derive(Debug, Default)]
pub struct LiveBus {
    slots: [Mutex<LiveSnapshot>; 2],
    /// Index of the slot readers should take.
    current: AtomicUsize,
    /// Publish count; 0 means nothing has been published yet.
    version: AtomicU64,
}

impl LiveBus {
    /// An empty bus (readers see `None` until the first publish).
    pub fn new() -> Self {
        LiveBus::default()
    }

    /// Publishes a snapshot without ever blocking: writes the back
    /// slot and flips the index. Returns `false` (snapshot dropped,
    /// latest-wins) if a reader still holds the back slot.
    pub fn publish(&self, snap: &LiveSnapshot) -> bool {
        let back = 1 - self.current.load(Ordering::Acquire);
        let Ok(mut guard) = self.slots[back].try_lock() else {
            return false;
        };
        guard.clone_from(snap);
        drop(guard);
        self.current.store(back, Ordering::Release);
        self.version.fetch_add(1, Ordering::Release);
        true
    }

    /// Publishes, waiting for the back slot if a reader holds it — for
    /// the final snapshot of a run, which must not be dropped.
    pub fn publish_blocking(&self, snap: &LiveSnapshot) {
        let back = 1 - self.current.load(Ordering::Acquire);
        let mut guard = self.slots[back]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.clone_from(snap);
        drop(guard);
        self.current.store(back, Ordering::Release);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The latest published snapshot, or `None` before the first
    /// publish. Readers hold the front-slot lock only long enough to
    /// clone.
    pub fn read(&self) -> Option<LiveSnapshot> {
        if self.version.load(Ordering::Acquire) == 0 {
            return None;
        }
        let front = self.current.load(Ordering::Acquire);
        let guard = self.slots[front]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(guard.clone())
    }

    /// Number of snapshots published so far.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// Minimum wall-clock window over which throughput rates are computed
/// — short enough to track regime changes, long enough that a
/// microsecond round does not turn the rate into noise.
const RATE_WINDOW: Duration = Duration::from_millis(200);

/// Computes throughput rates and pushes snapshots to a [`LiveBus`].
///
/// This is the *single* owner of wall-clock throughput accounting: the
/// stderr [`Heartbeat`](crate::Heartbeat) renders the same snapshot
/// rather than recomputing its own rounds/s (it used to).
pub struct LivePublisher {
    bus: Option<Arc<LiveBus>>,
    window_start: Instant,
    window_round: u64,
    window_messages: u64,
    rounds_per_sec: f64,
    msgs_per_sec: f64,
}

impl LivePublisher {
    /// A standalone publisher (rate computation only, no bus) — what a
    /// heartbeat-only run uses.
    pub fn new() -> Self {
        LivePublisher {
            bus: None,
            window_start: Instant::now(),
            window_round: 0,
            window_messages: 0,
            rounds_per_sec: 0.0,
            msgs_per_sec: 0.0,
        }
    }

    /// A publisher feeding `bus`.
    pub fn with_bus(bus: Arc<LiveBus>) -> Self {
        let mut p = LivePublisher::new();
        p.bus = Some(bus);
        p
    }

    /// Stamps throughput rates into `snap` and publishes it (non-
    /// blocking; a contended publish is skipped, latest-wins). Called
    /// once per round.
    pub fn publish(&mut self, snap: &mut LiveSnapshot) {
        let elapsed = self.window_start.elapsed();
        if elapsed >= RATE_WINDOW {
            let secs = elapsed.as_secs_f64().max(1e-9);
            self.rounds_per_sec = snap.round.saturating_sub(self.window_round) as f64 / secs;
            self.msgs_per_sec = snap.messages.saturating_sub(self.window_messages) as f64 / secs;
            self.window_start = Instant::now();
            self.window_round = snap.round;
            self.window_messages = snap.messages;
        }
        snap.rounds_per_sec = self.rounds_per_sec;
        snap.msgs_per_sec = self.msgs_per_sec;
        if let Some(bus) = &self.bus {
            bus.publish(snap);
        }
    }

    /// Final publish at run end: forces a rate computation over
    /// whatever window has elapsed and blocks until the snapshot lands
    /// (the terminal state must not be dropped).
    pub fn publish_final(&mut self, snap: &mut LiveSnapshot) {
        let secs = self.window_start.elapsed().as_secs_f64();
        if secs > 1e-3 {
            self.rounds_per_sec = snap.round.saturating_sub(self.window_round) as f64 / secs;
            self.msgs_per_sec = snap.messages.saturating_sub(self.window_messages) as f64 / secs;
        }
        snap.rounds_per_sec = self.rounds_per_sec;
        snap.msgs_per_sec = self.msgs_per_sec;
        if let Some(bus) = &self.bus {
            bus.publish_blocking(snap);
        }
    }
}

impl Default for LivePublisher {
    fn default() -> Self {
        LivePublisher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn snap(round: u64) -> LiveSnapshot {
        LiveSnapshot {
            algorithm: "hm".into(),
            topology: "k-out-3".into(),
            engine: "sharded:4".into(),
            n: 1024,
            seed: 42,
            workers: 4,
            round,
            max_rounds: 1000,
            messages: round * 100,
            knowledge_total: round * 10,
            knowledge_target: 1 << 20,
            shard_busy_ns: vec![100, 200, 300, 400],
            round_wall_ns: 500,
            resident_bytes: 1 << 20,
            ..LiveSnapshot::default()
        }
    }

    #[test]
    fn bus_read_sees_latest_publish() {
        let bus = LiveBus::new();
        assert_eq!(bus.read(), None, "empty bus reads None");
        assert!(bus.publish(&snap(1)));
        assert!(bus.publish(&snap(2)));
        let got = bus.read().unwrap();
        assert_eq!(got.round, 2);
        assert_eq!(bus.version(), 2);
    }

    #[test]
    fn publish_skips_when_back_slot_is_held() {
        let bus = LiveBus::new();
        assert!(bus.publish(&snap(1)));
        // A reader camping on the *back* slot blocks exactly one
        // publish; the front slot (current) stays readable.
        let back = 1 - bus.current.load(Ordering::Acquire);
        let _guard = bus.slots[back].lock().unwrap();
        assert!(!bus.publish(&snap(2)), "contended publish must skip");
        assert_eq!(bus.version(), 1, "skipped publish bumps no version");
    }

    #[test]
    fn derived_ratios() {
        let s = snap(5);
        assert!((s.imbalance() - 400.0 / 250.0).abs() < 1e-9);
        assert!((s.utilization() - 0.5).abs() < 1e-9);
        assert!(s.convergence_pct() > 0.0 && s.convergence_pct() < 100.0);
        let mut done = snap(5);
        done.knowledge_total = done.knowledge_target * 2;
        assert_eq!(done.convergence_pct(), 100.0, "overshoot clamps");
    }

    #[test]
    fn status_json_round_trips_through_the_serde_free_parser() {
        let s = snap(7);
        let doc = Json::parse(&s.status_json()).expect("valid JSON");
        assert_eq!(doc.get("round").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("algorithm").and_then(Json::as_str), Some("hm"));
        assert_eq!(
            doc.get("dropped")
                .and_then(|d| d.get("coin"))
                .and_then(Json::as_u64),
            Some(0)
        );
        let busy = doc.get("shard_busy_ns").and_then(Json::as_arr).unwrap();
        assert_eq!(busy.len(), 4);
        assert_eq!(busy[3].as_u64(), Some(400));
        assert_eq!(doc.get("finished").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn publisher_computes_rates_over_a_window() {
        let bus = Arc::new(LiveBus::new());
        let mut publisher = LivePublisher::with_bus(bus.clone());
        let mut s = snap(1);
        publisher.publish(&mut s);
        assert_eq!(s.rounds_per_sec, 0.0, "no window elapsed yet");
        // Force the window shut.
        publisher.window_start = Instant::now() - Duration::from_secs(1);
        publisher.window_round = 0;
        publisher.window_messages = 0;
        let mut s = snap(10);
        publisher.publish(&mut s);
        assert!(s.rounds_per_sec > 0.0, "window closed, rate computed");
        assert!(s.msgs_per_sec > s.rounds_per_sec);
        assert_eq!(bus.read().unwrap().round, 10);
    }

    #[test]
    fn final_publish_blocks_and_lands() {
        let bus = Arc::new(LiveBus::new());
        let mut publisher = LivePublisher::with_bus(bus.clone());
        let mut s = snap(3);
        s.finished = true;
        s.verdict = "complete".into();
        publisher.publish_final(&mut s);
        let got = bus.read().unwrap();
        assert!(got.finished);
        assert_eq!(got.verdict, "complete");
    }

    #[test]
    fn metrics_rendering_is_conformant() {
        let text = snap(3).render_metrics();
        crate::sink::prom_check_conformance(&text).expect("conformant exposition");
        assert!(text.contains("# TYPE rd_live_round gauge"));
        assert!(text.contains("# HELP rd_live_dropped_total"));
        assert!(text.contains("cause=\"partition\""));
        assert!(text.contains("shard=\"3\""));
    }
}
