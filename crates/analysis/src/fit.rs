//! Least-squares fitting of round counts against candidate scaling laws.
//!
//! The evaluation's central quantitative claim is about *shape*: the
//! reconstructed algorithm's rounds should grow like `log log n` while
//! Name-Dropper grows like `log² n` and pointer doubling like `log n`.
//! This module fits `y = a + b·f(n)` for each candidate `f` and ranks
//! models by R², turning the scaling claim into a measured verdict
//! (figure F1).

use std::fmt;

/// A candidate scaling law `f(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingModel {
    /// `f(n) = 1` (constant rounds).
    Constant,
    /// `f(n) = log₂ log₂ n`.
    LogLog,
    /// `f(n) = log₂ n`.
    Log,
    /// `f(n) = (log₂ n)²`.
    LogSquared,
    /// `f(n) = n`.
    Linear,
}

impl ScalingModel {
    /// All candidate models, simplest first.
    pub fn all() -> [ScalingModel; 5] {
        [
            ScalingModel::Constant,
            ScalingModel::LogLog,
            ScalingModel::Log,
            ScalingModel::LogSquared,
            ScalingModel::Linear,
        ]
    }

    /// Evaluates `f(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the logarithmic models need `log log n > 0`;
    /// sweeps start at `n = 4` anyway).
    pub fn basis(self, n: f64) -> f64 {
        assert!(n >= 2.0, "scaling models are defined for n >= 2");
        match self {
            ScalingModel::Constant => 1.0,
            ScalingModel::LogLog => n.log2().log2(),
            ScalingModel::Log => n.log2(),
            ScalingModel::LogSquared => n.log2() * n.log2(),
            ScalingModel::Linear => n,
        }
    }
}

impl fmt::Display for ScalingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalingModel::Constant => "O(1)",
            ScalingModel::LogLog => "O(log log n)",
            ScalingModel::Log => "O(log n)",
            ScalingModel::LogSquared => "O(log^2 n)",
            ScalingModel::Linear => "O(n)",
        };
        f.write_str(s)
    }
}

/// The result of fitting `y = a + b·f(n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The scaling law fitted.
    pub model: ScalingModel,
    /// Intercept.
    pub a: f64,
    /// Slope.
    pub b: f64,
    /// Coefficient of determination in `[−∞, 1]`; 1 is a perfect fit.
    pub r2: f64,
}

impl FitResult {
    /// Predicted `y` at `n`.
    pub fn predict(&self, n: f64) -> f64 {
        self.a + self.b * self.model.basis(n)
    }
}

impl fmt::Display for FitResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} : y = {:.2} + {:.3}·f(n), R² = {:.4}",
            self.model, self.a, self.b, self.r2
        )
    }
}

/// Fits `y = a + b·f(n)` by ordinary least squares.
///
/// # Panics
///
/// Panics if the inputs differ in length or contain fewer than 2 points.
pub fn fit_model(model: ScalingModel, ns: &[f64], ys: &[f64]) -> FitResult {
    assert_eq!(ns.len(), ys.len(), "mismatched fit inputs");
    assert!(ns.len() >= 2, "need at least two points to fit");
    let xs: Vec<f64> = ns.iter().map(|&n| model.basis(n)).collect();
    let count = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / count;
    let mean_y = ys.iter().sum::<f64>() / count;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let (a, b) = if sxx.abs() < 1e-12 {
        // Degenerate basis (constant model): intercept only.
        (mean_y, 0.0)
    } else {
        let b = sxy / sxx;
        (mean_y - b * mean_x, b)
    };
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (a + b * x)).powi(2))
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let r2 = if ss_tot.abs() < 1e-12 {
        // Flat data: perfectly explained by any intercept.
        if ss_res.abs() < 1e-9 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    FitResult { model, a, b, r2 }
}

/// Fits every candidate model and returns them best-R² first. Ties
/// (within 1e-9) are broken in favour of the simpler model, so flat data
/// reports `O(1)` rather than an arbitrary zero-slope law.
pub fn best_fit(ns: &[f64], ys: &[f64]) -> Vec<FitResult> {
    let mut fits: Vec<FitResult> = ScalingModel::all()
        .into_iter()
        .map(|m| fit_model(m, ns, ys))
        .collect();
    // `all()` is ordered simplest-first and the sort is stable.
    fits.sort_by(|x, y| {
        y.r2.partial_cmp(&x.r2)
            .expect("R² is never NaN")
            .then(std::cmp::Ordering::Equal)
    });
    fits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> Vec<f64> {
        (4..=16).map(|k| (1u64 << k) as f64).collect()
    }

    #[test]
    fn recovers_exact_log_law() {
        let n = ns();
        let y: Vec<f64> = n.iter().map(|&x| 3.0 + 2.0 * x.log2()).collect();
        let fit = fit_model(ScalingModel::Log, &n, &y);
        assert!((fit.a - 3.0).abs() < 1e-9);
        assert!((fit.b - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_exact_loglog_law() {
        let n = ns();
        let y: Vec<f64> = n.iter().map(|&x| 1.0 + 5.0 * x.log2().log2()).collect();
        let best = &best_fit(&n, &y)[0];
        assert_eq!(best.model, ScalingModel::LogLog);
        assert!((best.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distinguishes_log_squared_from_log() {
        let n = ns();
        let y: Vec<f64> = n.iter().map(|&x| x.log2() * x.log2()).collect();
        let best = &best_fit(&n, &y)[0];
        assert_eq!(best.model, ScalingModel::LogSquared);
        let log_fit = fit_model(ScalingModel::Log, &n, &y);
        assert!(log_fit.r2 < best.r2);
    }

    #[test]
    fn flat_data_prefers_constant() {
        let n = ns();
        let y = vec![33.0; n.len()];
        let best = &best_fit(&n, &y)[0];
        assert_eq!(best.model, ScalingModel::Constant);
        assert_eq!(best.a, 33.0);
        assert_eq!(best.r2, 1.0);
    }

    #[test]
    fn noisy_log_still_wins() {
        let n = ns();
        // ±1 alternating noise on a log law.
        let y: Vec<f64> = n
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x.log2() + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let best = &best_fit(&n, &y)[0];
        assert_eq!(best.model, ScalingModel::Log);
        assert!(best.r2 > 0.95);
    }

    #[test]
    fn predict_matches_closed_form() {
        let fit = FitResult {
            model: ScalingModel::Log,
            a: 1.0,
            b: 2.0,
            r2: 1.0,
        };
        assert!((fit.predict(1024.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let n = ns();
        let y: Vec<f64> = n.iter().map(|&x| x.log2()).collect();
        let s = fit_model(ScalingModel::Log, &n, &y).to_string();
        assert!(s.contains("O(log n)"));
        assert!(s.contains("R²"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        fit_model(ScalingModel::Log, &[4.0], &[1.0]);
    }
}
