//! Configuration knobs of the cluster-merge algorithm (the ablation
//! surface of experiment T4).

/// How a leader picks its merge target among the larger-id leaders it
/// discovered this super-round.
///
/// All rules only ever merge *toward larger identifiers*, which keeps
/// the merge graph acyclic by construction; they differ in which larger
/// leader wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeRule {
    /// Join the largest discovered leader (default). Concentrates merges
    /// on locally maximal clusters, which is what produces the
    /// doubly-exponential cluster collapse.
    #[default]
    MaxId,
    /// Join a uniformly random discovered larger leader.
    RandomAbove,
    /// Join the *smallest* discovered larger leader (adversarial
    /// de-concentration; expected to slow the collapse).
    MinAbove,
}

impl MergeRule {
    /// Display name for ablation tables.
    pub fn name(self) -> &'static str {
        match self {
            MergeRule::MaxId => "max-id",
            MergeRule::RandomAbove => "random-above",
            MergeRule::MinAbove => "min-above",
        }
    }
}

/// Configuration of [`HmDiscovery`](super::HmDiscovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmConfig {
    /// Merge-target selection rule.
    pub merge_rule: MergeRule,
    /// When `true` (default), a cluster of size `s` probes up to `s`
    /// distinct frontier targets per super-round — the engine of the
    /// sub-logarithmic collapse. When `false`, only the leader probes
    /// (one target per super-round), degrading the algorithm to
    /// Boruvka-style pairwise merging.
    pub parallel_probes: bool,
    /// When `true` (default), a leader that only discovered *smaller*
    /// leaders invites them to join it. Disabling this (ablation) can
    /// strand clusters whose only cross edges were discovered in the
    /// non-mergeable direction.
    pub invites: bool,
}

impl Default for HmConfig {
    fn default() -> Self {
        HmConfig {
            merge_rule: MergeRule::MaxId,
            parallel_probes: true,
            invites: true,
        }
    }
}

impl HmConfig {
    /// Display name for tables, encoding any non-default knobs.
    pub fn name(&self) -> String {
        let mut name = String::from("hm");
        if self.merge_rule != MergeRule::MaxId {
            name.push('-');
            name.push_str(self.merge_rule.name());
        }
        if !self.parallel_probes {
            name.push_str("-serial");
        }
        if !self.invites {
            name.push_str("-noinvite");
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_configuration() {
        let cfg = HmConfig::default();
        assert_eq!(cfg.merge_rule, MergeRule::MaxId);
        assert!(cfg.parallel_probes);
        assert!(cfg.invites);
        assert_eq!(cfg.name(), "hm");
    }

    #[test]
    fn names_encode_ablations() {
        let cfg = HmConfig {
            merge_rule: MergeRule::RandomAbove,
            parallel_probes: false,
            invites: false,
        };
        assert_eq!(cfg.name(), "hm-random-above-serial-noinvite");
        assert_eq!(MergeRule::MinAbove.name(), "min-above");
    }
}
