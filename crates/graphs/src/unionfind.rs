//! Disjoint-set forest with union by rank and path compression.

/// A classic union-find (disjoint-set) structure over `0..n`.
///
/// Used for weak-connectivity checks, spanning-tree augmentation in the
/// topology generators, and as the reference implementation the cluster
/// bookkeeping of the discovery algorithms is verified against.
///
/// # Example
///
/// ```
/// use rd_graphs::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress the path walked.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they
    /// were previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = (ra as u32, rb as u32);
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets currently tracked.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.same(0, 1));
        assert!(!uf.same(1, 2));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already joined
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 2));
    }

    #[test]
    fn transitive_chain_collapses_to_one_set() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same(0, 99));
    }

    #[test]
    fn find_is_idempotent_after_compression() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..10 {
            assert_eq!(uf.find(i), r);
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
