//! Connectivity analysis: weak components, reachability, and Tarjan's
//! strongly connected components.

use crate::digraph::DiGraph;
use crate::unionfind::UnionFind;

/// Returns `true` if the graph is weakly connected (its undirected
/// closure is connected). The empty graph and the single-node graph are
/// weakly connected by convention.
///
/// Resource discovery is only solvable on weakly connected knowledge
/// graphs, so every topology generator is validated with this predicate.
pub fn is_weakly_connected(g: &DiGraph) -> bool {
    weak_component_count(g) <= 1
}

/// Number of weakly connected components.
pub fn weak_component_count(g: &DiGraph) -> usize {
    let n = g.node_count();
    if n == 0 {
        return 0;
    }
    let mut uf = UnionFind::new(n);
    for (u, v) in g.iter_edges() {
        uf.union(u, v);
    }
    uf.set_count()
}

/// Labels each node with the id of its weakly connected component;
/// component ids are the minimum node index in the component.
pub fn weak_components(g: &DiGraph) -> Vec<usize> {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.iter_edges() {
        uf.union(u, v);
    }
    // Canonicalize representatives to the minimum index in each set.
    let mut min_of_root = vec![usize::MAX; n];
    for v in 0..n {
        let r = uf.find(v);
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..n).map(|v| min_of_root[uf.find(v)]).collect()
}

/// Set of nodes reachable from `src` by directed edges (including `src`),
/// as a boolean membership vector.
pub fn reachable_from(g: &DiGraph, src: usize) -> Vec<bool> {
    let n = g.node_count();
    assert!(src < n, "source {src} out of range for n={n}");
    let mut seen = vec![false; n];
    let mut stack = vec![src];
    seen[src] = true;
    while let Some(u) = stack.pop() {
        for &v in g.out(u) {
            let v = v as usize;
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Tarjan's strongly connected components (iterative, so deep graphs do
/// not overflow the call stack). Returns one sorted `Vec` of node indices
/// per component, in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frame: (node, position in its adjacency list).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start as u32, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let v = v as usize;
            if *pos < g.out_degree(v) {
                let w = g.out(v)[*pos] as usize;
                *pos += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w as usize);
                        if w as usize == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// `true` if the graph is strongly connected (one SCC spanning all nodes).
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let comps = strongly_connected_components(g);
    comps.len() == 1 && comps[0].len() == n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> DiGraph {
        DiGraph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    #[test]
    fn empty_and_singleton_are_weakly_connected() {
        assert!(is_weakly_connected(&DiGraph::new(0)));
        assert!(is_weakly_connected(&DiGraph::new(1)));
    }

    #[test]
    fn two_isolated_nodes_are_disconnected() {
        let g = DiGraph::new(2);
        assert!(!is_weakly_connected(&g));
        assert_eq!(weak_component_count(&g), 2);
    }

    #[test]
    fn directed_path_is_weakly_but_not_strongly_connected() {
        let g = path(10);
        assert!(is_weakly_connected(&g));
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn cycle_is_strongly_connected() {
        let mut g = path(5);
        g.add_edge(4, 0);
        assert!(is_strongly_connected(&g));
        assert_eq!(strongly_connected_components(&g).len(), 1);
    }

    #[test]
    fn weak_components_label_by_min_index() {
        let g = DiGraph::from_edges(5, [(0, 1), (3, 4)]);
        assert_eq!(weak_components(&g), vec![0, 0, 2, 3, 3]);
    }

    #[test]
    fn reachability_follows_direction() {
        let g = path(4);
        assert_eq!(reachable_from(&g, 0), vec![true; 4]);
        assert_eq!(reachable_from(&g, 2), vec![false, false, true, true]);
    }

    #[test]
    fn tarjan_partitions_all_nodes() {
        // Two 3-cycles joined by a one-way bridge, plus a lone sink.
        let g = DiGraph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        let mut comps = strongly_connected_components(&g);
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn tarjan_handles_deep_path_without_overflow() {
        let g = path(200_000);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 200_000);
    }
}
