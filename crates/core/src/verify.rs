//! Harness-side soundness checks.
//!
//! A discovery run is only meaningful if the protocol (a) never invents
//! identifiers, (b) never forgets what it knew, and (c) reaches the
//! completion state it claims. These checks are run by the omniscient
//! harness over the node population; protocols cannot see them.

use crate::algorithms::KnowledgeView;
use crate::problem::InitialKnowledge;
use rd_graphs::{connectivity, DiGraph};
use rd_sim::NodeId;

/// Checks that every identifier known by any node actually names one of
/// the `n` machines of the instance (no fabricated identifiers).
pub fn no_fabricated_ids<N: KnowledgeView>(nodes: &[N]) -> bool {
    let n = nodes.len();
    nodes
        .iter()
        .all(|node| node.known_ids().iter().all(|id| id.index() < n))
}

/// Checks that every node still knows its entire initial knowledge
/// (knowledge is monotone from the start state).
pub fn retains_initial_knowledge<N: KnowledgeView>(
    nodes: &[N],
    initial: &InitialKnowledge,
) -> bool {
    nodes.len() == initial.len()
        && nodes
            .iter()
            .zip(initial.rows())
            .all(|(node, init)| init.iter().all(|&id| node.knows(id)))
}

/// Checks that every node knows itself (identity is never lost).
pub fn knows_self<N: KnowledgeView>(nodes: &[N]) -> bool {
    nodes
        .iter()
        .enumerate()
        .all(|(i, node)| node.knows(NodeId::new(i as u32)))
}

/// Fault-aware convergence check: every live node knows every live node
/// in its weakly-connected component of the *live* initial-knowledge
/// graph (the initial graph restricted to live endpoints).
///
/// This is the strongest completeness claim a run under permanent
/// crashes can make: knowledge cannot cross a cut consisting entirely
/// of dead machines, so each surviving component can at best converge
/// on itself. A live node may additionally know dead identifiers, or
/// identifiers from other components learned through machines that
/// died later — knowledge is monotone, so such over-approximation is
/// legitimate; pair this check with [`no_fabricated_ids`] to bound the
/// other side.
///
/// # Panics
///
/// Panics if `initial` or `live` disagree with `nodes` on length.
pub fn live_component_complete<N: KnowledgeView>(
    nodes: &[N],
    initial: &InitialKnowledge,
    live: &[bool],
) -> bool {
    assert_eq!(
        nodes.len(),
        initial.len(),
        "initial knowledge size mismatch"
    );
    assert_eq!(nodes.len(), live.len(), "live mask size mismatch");
    let n = nodes.len();
    let mut edges = Vec::new();
    for (u, init) in initial.rows().enumerate() {
        if !live[u] {
            continue;
        }
        for &v in init {
            let v = v.index();
            if v != u && live[v] {
                edges.push((u, v));
            }
        }
    }
    let labels = connectivity::weak_components(&DiGraph::from_edges(n, edges));
    let mut members: std::collections::HashMap<usize, Vec<NodeId>> =
        std::collections::HashMap::new();
    for (i, &label) in labels.iter().enumerate() {
        if live[i] {
            members
                .entry(label)
                .or_default()
                .push(NodeId::new(i as u32));
        }
    }
    (0..n).filter(|&i| live[i]).all(|i| {
        let component = &members[&labels[i]];
        nodes[i].knows_count() >= component.len() && component.iter().all(|&id| nodes[i].knows(id))
    })
}

/// Round-over-round monotonicity checker: feed it the node population
/// after every round; it reports the first shrink it sees.
///
/// # Example
///
/// ```
/// use rd_core::verify::MonotonicityChecker;
/// # use rd_core::algorithms::KnowledgeView;
/// # use rd_core::KnowledgeSet;
/// # use rd_sim::NodeId;
/// # struct Fake(KnowledgeSet);
/// # impl KnowledgeView for Fake {
/// #     fn knows(&self, id: NodeId) -> bool { self.0.contains(id) }
/// #     fn knows_count(&self) -> usize { self.0.len() }
/// #     fn known_ids(&self) -> Vec<NodeId> { self.0.to_vec() }
/// # }
/// let mut checker = MonotonicityChecker::new();
/// let mut nodes = vec![Fake(KnowledgeSet::new(NodeId::new(0)))];
/// assert!(checker.observe(&nodes).is_ok());
/// nodes[0].0.insert(NodeId::new(1));
/// assert!(checker.observe(&nodes).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MonotonicityChecker {
    previous: Vec<usize>,
}

impl MonotonicityChecker {
    /// Creates a checker with no history.
    pub fn new() -> Self {
        MonotonicityChecker::default()
    }

    /// Records the current knowledge sizes; errors if any node's
    /// knowledge shrank since the previous observation.
    ///
    /// # Errors
    ///
    /// Returns the offending node index and the before/after counts.
    pub fn observe<N: KnowledgeView>(&mut self, nodes: &[N]) -> Result<(), MonotonicityViolation> {
        let now: Vec<usize> = nodes.iter().map(|n| n.knows_count()).collect();
        if self.previous.len() == now.len() {
            for (i, (&before, &after)) in self.previous.iter().zip(&now).enumerate() {
                if after < before {
                    return Err(MonotonicityViolation {
                        node: i,
                        before,
                        after,
                    });
                }
            }
        }
        self.previous = now;
        Ok(())
    }
}

/// A node's knowledge shrank between two observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonotonicityViolation {
    /// Offending node index.
    pub node: usize,
    /// Knowledge size at the previous observation.
    pub before: usize,
    /// Knowledge size now.
    pub after: usize,
}

impl std::fmt::Display for MonotonicityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} knowledge shrank from {} to {}",
            self.node, self.before, self.after
        )
    }
}

impl std::error::Error for MonotonicityViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeSet;

    struct Fake(KnowledgeSet);
    impl KnowledgeView for Fake {
        fn knows(&self, id: NodeId) -> bool {
            self.0.contains(id)
        }
        fn knows_count(&self) -> usize {
            self.0.len()
        }
        fn known_ids(&self) -> Vec<NodeId> {
            self.0.to_vec()
        }
    }

    fn fake(ids: &[u32]) -> Fake {
        Fake(ids.iter().map(|&i| NodeId::new(i)).collect())
    }

    #[test]
    fn fabrication_detected() {
        let ok = [fake(&[0, 1]), fake(&[1])];
        assert!(no_fabricated_ids(&ok));
        let bad = [fake(&[0, 7]), fake(&[1])];
        assert!(!no_fabricated_ids(&bad));
    }

    #[test]
    fn initial_retention_detected() {
        let initial = InitialKnowledge::from_rows([
            vec![NodeId::new(0), NodeId::new(1)],
            vec![NodeId::new(1)],
        ]);
        assert!(retains_initial_knowledge(
            &[fake(&[0, 1]), fake(&[1])],
            &initial
        ));
        assert!(!retains_initial_knowledge(
            &[fake(&[0]), fake(&[1])],
            &initial
        ));
    }

    #[test]
    fn self_knowledge_detected() {
        assert!(knows_self(&[fake(&[0]), fake(&[1, 0])]));
        assert!(!knows_self(&[fake(&[1]), fake(&[1])]));
    }

    #[test]
    fn live_component_complete_splits_on_dead_cut() {
        // Path 0 - 1 - 2 - 3 where node 2 is dead: live components are
        // {0, 1} and {3}.
        let initial = InitialKnowledge::from_rows([
            vec![NodeId::new(0), NodeId::new(1)],
            vec![NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(2), NodeId::new(3)],
            vec![NodeId::new(3)],
        ]);
        let live = vec![true, true, false, true];
        // 0 and 1 know each other, 3 knows itself: complete.
        let ok = [fake(&[0, 1]), fake(&[0, 1]), fake(&[2]), fake(&[3])];
        assert!(live_component_complete(&ok, &initial, &live));
        // Extra knowledge of the dead node or the far component is fine.
        let over = [fake(&[0, 1, 2, 3]), fake(&[0, 1]), fake(&[2]), fake(&[3])];
        assert!(live_component_complete(&over, &initial, &live));
        // Node 1 missing its live neighbour 0: incomplete.
        let bad = [fake(&[0, 1]), fake(&[1, 2]), fake(&[2]), fake(&[3])];
        assert!(!live_component_complete(&bad, &initial, &live));
        // Dead nodes are never required to know anything.
        let dead_ignorant = [fake(&[0, 1]), fake(&[0, 1]), fake(&[]), fake(&[3])];
        assert!(live_component_complete(&dead_ignorant, &initial, &live));
    }

    #[test]
    fn live_component_complete_all_live_is_full_convergence() {
        let initial = InitialKnowledge::from_rows([
            vec![NodeId::new(0), NodeId::new(1)],
            vec![NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(2), NodeId::new(0)],
        ]);
        let live = vec![true, true, true];
        let full = [fake(&[0, 1, 2]), fake(&[0, 1, 2]), fake(&[0, 1, 2])];
        assert!(live_component_complete(&full, &initial, &live));
        let partial = [fake(&[0, 1, 2]), fake(&[0, 1, 2]), fake(&[2, 0])];
        assert!(!live_component_complete(&partial, &initial, &live));
    }

    #[test]
    fn monotonicity_checker_flags_shrink() {
        let mut checker = MonotonicityChecker::new();
        checker.observe(&[fake(&[0, 1, 2])]).unwrap();
        checker.observe(&[fake(&[0, 1, 2, 3])]).unwrap();
        let err = checker.observe(&[fake(&[0])]).unwrap_err();
        assert_eq!(err.node, 0);
        assert_eq!((err.before, err.after), (4, 1));
        assert!(err.to_string().contains("shrank"));
    }
}
