//! Wire messages of the cluster-merge protocol.

use rd_sim::{MessageCost, NodeId, PointerList};

/// Protocol messages of the reconstructed Haeupler–Malkhi algorithm.
///
/// Leader-addressed messages ([`Report`](HmMsg::Report),
/// [`ProbeFwd`](HmMsg::ProbeFwd), [`ProbeReply`](HmMsg::ProbeReply),
/// [`Join`](HmMsg::Join), [`Invite`](HmMsg::Invite)) carry their semantic
/// originator in the payload, because any non-leader receiving one simply
/// forwards it along its own leader pointer — leader pointers strictly
/// increase, so forwarding chains always terminate at a live leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HmMsg {
    /// Member → leader: identifiers freshly learned by the member.
    /// Retransmitted with a fresh `epoch` every report phase until the
    /// matching [`ReportAck`](HmMsg::ReportAck) arrives, so dropped
    /// reports never lose a discovery lead.
    Report {
        /// The member that originated the report (forwarding along
        /// leader pointers rewrites the envelope source, so the ack
        /// destination must travel in the payload).
        from: NodeId,
        /// Retransmission epoch, unique per originating member.
        epoch: u64,
        /// Fresh identifiers.
        ids: PointerList,
    },
    /// Leader → reporting member: the report with this epoch was merged.
    ReportAck {
        /// Epoch being acknowledged.
        epoch: u64,
    },
    /// Leader → member: probe this external target next probe phase.
    Assign {
        /// The node to probe.
        target: NodeId,
    },
    /// Prober → target: "my cluster (led by `from_leader`) has found you".
    Probe {
        /// The probing cluster's leader.
        from_leader: NodeId,
    },
    /// Target → its own leader: a foreign cluster probed `target`.
    ProbeFwd {
        /// The probing cluster's leader.
        from_leader: NodeId,
        /// The member that was probed.
        target: NodeId,
    },
    /// Target's leader → probing leader: "that node is mine".
    ProbeReply {
        /// The target's cluster leader.
        leader: NodeId,
        /// The node that was probed (lets the prober retire the probe).
        target: NodeId,
    },
    /// Smaller leader → larger leader: "absorb my whole cluster".
    Join {
        /// Every member of the joining cluster (its leader included).
        members: PointerList,
        /// The joining cluster's unexplored pointers, handed over so no
        /// discovery lead is ever lost in a merge.
        frontier: PointerList,
    },
    /// Larger leader → smaller leader: "you should join me" (sent when
    /// the discovery was one-sided in the wrong direction).
    Invite {
        /// The inviting (larger) leader.
        leader: NodeId,
    },
    /// Absorbing leader → absorbed member: your leader is now `leader`.
    Adopt {
        /// The new leader.
        leader: NodeId,
    },
    /// Quiescent leader → members: the full cluster roster (the final
    /// broadcast that upgrades `LeaderKnowsAll` to
    /// `EveryoneKnowsEveryone`).
    Roster {
        /// All known identifiers.
        ids: PointerList,
    },
}

impl MessageCost for HmMsg {
    fn pointers(&self) -> usize {
        match self {
            HmMsg::Report { ids, .. } => ids.len() + 1,
            HmMsg::Roster { ids } => ids.len(),
            HmMsg::ReportAck { .. } => 0,
            HmMsg::Assign { .. } | HmMsg::Probe { .. } => 1,
            HmMsg::ProbeFwd { .. } | HmMsg::ProbeReply { .. } => 2,
            HmMsg::Join { members, frontier } => members.len() + frontier.len(),
            HmMsg::Invite { .. } | HmMsg::Adopt { .. } => 1,
        }
    }

    fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
        match self {
            HmMsg::Report { from, ids, .. } => {
                visit(*from);
                ids.visit_ids(visit);
            }
            HmMsg::Roster { ids } => ids.visit_ids(visit),
            HmMsg::ReportAck { .. } => {}
            HmMsg::Assign { target } => visit(*target),
            HmMsg::Probe { from_leader } => visit(*from_leader),
            HmMsg::ProbeFwd {
                from_leader,
                target,
            } => {
                visit(*from_leader);
                visit(*target);
            }
            HmMsg::ProbeReply { leader, target } => {
                visit(*leader);
                visit(*target);
            }
            HmMsg::Join { members, frontier } => {
                members.visit_ids(visit);
                frontier.visit_ids(visit);
            }
            HmMsg::Invite { leader } | HmMsg::Adopt { leader } => visit(*leader),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn pointer_costs_match_payload() {
        assert_eq!(
            HmMsg::Report {
                from: id(0),
                epoch: 1,
                ids: vec![id(1), id(2)].into()
            }
            .pointers(),
            3
        );
        assert_eq!(HmMsg::ReportAck { epoch: 1 }.pointers(), 0);
        assert_eq!(HmMsg::Assign { target: id(1) }.pointers(), 1);
        assert_eq!(HmMsg::Probe { from_leader: id(1) }.pointers(), 1);
        assert_eq!(
            HmMsg::ProbeFwd {
                from_leader: id(1),
                target: id(2)
            }
            .pointers(),
            2
        );
        assert_eq!(
            HmMsg::Join {
                members: vec![id(1), id(2), id(3)].into(),
                frontier: vec![id(9)].into()
            }
            .pointers(),
            4
        );
        assert_eq!(HmMsg::Invite { leader: id(5) }.pointers(), 1);
        assert_eq!(
            HmMsg::Roster {
                ids: PointerList::default()
            }
            .pointers(),
            0
        );
    }
}
