//! Fault injection: independent message drops, crash-stop and
//! crash-recovery failures, network partitions, and an optional perfect
//! failure detector.

use std::collections::BTreeMap;

/// Why the fault layer discarded a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// Lost to the independent per-message drop coin.
    Coin,
    /// Addressed to a node that is dead at delivery time.
    Crash,
    /// Blocked by an active network partition.
    Partition,
}

/// One scheduled crash: the round the node dies and, optionally, the
/// round it comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrashWindow {
    crash: u64,
    recovery: Option<u64>,
}

/// One partition window: between `start` (inclusive) and `end`
/// (exclusive), messages *sent* across group boundaries are dropped.
/// Nodes not named in any group share one implicit "rest" group.
#[derive(Debug, Clone, PartialEq)]
struct PartitionWindow {
    start: u64,
    end: u64,
    group_of: BTreeMap<usize, u32>,
}

/// The implicit group of nodes not named by a partition.
const REST_GROUP: u32 = u32::MAX;

impl PartitionWindow {
    fn blocks(&self, src: usize, dst: usize, round: u64) -> bool {
        if round < self.start || round >= self.end {
            return false;
        }
        let group = |node| self.group_of.get(&node).copied().unwrap_or(REST_GROUP);
        group(src) != group(dst)
    }
}

/// A fault schedule applied by the engine.
///
/// * **Message drops** — every message is lost independently with
///   probability [`drop_probability`](Self::drop_probability) (decided by
///   the engine's deterministic fault stream). The sender is still
///   charged for the message.
/// * **Crash failures** — each scheduled node stops executing and
///   receiving at its crash round; messages addressed to it while dead
///   vanish (and count as drops). [`with_crashes`](Self::with_crashes)
///   schedules crashes at round 0 (machines dead before the protocol
///   starts); [`with_crash_at`](Self::with_crash_at) kills a machine
///   mid-run; [`with_recovery_at`](Self::with_recovery_at) brings a
///   crashed machine back with its pre-crash state intact.
/// * **Partitions** — [`with_partition`](Self::with_partition) splits
///   the network into groups for a round window; messages sent across a
///   group boundary inside the window are dropped (cause
///   [`DropCause::Partition`]), and the split heals at the window's end.
/// * **Crash detection** — optionally, a perfect failure detector (in
///   the spirit of failure-informer services such as Falcon/Albatross)
///   reports each crash to every live node
///   [`detection_delay`](Self::detection_delay) rounds after it happens,
///   and *retracts* the report the same delay after a recovery.
///   Protocols read the report through
///   [`RoundContext::suspects`](crate::RoundContext::suspects); without
///   a detector configured, the report stays empty forever.
///
/// # Example
///
/// ```
/// use rd_sim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .with_drop_probability(0.05)
///     .with_crashes([3])
///     .with_crash_at(9, 40)
///     .with_recovery_at(9, 60)
///     .with_partition([vec![0, 1], vec![2, 3]], 10, 20)
///     .with_crash_detection_after(20);
/// assert!(plan.is_crashed(3) && plan.is_crashed(9));
/// assert!(plan.is_crashed_at(3, 0));
/// assert!(!plan.is_crashed_at(9, 39));
/// assert!(plan.is_crashed_at(9, 40));
/// assert!(!plan.is_crashed_at(9, 60), "node 9 recovered");
/// assert!(plan.partition_blocks(0, 2, 10));
/// assert!(!plan.partition_blocks(0, 2, 20), "partition healed");
/// assert_eq!(plan.detection_delay(), Some(20));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    drop_probability: f64,
    crashes: BTreeMap<usize, CrashWindow>,
    partitions: Vec<PartitionWindow>,
    detection_delay: Option<u64>,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0` (with `p = 1.0` no protocol can
    /// terminate, so it is rejected as a configuration error).
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability {p} outside [0, 1)"
        );
        self.drop_probability = p;
        self
    }

    /// Marks the given node indices as crashed from round 0.
    pub fn with_crashes(mut self, nodes: impl IntoIterator<Item = usize>) -> Self {
        for node in nodes {
            let entry = self.crashes.entry(node).or_insert(CrashWindow {
                crash: 0,
                recovery: None,
            });
            entry.crash = 0;
        }
        self
    }

    /// Schedules `node` to crash at the start of `round` (it executes
    /// rounds `0..round` normally, then stops). An earlier schedule for
    /// the same node wins; a recovery already scheduled is kept.
    pub fn with_crash_at(mut self, node: usize, round: u64) -> Self {
        let entry = self.crashes.entry(node).or_insert(CrashWindow {
            crash: round,
            recovery: None,
        });
        entry.crash = entry.crash.min(round);
        self
    }

    /// Schedules `node` — which must already have a crash scheduled — to
    /// recover at the start of `round`: from then on it executes and
    /// receives again, resuming from its pre-crash state. The last
    /// recovery scheduled for a node wins.
    ///
    /// # Panics
    ///
    /// Panics if `node` has no crash scheduled, or if `round` is not
    /// strictly after its crash round.
    pub fn with_recovery_at(mut self, node: usize, round: u64) -> Self {
        let entry = self
            .crashes
            .get_mut(&node)
            .unwrap_or_else(|| panic!("recovery for node {node} without a scheduled crash"));
        assert!(
            round > entry.crash,
            "recovery of node {node} at round {round} not after its crash at {}",
            entry.crash
        );
        entry.recovery = Some(round);
        self
    }

    /// Splits the network into the given `groups` from round `start`
    /// (inclusive) to round `end` (exclusive): messages *sent* in that
    /// window between nodes of different groups are dropped. Nodes not
    /// named in any group form one implicit extra group. The partition
    /// heals at `end`; multiple (even overlapping) windows may be
    /// scheduled.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or a node appears in more than one
    /// group of this window.
    pub fn with_partition(
        mut self,
        groups: impl IntoIterator<Item = impl IntoIterator<Item = usize>>,
        start: u64,
        end: u64,
    ) -> Self {
        assert!(
            start < end,
            "partition window [{start}, {end}) is empty or inverted"
        );
        let mut group_of = BTreeMap::new();
        for (g, group) in groups.into_iter().enumerate() {
            for node in group {
                let prev = group_of.insert(node, g as u32);
                assert!(
                    prev.is_none(),
                    "node {node} appears in more than one partition group"
                );
            }
        }
        self.partitions.push(PartitionWindow {
            start,
            end,
            group_of,
        });
        self
    }

    /// Enables the perfect failure detector: each crash is reported to
    /// every live node `delay` rounds after it happens, and each
    /// recovery retracts its report `delay` rounds after the node
    /// rejoins. A node whose recovery precedes its would-be report is
    /// never suspected at all.
    pub fn with_crash_detection_after(mut self, delay: u64) -> Self {
        self.detection_delay = Some(delay);
        self
    }

    /// The per-message drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Whether `node` crashes at any point of the run.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.crashes.contains_key(&node)
    }

    /// Whether `node` crashes and never recovers.
    pub fn is_permanently_crashed(&self, node: usize) -> bool {
        self.crashes
            .get(&node)
            .is_some_and(|w| w.recovery.is_none())
    }

    /// Whether `node` is dead during `round`.
    pub fn is_crashed_at(&self, node: usize, round: u64) -> bool {
        self.crashes
            .get(&node)
            .is_some_and(|w| round >= w.crash && w.recovery.is_none_or(|r| round < r))
    }

    /// The round at which `node` crashes, if scheduled.
    pub fn crash_round(&self, node: usize) -> Option<u64> {
        self.crashes.get(&node).map(|w| w.crash)
    }

    /// The round at which `node` recovers, if scheduled.
    pub fn recovery_round(&self, node: usize) -> Option<u64> {
        self.crashes.get(&node).and_then(|w| w.recovery)
    }

    /// All scheduled crashes as `(node, crash round)` pairs, by node
    /// index.
    pub fn crash_schedule(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.crashes.iter().map(|(&n, w)| (n, w.crash))
    }

    /// The nodes that crash at any point of the run.
    pub fn crashed_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.crashes.keys().copied()
    }

    /// The failure-detector latency, if a detector is configured.
    pub fn detection_delay(&self) -> Option<u64> {
        self.detection_delay
    }

    /// `true` when the plan schedules at least one crash (a cheap guard
    /// that lets the router skip the per-message crash lookup entirely
    /// on crash-free plans).
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// `true` when the plan schedules at least one partition window
    /// (the router's cheap guard around the per-message group lookup).
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Whether a message sent from `src` to `dst` in `round` crosses an
    /// active partition boundary (and is therefore dropped). The check
    /// is made at the *send* round: a message sent inside the window is
    /// lost even if its delivery would land after the heal.
    pub fn partition_blocks(&self, src: usize, dst: usize, round: u64) -> bool {
        self.partitions.iter().any(|w| w.blocks(src, dst, round))
    }

    /// `true` when the plan injects no faults at all.
    pub fn is_fault_free(&self) -> bool {
        self.drop_probability == 0.0 && self.crashes.is_empty() && self.partitions.is_empty()
    }

    /// Checks the plan against a concrete run shape: every crash,
    /// recovery, and partition must name node indices below `n` and
    /// rounds within `max_rounds` — a schedule past the budget (or past
    /// the population) would silently never fire, so it is rejected as
    /// a configuration error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, n: usize, max_rounds: u64) -> Result<(), String> {
        for (&node, w) in &self.crashes {
            if node >= n {
                return Err(format!("crash target {node} out of range for n={n}"));
            }
            if w.crash > max_rounds {
                return Err(format!(
                    "crash of node {node} at round {} past max_rounds {max_rounds}",
                    w.crash
                ));
            }
            if let Some(recovery) = w.recovery {
                if recovery > max_rounds {
                    return Err(format!(
                        "recovery of node {node} at round {recovery} past max_rounds {max_rounds}"
                    ));
                }
            }
        }
        for w in &self.partitions {
            if w.end > max_rounds {
                return Err(format!(
                    "partition window [{}, {}) past max_rounds {max_rounds}",
                    w.start, w.end
                ));
            }
            if let Some((&node, _)) = w.group_of.iter().next_back() {
                if node >= n {
                    return Err(format!("partition member {node} out of range for n={n}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        assert!(FaultPlan::new().is_fault_free());
    }

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::new()
            .with_drop_probability(0.1)
            .with_crashes([1])
            .with_crashes([5, 1]);
        assert_eq!(p.drop_probability(), 0.1);
        assert_eq!(p.crashed_nodes().collect::<Vec<_>>(), vec![1, 5]);
        assert!(!p.is_fault_free());
    }

    #[test]
    fn dynamic_crashes_respect_their_round() {
        let p = FaultPlan::new().with_crash_at(2, 10);
        assert!(p.is_crashed(2));
        assert!(!p.is_crashed_at(2, 9));
        assert!(p.is_crashed_at(2, 10));
        assert!(p.is_crashed_at(2, 99));
        assert_eq!(p.crash_round(2), Some(10));
        assert_eq!(p.crash_round(3), None);
    }

    #[test]
    fn earliest_crash_round_wins() {
        let p = FaultPlan::new().with_crash_at(2, 10).with_crash_at(2, 5);
        assert_eq!(p.crash_round(2), Some(5));
        let q = FaultPlan::new().with_crashes([2]).with_crash_at(2, 7);
        assert_eq!(q.crash_round(2), Some(0));
    }

    #[test]
    fn schedule_lists_all_crashes() {
        let p = FaultPlan::new().with_crashes([4]).with_crash_at(1, 30);
        let sched: Vec<_> = p.crash_schedule().collect();
        assert_eq!(sched, vec![(1, 30), (4, 0)]);
    }

    #[test]
    fn recovery_bounds_the_crash_window() {
        let p = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 15);
        assert!(p.is_crashed(2));
        assert!(!p.is_permanently_crashed(2));
        assert!(!p.is_crashed_at(2, 9));
        assert!(p.is_crashed_at(2, 10));
        assert!(p.is_crashed_at(2, 14));
        assert!(!p.is_crashed_at(2, 15));
        assert_eq!(p.recovery_round(2), Some(15));
        assert_eq!(p.recovery_round(3), None);
        let q = FaultPlan::new().with_crash_at(3, 5);
        assert!(q.is_permanently_crashed(3));
    }

    #[test]
    fn recovery_survives_a_lowered_crash_round() {
        let p = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 15)
            .with_crash_at(2, 4);
        assert_eq!(p.crash_round(2), Some(4));
        assert_eq!(p.recovery_round(2), Some(15));
    }

    #[test]
    #[should_panic(expected = "without a scheduled crash")]
    fn recovery_without_crash_rejected() {
        let _ = FaultPlan::new().with_recovery_at(2, 15);
    }

    #[test]
    #[should_panic(expected = "not after its crash")]
    fn recovery_before_crash_rejected() {
        let _ = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 10);
    }

    #[test]
    fn partition_blocks_cross_group_sends_inside_the_window() {
        let p = FaultPlan::new().with_partition([vec![0, 1], vec![2]], 5, 8);
        assert!(!p.is_fault_free());
        assert!(p.has_partitions());
        // Inside the window: cross-group blocked, intra-group open.
        assert!(p.partition_blocks(0, 2, 5));
        assert!(p.partition_blocks(2, 1, 7));
        assert!(!p.partition_blocks(0, 1, 6));
        // Unlisted nodes share the implicit rest group.
        assert!(!p.partition_blocks(7, 9, 6));
        assert!(p.partition_blocks(0, 9, 6));
        // Outside the window: everything flows.
        assert!(!p.partition_blocks(0, 2, 4));
        assert!(!p.partition_blocks(0, 2, 8));
    }

    #[test]
    fn overlapping_partition_windows_all_apply() {
        let p = FaultPlan::new()
            .with_partition([vec![0], vec![1]], 0, 4)
            .with_partition([vec![1], vec![2]], 2, 6);
        assert!(p.partition_blocks(0, 1, 1));
        assert!(p.partition_blocks(1, 2, 5));
        assert!(p.partition_blocks(0, 1, 3), "both windows active");
        // After the first window heals, 0 sits in the second window's
        // rest group: still split from 1, but not from fellow-rest 3.
        assert!(p.partition_blocks(0, 1, 5));
        assert!(!p.partition_blocks(0, 3, 5), "rest group is open");
    }

    #[test]
    #[should_panic(expected = "more than one partition group")]
    fn duplicate_partition_member_rejected() {
        let _ = FaultPlan::new().with_partition([vec![0, 1], vec![1]], 0, 4);
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn empty_partition_window_rejected() {
        let _ = FaultPlan::new().with_partition([vec![0], vec![1]], 4, 4);
    }

    #[test]
    fn validate_checks_rounds_and_indices() {
        let ok = FaultPlan::new()
            .with_crash_at(2, 10)
            .with_recovery_at(2, 20)
            .with_partition([vec![0], vec![3]], 5, 30);
        assert_eq!(ok.validate(4, 100), Ok(()));

        let late_crash = FaultPlan::new().with_crash_at(1, 200);
        assert!(late_crash.validate(4, 100).unwrap_err().contains("crash"));

        let late_recovery = FaultPlan::new()
            .with_crash_at(1, 10)
            .with_recovery_at(1, 200);
        assert!(late_recovery
            .validate(4, 100)
            .unwrap_err()
            .contains("recovery"));

        let late_partition = FaultPlan::new().with_partition([vec![0], vec![1]], 50, 200);
        assert!(late_partition
            .validate(4, 100)
            .unwrap_err()
            .contains("partition window"));

        let bad_node = FaultPlan::new().with_crashes([9]);
        assert!(bad_node.validate(4, 100).unwrap_err().contains("range"));

        let bad_member = FaultPlan::new().with_partition([vec![0], vec![9]], 0, 10);
        assert!(bad_member.validate(4, 100).unwrap_err().contains("range"));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn full_drop_rejected() {
        let _ = FaultPlan::new().with_drop_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn negative_drop_rejected() {
        let _ = FaultPlan::new().with_drop_probability(-0.5);
    }
}
