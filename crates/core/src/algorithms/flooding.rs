//! Eager flooding: the round-optimal, message-wasteful baseline.
//!
//! Every node forwards anything new it learns to *everyone* it knows, and
//! greets newly learned nodes with its entire knowledge. The knowledge
//! radius of every node doubles each round, so completion takes
//! `Θ(log D)` rounds — the information-propagation floor of DESIGN.md
//! §1.1 — at a message cost of `Θ(n²)`-ish per instance. No other
//! algorithm can beat flooding's round count; everything else tries to
//! approach it while spending a vanishing fraction of its messages.

use crate::algorithms::{DiscoveryAlgorithm, KnowledgeView};
use crate::knowledge::KnowledgeSet;
use crate::problem::InitialKnowledge;
use rd_sim::{Envelope, MessageCost, Node, NodeId, PointerList, RoundContext};

/// Factory for the flooding baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flooding;

/// Flooding payload: a batch of identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodMsg {
    /// Identifiers being disseminated.
    pub ids: PointerList,
}

impl MessageCost for FloodMsg {
    fn pointers(&self) -> usize {
        self.ids.len()
    }

    fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
        self.ids.visit_ids(visit);
    }
}

/// Per-node state of the flooding protocol.
///
/// Dissemination state is a single high-water mark (`sent`) over the
/// knowledge set's append-only learning-order list: `list[sent..]` is
/// exactly what this node has not yet flooded, and an id is newly met
/// iff its list position is `>= sent`. This replaces the former
/// drain-a-fresh-queue + rebuild-a-membership-set per round with two
/// borrowed slices and one integer compare per destination — the
/// delta-transfer pattern of [`crate::delta`], degenerate to one shared
/// mark because flooding sends to *all* peers whenever it sends at all.
#[derive(Debug, Clone)]
pub struct FloodingNode {
    knowledge: KnowledgeSet,
    /// Knowledge-list length at the end of the last flooding round.
    sent: usize,
    started: bool,
}

impl Node for FloodingNode {
    type Msg = FloodMsg;

    fn on_round(
        &mut self,
        inbox: &mut Vec<Envelope<FloodMsg>>,
        ctx: &mut RoundContext<'_, FloodMsg>,
    ) {
        for env in inbox.drain(..) {
            self.knowledge.insert_untracked(env.src);
            self.knowledge.extend_untracked(env.payload.ids);
        }
        if self.sent == self.knowledge.mark() && self.started {
            return; // quiescent until something new arrives
        }
        let me = ctx.id();
        let list = self.knowledge.list();
        let full: Vec<NodeId> = list.iter().copied().filter(|&v| v != me).collect();
        if !self.started {
            // Opening round: introduce the full (initial) knowledge to
            // every initially known node.
            self.started = true;
            for &dst in &full {
                ctx.send(
                    dst,
                    FloodMsg {
                        ids: full.as_slice().into(),
                    },
                );
            }
            self.sent = self.knowledge.mark();
            return;
        }
        // Steady state: deltas to old acquaintances, full knowledge to
        // newly met nodes (they may have missed everything so far).
        let fresh = self.knowledge.since(self.sent);
        for (pos, &dst) in list.iter().enumerate() {
            if dst == me {
                continue;
            }
            let payload: PointerList = if pos >= self.sent {
                full.as_slice().into()
            } else {
                fresh.into()
            };
            ctx.send(dst, FloodMsg { ids: payload });
        }
        self.sent = self.knowledge.mark();
    }
}

impl KnowledgeView for FloodingNode {
    fn knows(&self, id: NodeId) -> bool {
        self.knowledge.contains(id)
    }
    fn knows_count(&self) -> usize {
        self.knowledge.len()
    }
    fn known_ids(&self) -> Vec<NodeId> {
        self.knowledge.to_vec()
    }
    fn resident_bytes(&self) -> u64 {
        self.knowledge.resident_bytes() as u64
    }
}

impl DiscoveryAlgorithm for Flooding {
    type NodeState = FloodingNode;

    fn name(&self) -> String {
        "flooding".into()
    }

    fn make_nodes(&self, initial: &InitialKnowledge) -> Vec<FloodingNode> {
        initial
            .rows()
            .enumerate()
            .map(|(u, ids)| {
                let mut knowledge = KnowledgeSet::new(NodeId::new(u as u32));
                knowledge.extend_untracked(ids.iter().copied());
                FloodingNode {
                    knowledge,
                    // Initial acquaintances sit past the mark (only the
                    // node's own id, at position 0, is pre-sent), so the
                    // opening round advertises them.
                    sent: 1,
                    started: false,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem;
    use rd_graphs::Topology;
    use rd_sim::Engine;

    fn run_flooding(topo: Topology, n: usize) -> (rd_sim::RunOutcome, u64, u64) {
        let g = topo.generate(n, 11);
        let nodes = Flooding.make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, 11);
        let outcome = engine.run_until(10_000, problem::everyone_knows_everyone);
        (
            outcome,
            engine.metrics().total_messages(),
            engine.metrics().total_pointers(),
        )
    }

    #[test]
    fn completes_on_a_path() {
        let (outcome, _, _) = run_flooding(Topology::Path, 64);
        assert!(outcome.completed);
        // Knowledge radius doubles per round: log2(63) ≈ 6, plus the
        // initial introduction round and direction asymmetry.
        assert!(outcome.rounds <= 16, "rounds = {}", outcome.rounds);
        assert!(outcome.rounds >= 6, "rounds = {}", outcome.rounds);
    }

    #[test]
    fn completes_on_random_overlay_fast() {
        let (outcome, _, _) = run_flooding(Topology::KOut { k: 3 }, 256);
        assert!(outcome.completed);
        assert!(outcome.rounds <= 8, "rounds = {}", outcome.rounds);
    }

    #[test]
    fn single_node_completes_immediately() {
        let (outcome, messages, _) = run_flooding(Topology::Path, 1);
        assert!(outcome.completed);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(messages, 0);
    }

    #[test]
    fn two_nodes_one_direction() {
        // 0 -> 1: node 1 must still learn 0 (via the envelope source).
        let (outcome, _, _) = run_flooding(Topology::Path, 2);
        assert!(outcome.completed);
        assert!(outcome.rounds <= 2);
    }

    #[test]
    fn message_complexity_is_quadratic_ish() {
        let (_, m64, _) = run_flooding(Topology::KOut { k: 3 }, 64);
        let (_, m256, _) = run_flooding(Topology::KOut { k: 3 }, 256);
        // 4x nodes should cost far more than 4x messages.
        assert!(m256 > 8 * m64, "m64={m64} m256={m256}");
    }

    #[test]
    fn star_out_completes() {
        let (outcome, _, _) = run_flooding(Topology::StarOut, 32);
        assert!(outcome.completed);
        assert!(outcome.rounds <= 4);
    }
}
