//! The engine-agnostic round machinery shared by every execution engine.
//!
//! [`EngineCore`] owns everything about a run *except* the node programs:
//! mailboxes, the round counter, metrics, the fault layer and its random
//! streams, tracing, the failure-detector schedule, receive caps, and
//! delay jitter. The sequential [`Engine`](crate::Engine) in this crate
//! and the sharded engine in `rd-exec` are both thin drivers over this
//! core, so accounting and fault semantics cannot drift between them.
//!
//! A round splits into three phases every engine performs identically:
//!
//! 1. [`EngineCore::begin_round`] — metrics, detector reports, and
//!    delivery of delay-expired messages;
//! 2. node stepping — the engine takes each live node's inbox (via
//!    [`take_capped`]) and runs it with [`step_node`]; node steps are
//!    order-independent because each draws from a private
//!    per-`(seed, node, round)` random stream, which is what makes
//!    parallel stepping bit-identical to sequential stepping;
//! 3. routing — staged envelopes, in `(sender, send-sequence)` order,
//!    pass one at a time through [`EngineCore::route`] (the *only*
//!    consumer of the fault and delay random streams, so it must stay
//!    serial), and [`EngineCore::finish_round`] advances the clock.

use crate::faults::FaultPlan;
use crate::id::NodeId;
use crate::message::{Envelope, MessageCost};
use crate::metrics::RunMetrics;
use crate::node::{Node, RoundContext};
use crate::rng;
use crate::trace::{Trace, TraceEvent};
use rand::rngs::StdRng;
use rand::Rng;

/// The non-node state of a run: mailboxes, clock, metrics, faults,
/// tracing, and delivery policy. See the [module docs](self) for the
/// round protocol engines drive it with.
pub struct EngineCore<M: MessageCost> {
    inboxes: Vec<Vec<Envelope<M>>>,
    round: u64,
    seed: u64,
    metrics: RunMetrics,
    faults: FaultPlan,
    fault_rng: StdRng,
    trace: Option<Trace>,
    /// Crash-detection schedule `(report round, node)`, report-time order.
    detect_schedule: Vec<(u64, NodeId)>,
    /// Crashes already reported to the nodes.
    active_suspects: Vec<NodeId>,
    next_detection: usize,
    /// Per-node per-round delivery cap (`None` = unbounded).
    receive_cap: Option<usize>,
    /// Maximum extra delivery delay in rounds (0 = synchronous).
    max_extra_delay: u64,
    /// Messages awaiting a later delivery round, keyed by that round.
    delayed: std::collections::BTreeMap<u64, Vec<Envelope<M>>>,
    delay_rng: StdRng,
}

/// The slice of [`EngineCore`] state an engine needs while stepping
/// nodes: mailboxes plus the read-only delivery policy. Borrowing it
/// (via [`EngineCore::step_state`]) leaves the routing state untouched,
/// and the mailbox slice can be split per worker shard.
pub struct StepState<'a, M: MessageCost> {
    /// One mailbox per node, holding this round's deliveries.
    pub inboxes: &'a mut [Vec<Envelope<M>>],
    /// The fault plan (for the crashed-node check before stepping).
    pub faults: &'a FaultPlan,
    /// The run seed (for per-node round randomness).
    pub seed: u64,
    /// Per-node per-round delivery cap (`None` = unbounded).
    pub receive_cap: Option<usize>,
}

impl<M: MessageCost> EngineCore<M> {
    /// Creates the core for a population of `n` nodes. `seed` determines
    /// all protocol and fault randomness.
    pub fn new(n: usize, seed: u64) -> Self {
        EngineCore {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            round: 0,
            seed,
            metrics: RunMetrics::new(n),
            faults: FaultPlan::new(),
            fault_rng: rng::fault_rng(seed),
            trace: None,
            detect_schedule: Vec::new(),
            active_suspects: Vec::new(),
            next_detection: 0,
            receive_cap: None,
            max_extra_delay: 0,
            delayed: std::collections::BTreeMap::new(),
            delay_rng: rng::delay_rng(seed),
        }
    }

    /// Installs a fault plan (drops, crashes).
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes a node index that does not exist.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        for c in faults.crashed_nodes() {
            assert!(c < self.inboxes.len(), "crash target {c} out of range");
        }
        if let Some(delay) = faults.detection_delay() {
            self.detect_schedule = faults
                .crash_schedule()
                .map(|(node, round)| (round.saturating_add(delay), NodeId::new(node as u32)))
                .collect();
            self.detect_schedule.sort_unstable();
        }
        self.faults = faults;
    }

    /// Enables message tracing with the given event capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// Caps deliveries at `cap` messages per node per round; excess
    /// messages queue (in arrival order) for later rounds.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (nothing could ever be delivered).
    pub fn set_receive_cap(&mut self, cap: usize) {
        assert!(cap > 0, "a receive cap of 0 can never deliver anything");
        self.receive_cap = Some(cap);
    }

    /// Makes delivery asynchronous: every message independently takes
    /// `1 + U{0..=max_extra}` rounds to arrive instead of exactly one.
    pub fn set_max_extra_delay(&mut self, max_extra: u64) {
        self.max_extra_delay = max_extra;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inboxes.len()
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The complexity record.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The message trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Opens a round: starts its metrics row, folds newly reportable
    /// crashes into the suspect list, and moves messages whose
    /// asynchronous delay expires this round into the mailboxes.
    /// Returns the round number being executed.
    pub fn begin_round(&mut self) -> u64 {
        self.metrics.begin_round();
        let round = self.round;
        // The perfect failure detector reports each crash once its
        // per-crash latency has elapsed.
        while self
            .detect_schedule
            .get(self.next_detection)
            .is_some_and(|&(at, _)| at <= round)
        {
            self.active_suspects
                .push(self.detect_schedule[self.next_detection].1);
            self.next_detection += 1;
        }
        while self
            .delayed
            .first_key_value()
            .is_some_and(|(&at, _)| at <= round)
        {
            let (_, batch) = self.delayed.pop_first().expect("nonempty");
            for env in batch {
                self.inboxes[env.dst.index()].push(env);
            }
        }
        round
    }

    /// The failure detector's current crash report. Engines clone it
    /// (it is one entry per crash) and lend it to every node stepped
    /// this round.
    pub fn suspects(&self) -> &[NodeId] {
        &self.active_suspects
    }

    /// Borrows the state needed to step nodes; see [`StepState`].
    pub fn step_state(&mut self) -> StepState<'_, M> {
        StepState {
            inboxes: &mut self.inboxes,
            faults: &self.faults,
            seed: self.seed,
            receive_cap: self.receive_cap,
        }
    }

    /// Routes one staged envelope through the fault layer into its
    /// next-round mailbox (or the delay queue), accounting it in the
    /// metrics and the trace.
    ///
    /// Engines must call this serially, in `(sender, send-sequence)`
    /// order over the whole round: it is the only consumer of the fault
    /// and delay random streams, and stream position is part of the
    /// deterministic contract.
    ///
    /// # Panics
    ///
    /// Panics if the destination node does not exist.
    pub fn route(&mut self, env: Envelope<M>) {
        let round = self.round;
        let src = env.src.index();
        let dst = env.dst.index();
        assert!(
            dst < self.inboxes.len(),
            "message to unknown node {} from {}",
            env.dst,
            env.src
        );
        let pointers = env.payload.pointers();
        // Delivery happens at the start of the next round; a node dead
        // by then never sees the message.
        let dropped = self.faults.is_crashed_at(dst, round + 1)
            || (self.faults.drop_probability() > 0.0
                && self.fault_rng.random_bool(self.faults.drop_probability()));
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                round,
                src: env.src,
                dst: env.dst,
                pointers,
                dropped,
            });
        }
        if dropped {
            self.metrics.record_drop(src, pointers);
        } else {
            self.metrics.record_delivery(src, dst, pointers);
            let extra = if self.max_extra_delay > 0 {
                self.delay_rng.random_range(0..=self.max_extra_delay)
            } else {
                0
            };
            if extra == 0 {
                self.inboxes[dst].push(env);
            } else {
                self.delayed.entry(round + 1 + extra).or_default().push(env);
            }
        }
    }

    /// Closes the round: advances the clock.
    pub fn finish_round(&mut self) {
        self.round += 1;
    }
}

/// Takes a node's deliverable inbox for this round: the whole mailbox,
/// or — under a receive cap — the oldest `cap` messages, leaving the
/// rest queued for later rounds.
///
/// Engines call this for *every* node before checking for crashes: a
/// crashed node's deliveries are consumed (and lost) either way, which
/// keeps mailbox state identical across engines.
pub fn take_capped<M>(inbox: &mut Vec<Envelope<M>>, cap: Option<usize>) -> Vec<Envelope<M>> {
    match cap {
        Some(cap) if inbox.len() > cap => {
            // Deliver the oldest `cap` messages; the rest wait.
            let rest = inbox.split_off(cap);
            std::mem::replace(inbox, rest)
        }
        _ => std::mem::take(inbox),
    }
}

/// Runs one node for one round: builds its private
/// per-`(seed, node, round)` random stream and its [`RoundContext`],
/// and hands it `inbox`. Sends are appended to `outbox` in send order.
///
/// This is the single entry point through which every engine executes
/// protocol logic, so context construction (and thus the randomness a
/// node observes) cannot differ between engines.
pub fn step_node<N: Node>(
    node: &mut N,
    index: usize,
    round: u64,
    seed: u64,
    suspects: &[NodeId],
    inbox: Vec<Envelope<N::Msg>>,
    outbox: &mut Vec<Envelope<N::Msg>>,
) {
    let mut node_rng = rng::node_round_rng(seed, index, round);
    let mut ctx = RoundContext::new(NodeId::new(index as u32), round, &mut node_rng, outbox)
        .with_suspects(suspects);
    node.on_round(inbox, &mut ctx);
}

#[cfg(test)]
mod tests {
    use super::*;

    impl MessageCost for u32 {
        fn pointers(&self) -> usize {
            1
        }
    }

    fn env(src: u32, dst: u32, payload: u32) -> Envelope<u32> {
        Envelope::new(NodeId::new(src), NodeId::new(dst), payload)
    }

    #[test]
    fn take_capped_full_and_split() {
        let mut inbox = vec![env(1, 0, 10), env(2, 0, 20), env(3, 0, 30)];
        let got = take_capped(&mut inbox, Some(2));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, 10);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].payload, 30);

        let got = take_capped(&mut inbox, None);
        assert_eq!(got.len(), 1);
        assert!(inbox.is_empty());
    }

    #[test]
    fn route_delivers_into_next_round_mailbox() {
        let mut core: EngineCore<u32> = EngineCore::new(3, 1);
        assert_eq!(core.begin_round(), 0);
        core.route(env(0, 2, 7));
        core.finish_round();
        assert_eq!(core.round(), 1);
        assert_eq!(core.metrics().total_messages(), 1);
        let state = core.step_state();
        assert_eq!(state.inboxes[2].len(), 1);
        assert!(state.inboxes[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn route_rejects_unknown_destination() {
        let mut core: EngineCore<u32> = EngineCore::new(2, 1);
        core.begin_round();
        core.route(env(0, 5, 1));
    }

    #[test]
    fn detector_feeds_suspects_in_report_order() {
        let mut core: EngineCore<u32> = EngineCore::new(4, 1);
        core.set_faults(
            FaultPlan::new()
                .with_crashes([2])
                .with_crash_at(1, 3)
                .with_crash_detection_after(2),
        );
        for expect in [
            &[][..],
            &[][..],
            &[NodeId::new(2)][..],
            &[NodeId::new(2)][..],
            &[NodeId::new(2)][..],
            &[NodeId::new(2), NodeId::new(1)][..],
        ] {
            core.begin_round();
            assert_eq!(core.suspects(), expect, "round {}", core.round());
            core.finish_round();
        }
    }
}
