//! The multi-threaded `(algorithm × n × seed)` sweep driver.

use crate::stats::{summarize, Summary};
use parking_lot::Mutex;
use rd_core::runner::{
    run, AlgorithmKind, Completion, EngineKind, RunConfig, RunReport, RunVerdict,
};
use rd_graphs::Topology;
use rd_sim::{FaultPlan, RetryPolicy};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Specification of a sweep: the cross product of algorithms, instance
/// sizes, and seeds on one topology family.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Algorithms to compare.
    pub kinds: Vec<AlgorithmKind>,
    /// Topology family.
    pub topology: Topology,
    /// Instance sizes.
    pub ns: Vec<usize>,
    /// Seed range; each seed is one run per `(kind, n)`.
    pub seeds: Range<u64>,
    /// Completion predicate.
    pub completion: Completion,
    /// Fault plan applied to every run.
    pub faults: FaultPlan,
    /// Round budget per run.
    pub max_rounds: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Execution engine for every run of the sweep. With
    /// `EngineKind::Sharded`, prefer `threads: 1` so the per-run workers
    /// and the sweep driver don't oversubscribe the cores: run-level
    /// parallelism suits many small runs, engine-level parallelism a few
    /// huge ones.
    pub engine: EngineKind,
    /// Convergence watchdog window for every run (`None` disables it).
    pub stall_window: Option<u64>,
    /// Opt-in reliable-delivery policy for every run.
    pub reliable: Option<RetryPolicy>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            kinds: Vec::new(),
            topology: Topology::KOut { k: 3 },
            ns: Vec::new(),
            seeds: 0..1,
            completion: Completion::default(),
            faults: FaultPlan::new(),
            max_rounds: 1_000_000,
            threads: 0,
            engine: EngineKind::default(),
            stall_window: None,
            reliable: None,
        }
    }
}

/// Aggregated measurements for one `(algorithm, n)` cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Algorithm display name.
    pub algorithm: String,
    /// Topology display name.
    pub topology: String,
    /// Instance size.
    pub n: usize,
    /// Rounds to completion across seeds (censored at the round budget
    /// for incomplete runs — check [`completion_rate`](Self::completion_rate)).
    pub rounds: Summary,
    /// Total messages across seeds.
    pub messages: Summary,
    /// Total pointers across seeds.
    pub pointers: Summary,
    /// Total bits across seeds.
    pub bits: Summary,
    /// Per-run maximum messages sent by any single node.
    pub max_sent_messages: Summary,
    /// Per-run mean messages per node.
    pub mean_messages_per_node: Summary,
    /// Messages lost to fault injection (all causes), across seeds.
    pub dropped: Summary,
    /// Retransmission attempts by the reliable-delivery layer, across
    /// seeds.
    pub retransmissions: Summary,
    /// Fraction of seeds that completed within the budget.
    pub completion_rate: f64,
    /// Fraction of seeds that completed only in degraded mode (over the
    /// survivors of at least one permanent crash).
    pub degraded_rate: f64,
    /// Fraction of seeds terminated by the convergence watchdog.
    pub stall_rate: f64,
    /// Whether every run passed the soundness checks.
    pub all_sound: bool,
}

/// Runs the sweep, farming runs out to worker threads, and returns one
/// cell per `(kind, n)` in spec order.
///
/// # Panics
///
/// Panics if the spec has no algorithms, sizes, or seeds.
pub fn sweep(spec: &SweepSpec) -> Vec<SweepCell> {
    assert!(!spec.kinds.is_empty(), "sweep needs at least one algorithm");
    assert!(!spec.ns.is_empty(), "sweep needs at least one size");
    assert!(!spec.seeds.is_empty(), "sweep needs at least one seed");

    struct Job {
        kind_idx: usize,
        n_idx: usize,
        seed: u64,
    }
    let mut jobs = Vec::new();
    for (kind_idx, _) in spec.kinds.iter().enumerate() {
        for (n_idx, _) in spec.ns.iter().enumerate() {
            for seed in spec.seeds.clone() {
                jobs.push(Job {
                    kind_idx,
                    n_idx,
                    seed,
                });
            }
        }
    }

    let cells = spec.kinds.len() * spec.ns.len();
    let results: Mutex<Vec<Vec<RunReport>>> = Mutex::new(vec![Vec::new(); cells]);
    let cursor = AtomicUsize::new(0);
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        spec.threads
    }
    .min(jobs.len())
    .max(1);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let config = RunConfig {
                    topology: spec.topology,
                    n: spec.ns[job.n_idx],
                    seed: job.seed,
                    max_rounds: spec.max_rounds,
                    completion: spec.completion,
                    faults: spec.faults.clone(),
                    engine: spec.engine,
                    stall_window: spec.stall_window,
                    reliable: spec.reliable,
                    obs: None,
                    trace_capacity: None,
                };
                let report = run(spec.kinds[job.kind_idx], &config);
                results.lock()[job.kind_idx * spec.ns.len() + job.n_idx].push(report);
            });
        }
    })
    .expect("sweep worker panicked");

    let results = results.into_inner();
    let mut out = Vec::with_capacity(cells);
    for (kind_idx, kind) in spec.kinds.iter().enumerate() {
        for (n_idx, &n) in spec.ns.iter().enumerate() {
            let reports = &results[kind_idx * spec.ns.len() + n_idx];
            let field = |f: fn(&RunReport) -> f64| -> Summary {
                summarize(&reports.iter().map(f).collect::<Vec<_>>())
            };
            out.push(SweepCell {
                algorithm: kind.name(),
                topology: spec.topology.name(),
                n,
                rounds: field(|r| r.rounds as f64),
                messages: field(|r| r.messages as f64),
                pointers: field(|r| r.pointers as f64),
                bits: field(|r| r.bits as f64),
                max_sent_messages: field(|r| r.max_sent_messages as f64),
                mean_messages_per_node: field(|r| r.mean_messages_per_node),
                dropped: field(|r| r.dropped() as f64),
                retransmissions: field(|r| r.retransmissions as f64),
                completion_rate: reports.iter().filter(|r| r.completed).count() as f64
                    / reports.len() as f64,
                degraded_rate: reports
                    .iter()
                    .filter(|r| r.verdict == RunVerdict::DegradedComplete)
                    .count() as f64
                    / reports.len() as f64,
                stall_rate: reports
                    .iter()
                    .filter(|r| matches!(r.verdict, RunVerdict::Stalled { .. }))
                    .count() as f64
                    / reports.len() as f64,
                all_sound: reports.iter().all(|r| r.sound),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            kinds: vec![AlgorithmKind::PointerDoubling, AlgorithmKind::Flooding],
            topology: Topology::Cycle,
            ns: vec![16, 32],
            seeds: 0..3,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_produces_one_cell_per_kind_and_size() {
        let cells = sweep(&small_spec());
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].algorithm, "pointer-doubling");
        assert_eq!(cells[0].n, 16);
        assert_eq!(cells[3].algorithm, "flooding");
        assert_eq!(cells[3].n, 32);
        for c in &cells {
            assert_eq!(c.rounds.count, 3);
            assert_eq!(c.completion_rate, 1.0);
            assert!(c.all_sound);
            assert!(c.rounds.mean > 0.0);
            assert!(c.messages.mean > 0.0);
        }
    }

    #[test]
    fn sweep_is_deterministic_regardless_of_threading() {
        let mut one = small_spec();
        one.threads = 1;
        let mut many = small_spec();
        many.threads = 4;
        let a = sweep(&one);
        let b = sweep(&many);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rounds.mean, y.rounds.mean);
            assert_eq!(x.messages.mean, y.messages.mean);
        }
    }

    #[test]
    fn engine_choice_does_not_change_results() {
        let sequential = sweep(&small_spec());
        let mut spec = small_spec();
        spec.engine = EngineKind::Sharded { workers: 2 };
        spec.threads = 1;
        let sharded = sweep(&spec);
        for (x, y) in sequential.iter().zip(&sharded) {
            assert_eq!(x.rounds.mean, y.rounds.mean);
            assert_eq!(x.messages.mean, y.messages.mean);
            assert_eq!(x.pointers.mean, y.pointers.mean);
            assert_eq!(x.bits.mean, y.bits.mean);
        }
    }

    #[test]
    fn budget_censoring_shows_in_completion_rate() {
        let spec = SweepSpec {
            kinds: vec![AlgorithmKind::NameDropper],
            topology: Topology::Path,
            ns: vec![64],
            seeds: 0..2,
            max_rounds: 1,
            ..Default::default()
        };
        let cells = sweep(&spec);
        assert_eq!(cells[0].completion_rate, 0.0);
        assert_eq!(cells[0].rounds.mean, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one algorithm")]
    fn empty_spec_rejected() {
        sweep(&SweepSpec {
            ns: vec![8],
            ..Default::default()
        });
    }
}
