//! Critical-path extraction and convergence attribution over the
//! schema-v2 provenance section of a run archive.
//!
//! The provenance DAG stores, per `(id, node)` pair, the first delivery
//! that taught `node` about `id`. Chaining each edge to the edge by
//! which its *sender* learned the same id yields the causal history of
//! any fact; the longest such chain — the one ending at the last
//! delivery of the run — is the critical path, the constructive answer
//! to "why did this run take R rounds". When a run degrades or stalls,
//! the per-round fault tallies along the path's span attribute the slow
//! hops to their injected causes.

use crate::archive::{Archive, EdgeRec};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The causal chain ending at the run's last recorded delivery, from
/// root hop to terminal hop. `None` when the archive has no provenance
/// section (schema 1, or tracing sampled everything out).
///
/// The terminal edge is the retained edge with the highest delivery
/// round, ties broken toward the smallest `(id, node)` pair. Each
/// predecessor is the edge by which the current hop's sender learned
/// the id, accepted only if that learning landed no later than the
/// current hop was sent (`pred.round <= cur.sent`); otherwise the chain
/// roots there (the sender knew the id initially, or the linking edge
/// was sampled out).
pub fn critical_path(archive: &Archive) -> Option<Vec<EdgeRec>> {
    let terminal = archive
        .edges
        .iter()
        .reduce(|best, e| if e.round > best.round { e } else { best })?;
    Some(chain_to(archive, terminal))
}

/// The provenance chain for one `(id, node)` pair, root hop first.
/// `None` when no edge for the pair was retained.
pub fn id_chain(archive: &Archive, id: u64, node: u64) -> Option<Vec<EdgeRec>> {
    let by_pair: BTreeMap<(u64, u64), &EdgeRec> =
        archive.edges.iter().map(|e| ((e.id, e.node), e)).collect();
    let terminal = *by_pair.get(&(id, node))?;
    Some(chain_to(archive, terminal))
}

fn chain_to(archive: &Archive, terminal: &EdgeRec) -> Vec<EdgeRec> {
    let by_pair: BTreeMap<(u64, u64), &EdgeRec> =
        archive.edges.iter().map(|e| ((e.id, e.node), e)).collect();
    let mut chain = vec![terminal.clone()];
    let mut cur = terminal;
    // `pred.round <= cur.sent < cur.round` makes delivery rounds
    // strictly decrease along the walk, so it always terminates.
    while let Some(&pred) = by_pair.get(&(cur.id, cur.src)) {
        if pred.round > cur.sent {
            break;
        }
        chain.push(pred.clone());
        cur = pred;
    }
    chain.reverse();
    chain
}

/// Per-cause drop totals over a round range, summed from the archive's
/// round records (the exported form of the engine's `DropTally`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanFaults {
    pub coin: u64,
    pub crash: u64,
    pub partition: u64,
    pub link: u64,
    pub suppression: u64,
}

impl SpanFaults {
    pub fn total(&self) -> u64 {
        self.coin + self.crash + self.partition + self.link + self.suppression
    }

    /// The dominant cause name, or `None` when the span saw no drops.
    pub fn dominant(&self) -> Option<&'static str> {
        let entries = [
            (self.suppression, "suppression"),
            (self.partition, "partition"),
            (self.crash, "crash"),
            (self.link, "link"),
            (self.coin, "coin"),
        ];
        entries
            .iter()
            .filter(|&&(count, _)| count > 0)
            .max_by_key(|&&(count, _)| count)
            .map(|&(_, name)| name)
    }
}

/// Sums fault drops over `rounds` (inclusive) from the round records.
pub fn faults_in_span(archive: &Archive, lo: u64, hi: u64) -> SpanFaults {
    let mut f = SpanFaults::default();
    for r in archive
        .rounds
        .iter()
        .filter(|r| r.round >= lo && r.round <= hi)
    {
        f.coin += r.dropped_coin;
        f.crash += r.dropped_crash;
        f.partition += r.dropped_partition;
        f.link += r.dropped_link;
        f.suppression += r.dropped_suppression;
    }
    f
}

fn hop_lines(out: &mut String, chain: &[EdgeRec]) {
    for e in chain {
        let _ = writeln!(
            out,
            "  round {:>4}: node {} learned id {} from node {} (sent round {}, seq {})",
            e.round, e.node, e.id, e.src, e.sent, e.seq
        );
    }
}

/// The `rd-inspect why` narrative: the critical path round by round,
/// and — for runs that did not end in a plain `complete` verdict — an
/// attribution of the slow hops to the fault causes active along them.
pub fn why(archive: &Archive) -> String {
    let mut out = String::new();
    let s = &archive.summary;
    let Some(chain) = critical_path(archive) else {
        let _ = writeln!(
            out,
            "no causal trace in this archive (schema {}): run with causal tracing enabled to attribute convergence",
            archive.header.schema
        );
        return out;
    };
    let terminal = chain.last().expect("chain is never empty");
    let root = chain.first().expect("chain is never empty");
    let _ = writeln!(
        out,
        "critical path: {} hop(s) ending at round {} — verdict {} in {} rounds",
        chain.len(),
        terminal.round,
        s.verdict,
        s.rounds
    );
    let _ = writeln!(
        out,
        "chain root: node {} already knew id {} when round {} was sent (initial knowledge or unsampled edge)",
        root.src, root.id, root.sent
    );
    hop_lines(&mut out, &chain);
    let _ = writeln!(
        out,
        "last delivery on the path lands in round {} of {}; the final round of the run is round {}",
        terminal.round, s.rounds, s.rounds
    );

    if let Some(tm) = &archive.trace_meta {
        if tm.overflow > 0 {
            let _ = writeln!(
                out,
                "WARN: causal trace overflowed ({} offers dropped) — the true critical path may be longer",
                tm.overflow
            );
        }
        if tm.sampled_out > 0 {
            let _ = writeln!(
                out,
                "note: {} messages were sampled out; chains may root early",
                tm.sampled_out
            );
        }
    }

    // Attribution: where did the path wait, and which injected faults
    // were active while it waited?
    let span = faults_in_span(archive, root.sent, terminal.round);
    if s.verdict != "complete" || span.total() > 0 {
        let _ = writeln!(out, "\nattribution (verdict {}):", s.verdict);
        let _ = writeln!(
            out,
            "  path span rounds {}..={}: {} drops (coin {}, crash {}, partition {}, link {}, suppression {})",
            root.sent,
            terminal.round,
            span.total(),
            span.coin,
            span.crash,
            span.partition,
            span.link,
            span.suppression
        );
        // The largest wait: the hop whose id sat longest at a node
        // between being learned and being successfully forwarded.
        let mut worst: Option<(u64, &EdgeRec, &EdgeRec)> = None;
        for pair in chain.windows(2) {
            let (pred, e) = (&pair[0], &pair[1]);
            let gap = e.sent.saturating_sub(pred.round);
            if worst.as_ref().is_none_or(|&(g, _, _)| gap > g) {
                worst = Some((gap, pred, e));
            }
        }
        if let Some((gap, pred, e)) = worst.filter(|&(gap, _, _)| gap > 0) {
            let window = faults_in_span(archive, pred.round, e.sent);
            let _ = writeln!(
                out,
                "  slowest hop: id {} waited {} round(s) at node {} (learned round {}, forwarded round {})",
                e.id, gap, e.src, pred.round, e.sent
            );
            let _ = writeln!(
                out,
                "  during that window: coin {}, crash {}, partition {}, link {}, suppression {} drops{}",
                window.coin,
                window.crash,
                window.partition,
                window.link,
                window.suppression,
                window
                    .dominant()
                    .map(|c| format!(" — dominant cause: {c}"))
                    .unwrap_or_default()
            );
        } else if let Some(cause) = span.dominant() {
            let _ = writeln!(out, "  dominant cause over the span: {cause}");
        }
    }
    out
}

/// The `rd-inspect path` narrative: the provenance chain for one id at
/// one node.
pub fn path_report(archive: &Archive, id: u64, node: u64) -> String {
    let mut out = String::new();
    match id_chain(archive, id, node) {
        Some(chain) => {
            let root = chain.first().expect("chain is never empty");
            let _ = writeln!(
                out,
                "provenance of id {id} at node {node}: {} hop(s)",
                chain.len()
            );
            let _ = writeln!(
                out,
                "chain root: node {} already knew id {} when round {} was sent",
                root.src, root.id, root.sent
            );
            hop_lines(&mut out, &chain);
        }
        None => {
            let _ = writeln!(
                out,
                "no recorded provenance for id {id} at node {node} (initially known, never learned, or sampled out)"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{Archive, EdgeRec, Header, RoundRec, SummaryRec, TraceMetaRec};

    fn edge(id: u64, node: u64, src: u64, sent: u64, round: u64) -> EdgeRec {
        EdgeRec {
            id,
            node,
            src,
            sent,
            round,
            seq: 0,
        }
    }

    fn archive(edges: Vec<EdgeRec>, rounds: Vec<RoundRec>, verdict: &str) -> Archive {
        Archive {
            header: Header {
                schema: 2,
                ..Header::default()
            },
            rounds,
            trace_meta: Some(TraceMetaRec {
                capacity: 1024,
                sample_ppm: 1_000_000,
                edges: edges.len() as u64,
                ..TraceMetaRec::default()
            }),
            summary: SummaryRec {
                verdict: verdict.into(),
                rounds: edges.iter().map(|e| e.round).max().unwrap_or(0),
                ..SummaryRec::default()
            },
            edges,
            ..Archive::default()
        }
    }

    fn round(round: u64, partition: u64) -> RoundRec {
        RoundRec {
            round,
            dropped_partition: partition,
            ..RoundRec::default()
        }
    }

    #[test]
    fn critical_path_chains_back_to_the_root() {
        // id 9 travels 0 -> 1 -> 2 -> 3, one hop per round.
        let a = archive(
            vec![
                edge(9, 1, 0, 1, 2),
                edge(9, 2, 1, 2, 3),
                edge(9, 3, 2, 3, 4),
                // A shorter, unrelated chain.
                edge(5, 1, 0, 1, 2),
            ],
            vec![],
            "complete",
        );
        let path = critical_path(&a).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], edge(9, 1, 0, 1, 2));
        assert_eq!(path[2], edge(9, 3, 2, 3, 4));
    }

    #[test]
    fn predecessors_that_land_too_late_root_the_chain() {
        // The sender's own learning edge lands AFTER it sent (a
        // sampled-out true edge left this stale one): must not link.
        let a = archive(
            vec![edge(9, 1, 0, 5, 6), edge(9, 2, 1, 2, 3)],
            vec![],
            "complete",
        );
        let path = id_chain(&a, 9, 2).unwrap();
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn terminal_ties_break_toward_smallest_pair() {
        let a = archive(
            vec![edge(3, 4, 0, 1, 2), edge(7, 1, 0, 1, 2)],
            vec![],
            "complete",
        );
        let path = critical_path(&a).unwrap();
        assert_eq!((path[0].id, path[0].node), (3, 4));
    }

    #[test]
    fn why_names_the_final_round_and_attributes_partitions() {
        let mut rounds: Vec<RoundRec> = (1..=6).map(|r| round(r, 0)).collect();
        rounds[3].dropped_partition = 12; // round 4
        let a = archive(
            vec![edge(9, 1, 0, 1, 2), edge(9, 2, 1, 5, 6)],
            rounds,
            "degraded-complete",
        );
        let text = why(&a);
        assert!(text.contains("final round of the run is round 6"), "{text}");
        assert!(text.contains("verdict degraded-complete"), "{text}");
        assert!(text.contains("waited 3 round(s) at node 1"), "{text}");
        assert!(text.contains("dominant cause: partition"), "{text}");
    }

    #[test]
    fn why_attributes_suppression_when_it_dominates() {
        let mut rounds: Vec<RoundRec> = (1..=6).map(|r| round(r, 0)).collect();
        rounds[3].dropped_suppression = 20; // round 4, inside the wait
        rounds[3].dropped_partition = 3;
        rounds[2].dropped_link = 5;
        let a = archive(
            vec![edge(9, 1, 0, 1, 2), edge(9, 2, 1, 5, 6)],
            rounds,
            "stalled",
        );
        let text = why(&a);
        assert!(text.contains("dominant cause: suppression"), "{text}");
        assert!(text.contains("suppression 20"), "{text}");
        assert!(text.contains("link 5"), "{text}");
    }

    #[test]
    fn why_degrades_gracefully_without_a_trace() {
        let a = Archive::default();
        assert!(why(&a).contains("no causal trace"));
    }

    #[test]
    fn path_report_handles_missing_pairs() {
        let a = archive(vec![edge(9, 1, 0, 1, 2)], vec![], "complete");
        assert!(path_report(&a, 9, 1).contains("1 hop(s)"));
        assert!(path_report(&a, 9, 3).contains("no recorded provenance"));
    }
}
