//! Wall-clock micro-benchmarks of the substrates: topology generation,
//! knowledge-set operations, and raw engine round throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rd_core::KnowledgeSet;
use rd_graphs::Topology;
use rd_sim::{Engine, Envelope, MessageCost, Node, NodeId, RoundContext};
use std::hint::black_box;

fn bench_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology-generate");
    for topo in [
        Topology::KOut { k: 3 },
        Topology::ErdosRenyi { avg_degree: 4 },
        Topology::ScaleFree { m: 2 },
        Topology::CliqueChain { cliques: 16 },
    ] {
        group.bench_with_input(BenchmarkId::new(topo.name(), 8192), &8192usize, |b, &n| {
            b.iter(|| topo.generate(black_box(n), 7).edge_count())
        });
    }
    group.finish();
}

fn bench_knowledge_set(c: &mut Criterion) {
    c.bench_function("knowledge-insert-100k", |b| {
        b.iter(|| {
            let mut k = KnowledgeSet::new(NodeId::new(0));
            for i in 0..100_000u32 {
                k.insert(NodeId::new(black_box(i)));
            }
            k.len()
        })
    });
    c.bench_function("knowledge-merge-dup-heavy", |b| {
        let ids: Vec<NodeId> = (0..10_000).map(NodeId::new).collect();
        b.iter(|| {
            let mut k = KnowledgeSet::new(NodeId::new(0));
            for _ in 0..10 {
                k.extend(black_box(ids.iter().copied()));
            }
            k.len()
        })
    });
}

#[derive(Clone, Debug)]
struct Tick;
impl MessageCost for Tick {
    fn pointers(&self) -> usize {
        0
    }
}

/// Every node pings its ring successor each round: pure engine overhead.
struct RingPinger {
    next: NodeId,
}
impl Node for RingPinger {
    type Msg = Tick;
    fn on_round(&mut self, inbox: &mut Vec<Envelope<Tick>>, ctx: &mut RoundContext<'_, Tick>) {
        black_box(inbox.len());
        ctx.send(self.next, Tick);
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine-10-rounds-4096-nodes", |b| {
        b.iter(|| {
            let nodes: Vec<RingPinger> = (0..4096)
                .map(|i| RingPinger {
                    next: NodeId::new(((i + 1) % 4096) as u32),
                })
                .collect();
            let mut engine = Engine::new(nodes, 1);
            for _ in 0..10 {
                engine.step();
            }
            engine.metrics().total_messages()
        })
    });
}

criterion_group!(benches, bench_topologies, bench_knowledge_set, bench_engine);
criterion_main!(benches);
