//! rd-obs: structured telemetry, run archives, and inspection tooling
//! for resource-discovery runs.
//!
//! The crate sits *below* the engines in the dependency graph: rd-sim,
//! rd-exec, and the drivers attach a [`Recorder`] when observability is
//! requested and leave it `None` otherwise. Two invariants define the
//! design:
//!
//! 1. **Zero cost when disabled.** An engine with no recorder never
//!    reads a clock and never branches beyond one `Option` check per
//!    phase.
//! 2. **Wall-clock never feeds protocol state.** The recorder is
//!    write-only from the engine's perspective: spans, round rows, and
//!    registry metrics are produced from deterministic values plus
//!    `Instant` reads, and nothing flows back. Enabling any sink
//!    combination therefore leaves runs bit-identical across engines
//!    and worker counts (property-tested in
//!    `tests/prop_engine_equivalence.rs`).
//!
//! Exporters: [`JsonlArchiveSink`] (the schema-versioned run archive —
//! see [`archive`]), [`ChromeTraceSink`] (Perfetto-loadable trace of
//! per-worker phase spans), [`PrometheusSink`] (text exposition). The
//! `rd-inspect` binary summarizes, diffs, and validates archives.
//!
//! Causal tracing ([`trace`]) extends the same contract to message
//! provenance: the engines collect a [`CausalTrace`] — the per-run
//! knowledge-provenance DAG of first-delivery edges — strictly outside
//! the determinism boundary, the driver attaches it to the recorder,
//! and the archive exports it as a schema-v2 section.
//! [`critical_path`] turns the DAG into the `rd-inspect why`/`path`
//! narratives; [`bench_diff`] gives `rd-inspect bench-diff` its
//! machine-readable perf-regression verdicts.

//!
//! Profiling ([`prof`]) layers cost attribution on the same spans:
//! enabling [`Recorder::with_profiling`] yields a [`ProfileReport`]
//! (per-phase ns/envelope, shard utilization/imbalance, memory
//! timeline), schema-v3 `profile_*` archive records, and optionally a
//! folded-stack file ([`FoldedStackSink`]) for flamegraph tooling —
//! while un-profiled archives stay byte-identical to schema v2.
//!
//! Live telemetry ([`live`], [`http`], [`monitor`]) streams the same
//! facts *during* the run: the driver publishes one [`LiveSnapshot`]
//! per round to a never-blocking [`LiveBus`], a loopback-only
//! [`LiveServer`] serves `/metrics`, `/status`, and `/healthz` from the
//! latest snapshot, and a [`MonitorEngine`] evaluates declarative
//! [`AlertRule`]s online, firing schema-v4 `alert` archive records.
//! Snapshots are one-way facts out of the run, so the determinism
//! contract above is untouched.

pub mod archive;
pub mod bench_diff;
pub mod critical_path;
pub mod hist;
pub mod http;
pub mod inspect;
pub mod json;
pub mod live;
pub mod monitor;
pub mod prof;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;
pub mod watch;

pub use hist::Histogram;
pub use http::{http_get, LiveServer};
pub use live::{LiveBus, LivePublisher, LiveSnapshot, LiveSpec};
pub use monitor::{Alert, AlertLog, AlertRule, MonitorEngine};
pub use prof::{folded_stacks, FoldedStackSink, Heartbeat, ProfileReport, Profiler};
pub use recorder::{ObsReport, Recorder, RoundObs, RunMeta, RunOutcomeObs};
pub use registry::MetricsRegistry;
pub use sink::{ChromeTraceSink, JsonlArchiveSink, ObsSink, PrometheusSink};
pub use span::{Phase, SpanEvent};
pub use trace::{CausalTrace, ProvEdge};
