//! The discovery protocols and the traits that bind them to the runner.

pub mod flooding;
pub mod hm;
pub mod name_dropper;
pub mod pointer_doubling;
pub mod random_pointer_jump;
pub mod swamping;

pub use flooding::Flooding;
pub use hm::HmDiscovery;
pub use name_dropper::NameDropper;
pub use pointer_doubling::PointerDoubling;
pub use random_pointer_jump::RandomPointerJump;
pub use swamping::Swamping;

use crate::problem::InitialKnowledge;
use rd_sim::NodeId;

/// Harness-side read access to a node's knowledge.
///
/// The omniscient harness uses this view to decide global completion
/// (the literature measures *convergence time*, observed from outside)
/// and to verify soundness; protocols themselves never see it.
pub trait KnowledgeView {
    /// Does this node know `id`?
    fn knows(&self, id: NodeId) -> bool;
    /// Number of identifiers this node knows.
    fn knows_count(&self) -> usize;
    /// All identifiers this node knows.
    fn known_ids(&self) -> Vec<NodeId>;
    /// Whether the node's *local* state claims discovery is finished.
    ///
    /// Only protocols with genuine local termination detection return
    /// `true` here; the default (no claim) is correct for the rest.
    fn believes_done(&self) -> bool {
        false
    }
    /// Heap bytes of the node's knowledge state (capacities, not
    /// lengths). Sampled per round by the profiler's memory timeline;
    /// protocols that track knowledge in a [`KnowledgeSet`] report its
    /// [`resident_bytes`]. The default (0) keeps exotic node states
    /// honest: unknown is reported as nothing rather than a guess.
    ///
    /// [`KnowledgeSet`]: crate::knowledge::KnowledgeSet
    /// [`resident_bytes`]: crate::knowledge::KnowledgeSet::resident_bytes
    fn resident_bytes(&self) -> u64 {
        0
    }
}

/// A resource-discovery protocol: a factory that turns an instance's
/// initial knowledge into node programs the engine can run.
pub trait DiscoveryAlgorithm {
    /// The per-node program type.
    type NodeState: rd_sim::Node + KnowledgeView;

    /// Display name for tables.
    fn name(&self) -> String;

    /// Instantiates one node program per machine; `initial[u]` is the
    /// identifiers machine `u` starts with (itself first), handed over
    /// in flat CSR form ([`InitialKnowledge`]).
    fn make_nodes(&self, initial: &InitialKnowledge) -> Vec<Self::NodeState>;
}
