#![warn(missing_docs)]

//! Resource-discovery algorithms: the reconstructed Haeupler–Malkhi
//! sub-logarithmic protocol and every baseline it is evaluated against.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Distributed Resource Discovery in Sub-Logarithmic Time"*
//! (Haeupler & Malkhi, PODC 2015). See `DESIGN.md` at the repository root
//! for the problem statement, the reconstruction assumptions, and the
//! experiment index.
//!
//! # Contents
//!
//! * [`knowledge`] — the per-node knowledge set with freshness tracking,
//! * [`delta`] — per-neighbor high-water marks for delta-encoded
//!   knowledge transfers,
//! * [`merge`] — branchless sorted-set merge kernels for capped
//!   knowledge vectors,
//! * [`problem`] — instance construction from an initial knowledge graph
//!   and the two standard completion predicates,
//! * [`algorithms`] — the six discovery protocols:
//!   [`Flooding`](algorithms::flooding::Flooding),
//!   [`Swamping`](algorithms::swamping::Swamping),
//!   [`RandomPointerJump`](algorithms::random_pointer_jump::RandomPointerJump),
//!   [`NameDropper`](algorithms::name_dropper::NameDropper),
//!   [`PointerDoubling`](algorithms::pointer_doubling::PointerDoubling),
//!   and [`HmDiscovery`](algorithms::hm::HmDiscovery) (the paper's
//!   algorithm, with reliability layer and leader-crash failover),
//! * [`gossip`] — direct-addressing gossip (the PODC '14 sibling
//!   primitive) with a classic push–pull baseline,
//! * [`runner`] — one-call execution of `(algorithm, topology, n, seed)`
//!   producing a full complexity report,
//! * [`verify`] — harness-side soundness checks (no fabricated
//!   identifiers, knowledge monotonicity, completion validity).
//!
//! # Quickstart
//!
//! ```
//! use rd_core::runner::{run, AlgorithmKind, RunConfig};
//! use rd_graphs::Topology;
//!
//! let report = run(
//!     AlgorithmKind::Hm(Default::default()),
//!     &RunConfig::new(Topology::KOut { k: 3 }, 256, 7),
//! );
//! assert!(report.completed);
//! assert!(report.rounds < 60);
//! ```

pub mod algorithms;
pub mod delta;
pub mod gossip;
pub mod knowledge;
pub mod merge;
pub mod problem;
pub mod runner;
pub mod verify;

pub use algorithms::{DiscoveryAlgorithm, KnowledgeView};
pub use knowledge::KnowledgeSet;
pub use runner::{run, AlgorithmKind, Completion, EngineKind, RunConfig, RunReport, RunVerdict};
