//! **F3** — cluster-count evolution per super-round: the
//! doubly-exponential collapse that makes the algorithm sub-logarithmic.

use crate::profile::Profile;
use rd_analysis::Table;
use rd_core::algorithms::hm::{cluster_count, HmDiscovery, PHASES};
use rd_core::{problem, DiscoveryAlgorithm};
use rd_graphs::Topology;
use rd_sim::Engine;

/// Cluster counts at every super-round boundary (index 0 = before any
/// communication) for one run on the random-overlay workload.
pub fn cluster_series(n: usize, seed: u64) -> Vec<usize> {
    let g = Topology::KOut { k: 3 }.generate(n, seed);
    let nodes = HmDiscovery::default().make_nodes(&problem::initial_knowledge(&g));
    let mut engine = Engine::new(nodes, seed);
    let mut series = vec![cluster_count(engine.nodes())];
    engine.run_observed(
        1_000_000,
        problem::everyone_knows_everyone,
        |round, nodes| {
            if round % PHASES == 0 {
                series.push(cluster_count(nodes));
            }
        },
    );
    series.push(cluster_count(engine.nodes()));
    series
}

/// Runs the experiment: one column per `n`, one row per super-round.
pub fn run(profile: Profile) -> Table {
    let ns: Vec<usize> = match profile {
        Profile::Quick => vec![256, 1024],
        Profile::Full => vec![1024, 4096, 16384],
    };
    let all: Vec<Vec<usize>> = ns.iter().map(|&n| cluster_series(n, 1)).collect();
    let depth = all.iter().map(Vec::len).max().unwrap_or(0);
    let mut headers = vec!["super-round".to_string()];
    headers.extend(ns.iter().map(|n| format!("clusters (n={n})")));
    let mut t = Table::new(headers);
    for sr in 0..depth {
        let mut row = vec![sr.to_string()];
        for series in &all {
            row.push(
                series
                    .get(sr)
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "1".into()),
            );
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_starts_at_n_and_collapses() {
        let series = cluster_series(128, 3);
        assert_eq!(series[0], 128);
        assert!(*series.last().unwrap() <= 2);
        // A handful of super-rounds erases almost all clusters...
        assert!(series.len() >= 4, "{series:?}");
        assert!(series[3] <= 128 / 8, "collapse too slow: {series:?}");
        // ...and the collapse *accelerates*: the later contraction factor
        // dominates the earlier one (the doubly-exponential signature).
        let f_early = series[0] as f64 / series[1].max(1) as f64;
        let f_late = series[2] as f64 / series[3].max(1) as f64;
        assert!(
            f_late > f_early,
            "no acceleration: early {f_early:.2}, late {f_late:.2}, {series:?}"
        );
    }

    #[test]
    fn table_has_one_row_per_super_round() {
        // Exercise the plumbing with a direct mini-series.
        let s = cluster_series(64, 1);
        assert!(s.len() >= 2);
    }
}
