//! Quickstart: run the sub-logarithmic discovery algorithm on a freshly
//! bootstrapped overlay and print its complexity report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use resource_discovery::prelude::*;

fn main() {
    // 1024 machines; each starts knowing itself plus 3 uniformly random
    // peers (a weakly connected bootstrap overlay).
    let n = 1024;
    let config = RunConfig::new(Topology::KOut { k: 3 }, n, 42);

    println!("resource discovery over {n} machines (k-out overlay, k = 3)\n");
    for kind in AlgorithmKind::contenders() {
        let report = run(kind, &config);
        assert!(report.completed && report.sound);
        println!(
            "{:<18} {:>4} rounds   {:>9} messages   {:>11} pointers   max {:>5} msgs/node",
            report.algorithm,
            report.rounds,
            report.messages,
            report.pointers,
            report.max_sent_messages,
        );
    }

    println!();
    let hm = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(Topology::KOut { k: 3 }, n, 42).with_completion(Completion::LeaderKnowsAll),
    );
    println!(
        "HM reaches the PODC'99 completion notion (leader knows all, all know leader) \
         in {} rounds.",
        hm.rounds
    );
}
