//! Phase-level profile of the sequential round hot path.
//!
//! Runs the exec-bench gossip workload (the same bounded-gossip node the
//! `exec` bench times) on the sequential engine with a sink-less
//! profiling recorder attached, then prints the per-phase wall-clock
//! breakdown the profiler attributed over all rounds — the first stop
//! when attacking the per-round constant factor. The table is derived
//! from the same [`ProfileReport`] the archive exports, so this binary
//! and `rd-inspect profile` can never disagree.
//!
//! [`ProfileReport`]: rd_obs::ProfileReport
//!
//! ```text
//! cargo run --release -p rd-bench --bin profile [-- --n LOG2_N] [--rounds R]
//! ```
//!
//! CI runs this at n=2^14 for one round and asserts the breakdown is
//! emitted (every phase line present, percentages summing to ~100).

use rd_bench::workload::{self, SEED};
use rd_obs::{Recorder, RunMeta, RunOutcomeObs};
use rd_sim::Engine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let log2_n = flag("--n", 14);
    let rounds = flag("--rounds", 8);
    let n = 1usize << log2_n;

    let nodes = workload::make_nodes(n, SEED);
    let recorder = Recorder::new(RunMeta {
        algorithm: "profile-gossip".into(),
        topology: "kout-3".into(),
        n,
        seed: SEED,
        engine: "sequential".into(),
        workers: 1,
        latency_model: None,
    })
    .with_profiling();
    let mut engine = Engine::new(nodes, SEED).with_obs(recorder);
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        engine.step();
    }
    let wall = start.elapsed().as_secs_f64();
    let messages = engine.metrics().total_messages();
    // Order-sensitive digest of every node's final knowledge: any
    // divergence in merge results (content *or* order) changes it, so
    // workload rewrites can be checked for bit-identity, not just
    // message-count identity.
    let state_digest: u64 = engine
        .nodes()
        .iter()
        .flat_map(|g| g.known.iter().enumerate())
        .fold(0u64, |acc, (pos, id)| {
            acc.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((id.index() as u64) << 1)
                .wrapping_add(pos as u64)
        });
    let recorder = rd_sim::RoundEngine::take_obs(&mut engine).expect("recorder attached");
    let report = recorder
        .finish(
            RunOutcomeObs {
                verdict: "profile".into(),
                completed: true,
                sound: true,
                rounds,
                messages,
                pointers: engine.metrics().total_pointers(),
                trace_events: 0,
                trace_overflow: 0,
                last_progress: None,
            },
            &[],
            &[],
            &[],
            &[],
        )
        .expect("sink-less finish cannot fail");

    let profile = report.profile.expect("profiling was enabled");
    let total: u64 = profile.phases.iter().map(|p| p.total_ns).sum();
    println!(
        "profile: n=2^{log2_n} ({n} nodes), {rounds} round(s), {messages} messages, state digest {state_digest:#018x}, wall {:.3}s ({:.1} rounds/s)",
        wall,
        rounds as f64 / wall
    );
    println!("phase breakdown (aggregated over rounds):");
    for p in &profile.phases {
        let pct = if total > 0 {
            p.total_ns as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<16} {:>12.3} ms  {:>5.1}%  {:>10.1} ns/env",
            format!("{:?}", p.phase),
            p.total_ns as f64 / 1e6,
            pct,
            p.ns_per_envelope
        );
    }
    println!("  {:<16} {:>12.3} ms  100.0%", "total", total as f64 / 1e6);
    println!(
        "attribution: {:.1}% of round wall time covered",
        profile.coverage_pct
    );
}
