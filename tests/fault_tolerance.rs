//! Integration tests of the fault-injection layer and the protocols'
//! reliability machinery: drops, crashes, and the failure detector.

use resource_discovery::core::algorithms::hm::HmDiscovery;
use resource_discovery::prelude::*;

#[test]
fn hm_survives_heavy_drop_storms() {
    for p in [0.05, 0.15, 0.30] {
        let report = run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(Topology::KOut { k: 3 }, 128, 7)
                .with_faults(FaultPlan::new().with_drop_probability(p))
                .with_max_rounds(200_000),
        );
        assert!(report.completed, "p={p}: incomplete");
        assert!(report.sound, "p={p}: unsound");
        assert!(report.dropped() > 0, "p={p}: no drops recorded");
    }
}

#[test]
fn drop_storms_slow_hm_down_monotonically_ish() {
    let rounds = |p: f64| {
        run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(Topology::KOut { k: 3 }, 256, 7)
                .with_faults(FaultPlan::new().with_drop_probability(p))
                .with_max_rounds(200_000),
        )
        .rounds
    };
    let clean = rounds(0.0);
    let stormy = rounds(0.30);
    assert!(
        stormy > clean,
        "drops should cost rounds: {clean} vs {stormy}"
    );
}

#[test]
fn name_dropper_self_heals_under_drops() {
    let report = run(
        AlgorithmKind::NameDropper,
        &RunConfig::new(Topology::Cycle, 96, 3)
            .with_faults(FaultPlan::new().with_drop_probability(0.25))
            .with_max_rounds(200_000),
    );
    assert!(report.completed);
}

#[test]
fn survivors_complete_fully_with_a_failure_detector() {
    let crashed = [5usize, 18, 31, 44, 70];
    let faults = FaultPlan::new()
        .with_crashes(crashed)
        .with_drop_probability(0.05)
        .with_crash_detection_after(24);
    let report = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(Topology::KOut { k: 6 }, 96, 5)
            .with_faults(faults)
            .with_max_rounds(200_000),
    );
    assert!(report.completed);
    assert!(report.sound);
}

#[test]
fn detector_latency_only_delays_completion() {
    let rounds_with_delay = |delay: u64| {
        let faults = FaultPlan::new()
            .with_crashes([5usize, 18, 31])
            .with_crash_detection_after(delay);
        let report = run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(Topology::KOut { k: 6 }, 96, 5)
                .with_faults(faults)
                .with_max_rounds(200_000),
        );
        assert!(report.completed, "delay={delay}");
        report.rounds
    };
    let eager = rounds_with_delay(6);
    let lazy = rounds_with_delay(120);
    assert!(lazy >= eager, "eager={eager} lazy={lazy}");
    assert!(lazy >= 120, "completion cannot precede detection here");
}

#[test]
fn crashed_nodes_never_participate() {
    let g = Topology::Cycle.generate(32, 1);
    let initial = resource_discovery::core::problem::initial_knowledge(&g);
    let nodes = HmDiscovery::default().make_nodes(&initial);
    let mut engine = Engine::new(nodes, 1)
        .with_faults(FaultPlan::new().with_crashes([4usize]))
        .with_trace(200_000);
    engine.run_until(
        5_000,
        |nodes: &[resource_discovery::core::algorithms::hm::HmNode]| {
            resource_discovery::core::problem::leader_knows_all_among(
                nodes,
                &(0..32).map(|i| i != 4).collect::<Vec<bool>>(),
            )
        },
    );
    let crashed_id = NodeId::new(4);
    for event in engine.trace().unwrap().events() {
        assert_ne!(event.src, crashed_id, "a crashed node sent a message");
        if event.dst == crashed_id {
            assert_eq!(
                event.dropped,
                Some(DropCause::Crash),
                "delivery to a crashed node"
            );
        }
    }
}

#[test]
fn drops_are_seed_deterministic() {
    let go = || {
        run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(Topology::KOut { k: 3 }, 128, 77)
                .with_faults(FaultPlan::new().with_drop_probability(0.10))
                .with_max_rounds(200_000),
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a, b);
    assert!(a.dropped() > 0);
}
