//! **T3** — topology robustness: rounds for every algorithm across the
//! whole topology zoo at a fixed `n`.

use crate::profile::Profile;
use rd_analysis::experiment::{sweep, SweepSpec};
use rd_analysis::Table;
use rd_core::runner::AlgorithmKind;
use rd_graphs::Topology;

/// Whether an `(algorithm, topology)` pair is excluded from the survey.
///
/// Flooding on a complete knowledge graph sends `n` full-knowledge
/// payloads from every node in its very first round — `Θ(n³)` pointer
/// traffic in one shot — which is not a measurement, it is a memory
/// bomb. The pair is reported as excluded.
pub fn excluded(kind: AlgorithmKind, topology: Topology) -> bool {
    matches!(kind, AlgorithmKind::Flooding) && matches!(topology, Topology::Complete)
}

/// Runs the survey and renders one row per topology, one column per
/// algorithm, cells holding mean rounds (with completion rate when it is
/// not 100%).
pub fn run(profile: Profile) -> Table {
    let n = profile.survey_n().min(2048);
    let kinds = AlgorithmKind::contenders();
    let mut headers = vec!["topology".to_string(), "diameter".to_string()];
    headers.extend(kinds.iter().map(|k| k.name()));
    let mut t = Table::new(headers);
    for topology in Topology::survey() {
        let g = topology.generate(n, 0);
        let diam = rd_graphs::metrics::approx_undirected_diameter(&g, 0)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "?".into());
        let mut row = vec![topology.name(), diam];
        for &kind in &kinds {
            if excluded(kind, topology) {
                row.push("excluded".into());
                continue;
            }
            let cells = sweep(&SweepSpec {
                kinds: vec![kind],
                topology,
                ns: vec![n],
                seeds: profile.seeds(),
                ..Default::default()
            });
            let c = &cells[0];
            row.push(if c.completion_rate == 1.0 {
                format!("{:.0}", c.rounds.mean)
            } else {
                format!(
                    "{:.0} ({}% done)",
                    c.rounds.mean,
                    (c.completion_rate * 100.0) as u32
                )
            });
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusion_rule_is_narrow() {
        assert!(excluded(AlgorithmKind::Flooding, Topology::Complete));
        assert!(!excluded(AlgorithmKind::Flooding, Topology::Path));
        assert!(!excluded(
            AlgorithmKind::Hm(Default::default()),
            Topology::Complete
        ));
    }
}
