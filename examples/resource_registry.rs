//! The point of it all: discover the machines, then run a resource
//! directory over them.
//!
//! Machines bootstrap from a sparse knowledge graph, discover the full
//! membership with the HM algorithm, and then operate a coordination-
//! free registry: every resource key has an owner every machine computes
//! identically (rendezvous hashing), so publishing costs one message and
//! lookup costs one round trip. Finally a machine is removed from the
//! membership and we show the rendezvous property: only its keys move.
//!
//! ```text
//! cargo run --release --example resource_registry
//! ```

use resource_discovery::prelude::*;
use resource_discovery::registry::service::{resource_key, run_pipeline};
use resource_discovery::registry::Directory;

fn main() {
    let n = 256;
    let report = run_pipeline(Topology::KOut { k: 3 }, n, 11, 8, 4);
    assert!(report.all_resolved);
    println!(
        "discovery: {} rounds / {} messages",
        report.discovery_rounds, report.discovery_messages
    );
    println!(
        "registry:  {} rounds / {} messages to publish {} resources and resolve {} lookups",
        report.registry_rounds,
        report.registry_messages,
        n * 8,
        n * 4
    );

    // Membership change: machine 100 is decommissioned. Rendezvous
    // placement moves only the keys it owned.
    let full = Directory::new((0..n as u32).map(NodeId::new));
    let removed = NodeId::new(100);
    let reduced = full.without(removed);
    let all_keys: Vec<u64> = (0..n as u32)
        .flat_map(|m| (0..8).map(move |s| resource_key(m, s)))
        .collect();
    let moved = reduced.moved_keys(&full, all_keys.iter().copied());
    println!(
        "\ndecommissioning one machine of {n}: {} of {} keys migrate ({:.2}%; the \
         rendezvous minimum)",
        moved.len(),
        all_keys.len(),
        100.0 * moved.len() as f64 / all_keys.len() as f64
    );
    assert!(
        moved.iter().all(|&k| full.owner(k) == removed),
        "a key moved needlessly"
    );
}
