//! `rd-inspect watch`: a terminal dashboard over a live run's
//! `/status` endpoint.
//!
//! The binary polls `http://ADDR/status`, parses the reply with the
//! serde-free [`Json`](crate::json::Json) parser, and redraws a single
//! fixed-height frame in place. Everything that decides what a frame
//! looks like lives here — [`render_frame`] is a pure function of the
//! parsed document plus a rolling [`WatchState`] — so the dashboard is
//! unit-testable without a server or a terminal.

use crate::json::Json;
use std::fmt::Write as _;

/// Width of the rounds/s sparkline (and the history window backing it).
pub const SPARK_WIDTH: usize = 32;

const SPARK_GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Rolling per-session state: the rounds/s history the sparkline draws.
#[derive(Debug, Default)]
pub struct WatchState {
    history: Vec<f64>,
}

impl WatchState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one rounds/s sample, keeping the last [`SPARK_WIDTH`].
    pub fn observe(&mut self, rounds_per_sec: f64) {
        self.history.push(rounds_per_sec.max(0.0));
        if self.history.len() > SPARK_WIDTH {
            self.history.remove(0);
        }
    }

    pub fn history(&self) -> &[f64] {
        &self.history
    }
}

/// Renders `values` as a unicode sparkline scaled to the window max.
/// A flat-zero (or empty) window renders as all-minimum glyphs padded
/// to `width` so the frame height and width never jitter.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    let mut out = String::with_capacity(width * 3);
    for &v in values.iter().rev().take(width).rev() {
        let idx = if max > 0.0 {
            (((v / max) * (SPARK_GLYPHS.len() - 1) as f64).round() as usize)
                .min(SPARK_GLYPHS.len() - 1)
        } else {
            0
        };
        out.push(SPARK_GLYPHS[idx]);
    }
    for _ in values.len().min(width)..width {
        out.insert(0, ' ');
    }
    out
}

fn field_u64(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn field_f64(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn field_str<'a>(doc: &'a Json, key: &str) -> &'a str {
    doc.get(key).and_then(Json::as_str).unwrap_or("?")
}

/// The drop-cause breakdown from `/status`, sorted heaviest-first,
/// zero causes omitted.
fn drop_causes(doc: &Json) -> Vec<(&'static str, u64)> {
    let dropped = doc.get("dropped");
    let mut causes: Vec<(&'static str, u64)> =
        ["coin", "crash", "partition", "link", "suppression"]
            .iter()
            .map(|&cause| {
                (
                    cause,
                    dropped
                        .and_then(|d| d.get(cause))
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                )
            })
            .filter(|&(_, count)| count > 0)
            .collect();
    causes.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    causes
}

/// Renders one dashboard frame from a parsed `/status` document and
/// the rolling state. Pure: no IO, no terminal control sequences.
pub fn render_frame(doc: &Json, state: &WatchState) -> Result<String, String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("status document is not a JSON object".to_string());
    }
    let round = field_u64(doc, "round");
    let max_rounds = field_u64(doc, "max_rounds");
    let rps = field_f64(doc, "rounds_per_sec");
    let mps = field_f64(doc, "msgs_per_sec");
    let convergence = field_f64(doc, "convergence_pct");
    let finished = doc.get("finished").and_then(Json::as_bool).unwrap_or(false);
    let alerts = field_u64(doc, "alerts");

    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "rd-live watch | {} on {} | n={} seed={} | {} ({} workers)",
        field_str(doc, "algorithm"),
        field_str(doc, "topology"),
        field_u64(doc, "n"),
        field_u64(doc, "seed"),
        field_str(doc, "engine"),
        field_u64(doc, "workers"),
    );
    let status = if finished {
        format!("finished: {}", field_str(doc, "verdict"))
    } else {
        "running".to_string()
    };
    let _ = writeln!(out, "  round       {round:>10} / {max_rounds}  [{status}]");
    let _ = writeln!(
        out,
        "  rounds/s    {rps:>10.1}  {}",
        sparkline(state.history(), SPARK_WIDTH)
    );
    let _ = writeln!(out, "  msgs/s      {mps:>10.0}");

    // Convergence bar: 24 cells, clamped — `convergence_pct` is
    // already capped at 100 server-side.
    let cells = ((convergence / 100.0) * 24.0).round() as usize;
    let bar: String = (0..24)
        .map(|i| if i < cells.min(24) { '#' } else { '.' })
        .collect();
    let _ = writeln!(out, "  convergence {convergence:>9.1}%  [{bar}]");
    let _ = writeln!(
        out,
        "  messages    {:>10}  (retransmissions {})",
        field_u64(doc, "messages"),
        field_u64(doc, "retransmissions"),
    );

    let causes = drop_causes(doc);
    if causes.is_empty() {
        let _ = writeln!(out, "  drops              none");
    } else {
        let top: Vec<String> = causes
            .iter()
            .take(3)
            .map(|(cause, count)| format!("{cause} {count}"))
            .collect();
        let total: u64 = causes.iter().map(|&(_, c)| c).sum();
        let _ = writeln!(out, "  drops       {total:>10}  ({})", top.join(", "));
    }
    let _ = writeln!(
        out,
        "  shards      {:>9.2}x imbalance, {:>4.0}% utilization",
        field_f64(doc, "imbalance"),
        field_f64(doc, "utilization") * 100.0,
    );
    let _ = writeln!(
        out,
        "  resident    {:>8.1} MiB (pools {:.1} MiB)",
        field_u64(doc, "resident_bytes") as f64 / (1024.0 * 1024.0),
        field_u64(doc, "pool_bytes") as f64 / (1024.0 * 1024.0),
    );
    if alerts > 0 {
        let _ = writeln!(
            out,
            "  ALERTS      {alerts:>10}  (see run stderr / archive)"
        );
    } else {
        let _ = writeln!(out, "  alerts             none");
    }
    Ok(out)
}

/// One poll step shared by the binary's loop: fetch `/status`, parse,
/// update the sparkline history, render. Returns the frame plus the
/// `finished` flag so the caller knows when to stop.
pub fn poll_frame(addr: &str, state: &mut WatchState) -> Result<(String, bool), String> {
    let (code, body) =
        crate::http::http_get(addr, "/status").map_err(|e| format!("GET {addr}/status: {e}"))?;
    if code != 200 && code != 503 {
        return Err(format!("GET {addr}/status: HTTP {code}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("bad /status JSON: {e}"))?;
    state.observe(
        doc.get("rounds_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
    );
    let finished = doc.get("finished").and_then(Json::as_bool).unwrap_or(false);
    let frame = render_frame(&doc, state)?;
    Ok((frame, finished))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveSnapshot;

    fn sample_doc() -> Json {
        let snap = LiveSnapshot {
            algorithm: "hm".into(),
            topology: "3-out".into(),
            engine: "sharded:4".into(),
            n: 1024,
            seed: 42,
            workers: 4,
            round: 37,
            max_rounds: 100_000,
            rounds_per_sec: 210.5,
            msgs_per_sec: 80_000.0,
            messages: 123_456,
            retransmissions: 78,
            dropped_coin: 900,
            dropped_crash: 40,
            dropped_partition: 1200,
            knowledge_total: 524_288,
            knowledge_target: 1_048_576,
            shard_busy_ns: vec![100, 200, 300, 400],
            round_wall_ns: 500,
            resident_bytes: 64 * 1024 * 1024,
            ..Default::default()
        };
        Json::parse(&snap.status_json()).expect("valid status JSON")
    }

    #[test]
    fn sparkline_scales_to_window_max() {
        assert_eq!(sparkline(&[], 4), "    ");
        assert_eq!(sparkline(&[0.0, 0.0], 4), "  ▁▁");
        let ramp = sparkline(&[1.0, 4.0, 8.0], 3);
        let glyphs: Vec<char> = ramp.chars().collect();
        assert_eq!(glyphs.len(), 3);
        assert_eq!(glyphs[2], '█', "window max renders full-height");
        assert!(glyphs[0] < glyphs[2]);
    }

    #[test]
    fn state_caps_history_at_the_spark_width() {
        let mut state = WatchState::new();
        for i in 0..(SPARK_WIDTH + 10) {
            state.observe(i as f64);
        }
        assert_eq!(state.history().len(), SPARK_WIDTH);
        assert_eq!(state.history()[0], 10.0, "oldest samples evicted");
    }

    #[test]
    fn frame_renders_identity_rates_drops_and_convergence() {
        let doc = sample_doc();
        let mut state = WatchState::new();
        state.observe(100.0);
        state.observe(210.5);
        let frame = render_frame(&doc, &state).expect("renders");
        assert!(frame.contains("hm on 3-out"));
        assert!(frame.contains("n=1024"));
        assert!(frame.contains("37 / 100000"));
        assert!(frame.contains("210.5"));
        assert!(frame.contains("50.0%"), "convergence half-way: {frame}");
        // Drop causes sorted heaviest-first.
        assert!(frame.contains("partition 1200, coin 900, crash 40"));
        assert!(frame.contains("alerts             none"));
        assert!(frame.contains("[running]"));
        assert!(frame.contains('█'), "sparkline present");
    }

    #[test]
    fn finished_runs_show_their_verdict_and_alert_count() {
        let snap = LiveSnapshot {
            finished: true,
            verdict: "complete".into(),
            alerts: 2,
            ..Default::default()
        };
        let doc = Json::parse(&snap.status_json()).unwrap();
        let frame = render_frame(&doc, &WatchState::new()).unwrap();
        assert!(frame.contains("[finished: complete]"));
        assert!(frame.contains("ALERTS               2"));
        assert!(frame.contains("drops              none"));
    }

    #[test]
    fn non_object_documents_are_rejected() {
        assert!(render_frame(&Json::Arr(vec![]), &WatchState::new()).is_err());
    }
}
