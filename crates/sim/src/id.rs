//! Node identifiers.

use std::fmt;

/// A globally unique machine identifier that doubles as a network
/// address (the *direct addressing* assumption: any node that learns a
/// `NodeId` may send to it).
///
/// Identifiers are dense indices `0..n` in the simulator, but protocols
/// must treat them as opaque — the only operations the model grants are
/// equality and an arbitrary total order (used for tie-breaking, e.g.
/// leader election by maximum identifier).
///
/// # Example
///
/// ```
/// use rd_sim::NodeId;
///
/// let a = NodeId::new(3);
/// let b = NodeId::new(7);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Wraps a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index, for simulator-side bookkeeping (mailbox routing,
    /// metrics vectors). Protocol code should not need this.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> u32 {
        id.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn roundtrip_conversions() {
        let id = NodeId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.index(), 9);
    }

    #[test]
    fn hashable() {
        let set: HashSet<NodeId> = [0, 1, 1, 2].into_iter().map(NodeId::new).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn debug_and_display_nonempty() {
        assert_eq!(format!("{}", NodeId::new(4)), "n4");
        assert_eq!(format!("{:?}", NodeId::new(4)), "NodeId(4)");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
