//! **T9** — the connection bottleneck: completion under per-node
//! receive caps.
//!
//! The unbounded-fan-in assumption hides a real cost: the winning merge
//! target absorbs many joins in a single round, and the final roster
//! broadcast answers everyone at once. Capping deliveries per node per
//! round (excess queues for later rounds) reveals how each algorithm's
//! hot spots serialize.

use crate::profile::Profile;
use rd_analysis::Table;
use rd_core::algorithms::{HmDiscovery, PointerDoubling};
use rd_core::{problem, DiscoveryAlgorithm};
use rd_graphs::Topology;
use rd_sim::{Engine, Node};

fn rounds_with_cap<A>(alg: &A, n: usize, seed: u64, cap: Option<usize>) -> (bool, u64)
where
    A: DiscoveryAlgorithm,
    A::NodeState: Node,
{
    let g = Topology::KOut { k: 3 }.generate(n, seed);
    let nodes = alg.make_nodes(&problem::initial_knowledge(&g));
    let mut engine = Engine::new(nodes, seed);
    if let Some(cap) = cap {
        engine = engine.with_receive_cap(cap);
    }
    // A hard, small budget: protocols that keep retransmitting into a
    // capped receiver grow its queue without bound, so "did not finish
    // within 4096 rounds" is itself the finding — letting them run
    // longer only turns the finding into an out-of-memory.
    let outcome = engine.run_until(4_096, problem::everyone_knows_everyone);
    (outcome.completed, outcome.rounds)
}

/// Runs the bandwidth sweep. Capped at `n = 128`: a cap of 1 serialises
/// the hot spots into `Θ(n·traffic)` rounds, so larger instances take
/// hundreds of thousands of simulated rounds (and gigabytes of queued
/// retransmissions) to say the same thing.
pub fn run(profile: Profile) -> Table {
    let n = profile.survey_n().min(128);
    let seed = 1;
    let caps: [Option<usize>; 5] = [Some(1), Some(2), Some(4), Some(16), None];
    let mut headers = vec!["algorithm".to_string()];
    for cap in caps {
        headers.push(match cap {
            Some(c) => format!("cap {c}"),
            None => "unbounded".into(),
        });
    }
    let mut t = Table::new(headers);

    let mut hm_row = vec!["hm".to_string()];
    let mut pd_row = vec!["pointer-doubling".to_string()];
    for cap in caps {
        let (done, rounds) = rounds_with_cap(&HmDiscovery::default(), n, seed, cap);
        hm_row.push(if done {
            rounds.to_string()
        } else {
            format!("{rounds} (incomplete)")
        });
        let (done, rounds) = rounds_with_cap(&PointerDoubling, n, seed, cap);
        pd_row.push(if done {
            rounds.to_string()
        } else {
            format!("{rounds} (incomplete)")
        });
    }
    t.row(hm_row);
    t.row(pd_row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_slow_but_do_not_break_hm() {
        // Cap 4 at n = 64: heavy enough to queue the hot spots, light
        // enough for debug-mode CI (cap 1 serialises the roster into
        // thousands of rounds — covered by the release-mode T9 run).
        let (done_unbounded, fast) = rounds_with_cap(&HmDiscovery::default(), 64, 3, None);
        let (done_capped, slow) = rounds_with_cap(&HmDiscovery::default(), 64, 3, Some(4));
        assert!(done_unbounded && done_capped);
        assert!(slow >= fast, "cap should not speed things up");
    }
}
