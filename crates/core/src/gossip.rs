//! Direct-addressing gossip: the PODC '14 sibling primitive.
//!
//! *Optimal Gossip with Direct Addressing* (Haeupler & Malkhi, PODC '14)
//! is the paper this line of work builds on: once machines can address
//! any machine whose identifier they know, rumor spreading no longer
//! needs the `Θ(n log n)` messages of random push–pull — informed
//! machines can partition the address space and delegate disjoint halves,
//! spreading with the optimal `n − 1` messages in `⌈log₂ n⌉` rounds.
//! This module implements both protocols on a complete knowledge graph
//! (experiment T6) and is also the final-broadcast idea the discovery
//! algorithm's roster stage echoes.
//!
//! # Example
//!
//! ```
//! use rd_core::gossip::{run_gossip, GossipStrategy};
//!
//! let split = run_gossip(GossipStrategy::AddressedSplit, 64, 1);
//! assert!(split.completed);
//! assert_eq!(split.messages, 63); // exactly n - 1
//!
//! let pushpull = run_gossip(GossipStrategy::PushPull, 64, 1);
//! assert!(pushpull.completed);
//! assert!(pushpull.messages > split.messages);
//! ```

use rd_sim::{Engine, Envelope, MessageCost, Node, NodeId, RoundContext};

/// Which rumor-spreading protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipStrategy {
    /// Classic random push–pull: every machine contacts one uniformly
    /// random machine per round. `Θ(log n)` rounds, `Θ(n log n)`
    /// messages until completion.
    PushPull,
    /// Deterministic address-space splitting enabled by direct
    /// addressing: an informed machine responsible for an id range
    /// repeatedly delegates the upper half. `⌈log₂ n⌉` rounds and
    /// exactly `n − 1` messages — both optimal.
    AddressedSplit,
}

impl GossipStrategy {
    /// Display name for tables.
    pub fn name(self) -> &'static str {
        match self {
            GossipStrategy::PushPull => "push-pull",
            GossipStrategy::AddressedSplit => "addressed-split",
        }
    }
}

/// Gossip wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipMsg {
    /// The rumor itself.
    Push,
    /// An uninformed machine asking a random peer for the rumor.
    PullReq,
    /// Direct-addressing delegation: "you are now responsible for
    /// spreading the rumor to ids `lo..hi`".
    Delegate {
        /// Inclusive lower bound of the delegated range.
        lo: u32,
        /// Exclusive upper bound of the delegated range.
        hi: u32,
    },
}

impl MessageCost for GossipMsg {
    fn pointers(&self) -> usize {
        match self {
            GossipMsg::Push | GossipMsg::PullReq => 0,
            // A range is two identifiers.
            GossipMsg::Delegate { .. } => 2,
        }
    }
}

/// Per-node gossip state. The knowledge graph is complete by assumption
/// (every machine knows `0..n`), so state reduces to rumor possession and
/// — for the splitting protocol — the delegated range.
#[derive(Debug, Clone)]
pub struct GossipNode {
    strategy: GossipStrategy,
    n: u32,
    informed: bool,
    /// AddressedSplit: the id range this node must still cover
    /// (`lo` is this node itself).
    range: Option<(u32, u32)>,
    pull_requesters: Vec<NodeId>,
}

impl GossipNode {
    /// `true` once this node holds the rumor.
    pub fn informed(&self) -> bool {
        self.informed
    }
}

impl Node for GossipNode {
    type Msg = GossipMsg;

    fn on_round(
        &mut self,
        inbox: &mut Vec<Envelope<GossipMsg>>,
        ctx: &mut RoundContext<'_, GossipMsg>,
    ) {
        for env in inbox.drain(..) {
            match env.payload {
                GossipMsg::Push => self.informed = true,
                GossipMsg::PullReq => self.pull_requesters.push(env.src),
                GossipMsg::Delegate { lo, hi } => {
                    debug_assert_eq!(lo, u32::from(ctx.id()));
                    self.informed = true;
                    self.range = Some((lo, hi));
                }
            }
        }
        match self.strategy {
            GossipStrategy::PushPull => {
                for req in std::mem::take(&mut self.pull_requesters) {
                    if self.informed && req != ctx.id() {
                        ctx.send(req, GossipMsg::Push);
                    }
                }
                if self.n <= 1 {
                    return;
                }
                // One contact per round: informed machines push, the
                // rest pull.
                let me = u32::from(ctx.id());
                let peer = {
                    let rng = ctx.rng();
                    let mut p = rng.random_range(0..self.n - 1);
                    if p >= me {
                        p += 1;
                    }
                    NodeId::new(p)
                };
                if self.informed {
                    ctx.send(peer, GossipMsg::Push);
                } else {
                    ctx.send(peer, GossipMsg::PullReq);
                }
            }
            GossipStrategy::AddressedSplit => {
                if let Some((lo, hi)) = self.range {
                    if hi - lo > 1 {
                        let mid = lo + (hi - lo).div_ceil(2);
                        ctx.send(NodeId::new(mid), GossipMsg::Delegate { lo: mid, hi });
                        self.range = Some((lo, mid));
                    }
                }
            }
        }
    }
}

use rand::Rng;

/// Outcome of a gossip run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipReport {
    /// Whether everyone learned the rumor within the round budget.
    pub completed: bool,
    /// Rounds until completion.
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Total pointers carried.
    pub pointers: u64,
}

/// Runs a gossip protocol over `n` machines on a complete knowledge
/// graph, with the rumor starting at machine 0.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn run_gossip(strategy: GossipStrategy, n: usize, seed: u64) -> GossipReport {
    assert!(n > 0, "gossip needs at least one machine");
    let nodes: Vec<GossipNode> = (0..n)
        .map(|i| GossipNode {
            strategy,
            n: n as u32,
            informed: i == 0,
            range: if i == 0 && strategy == GossipStrategy::AddressedSplit {
                Some((0, n as u32))
            } else {
                None
            },
            pull_requesters: Vec::new(),
        })
        .collect();
    let mut engine = Engine::new(nodes, seed);
    let outcome = engine.run_until(100_000, |nodes: &[GossipNode]| {
        nodes.iter().all(|g| g.informed)
    });
    GossipReport {
        completed: outcome.completed,
        rounds: outcome.rounds,
        messages: engine.metrics().total_messages(),
        pointers: engine.metrics().total_pointers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressed_split_is_message_optimal() {
        for n in [1usize, 2, 3, 8, 17, 64, 100, 1024] {
            let r = run_gossip(GossipStrategy::AddressedSplit, n, 1);
            assert!(r.completed, "n={n}");
            assert_eq!(r.messages, (n - 1) as u64, "n={n}");
        }
    }

    #[test]
    fn addressed_split_is_round_optimal() {
        // ⌈log₂ n⌉ delegation hops, plus one round because the engine
        // delivers a message sent in round t at the start of round t + 1.
        for (n, expect) in [(2usize, 2u64), (4, 3), (8, 4), (1024, 11), (1000, 11)] {
            let r = run_gossip(GossipStrategy::AddressedSplit, n, 1);
            assert_eq!(r.rounds, expect, "n={n}");
        }
    }

    #[test]
    fn push_pull_completes_in_logarithmic_rounds() {
        let r = run_gossip(GossipStrategy::PushPull, 1024, 3);
        assert!(r.completed);
        // ~log2(n) + ln(n) with constants; generous bound.
        assert!(r.rounds <= 40, "rounds = {}", r.rounds);
    }

    #[test]
    fn push_pull_spends_superlinear_messages() {
        let r = run_gossip(GossipStrategy::PushPull, 512, 3);
        assert!(r.completed);
        assert!(
            r.messages >= 3 * 512,
            "suspiciously few messages: {}",
            r.messages
        );
    }

    #[test]
    fn singleton_needs_nothing() {
        for s in [GossipStrategy::PushPull, GossipStrategy::AddressedSplit] {
            let r = run_gossip(s, 1, 1);
            assert!(r.completed);
            assert_eq!(r.rounds, 0);
            assert_eq!(r.messages, 0);
        }
    }

    #[test]
    fn push_pull_deterministic_per_seed() {
        assert_eq!(
            run_gossip(GossipStrategy::PushPull, 128, 9),
            run_gossip(GossipStrategy::PushPull, 128, 9)
        );
    }

    #[test]
    fn strategy_names() {
        assert_eq!(GossipStrategy::PushPull.name(), "push-pull");
        assert_eq!(GossipStrategy::AddressedSplit.name(), "addressed-split");
    }
}
