#![warn(missing_docs)]

//! # rd-event
//!
//! A deterministic **discrete-event** execution engine for the
//! resource-discovery reproduction: message deliveries are timed events
//! ordered by `(arrival tick, tiebreak rank)`, per-message latency
//! comes from a pluggable [`LatencyModel`], nodes carry logical clocks,
//! and non-message events (retransmission timeouts) are first-class
//! timers in a [`TimerWheel`].
//!
//! The round engines (`rd-sim`'s sequential engine, `rd-exec`'s sharded
//! engine) execute lockstep synchronous rounds: every message takes
//! exactly one round (or `1 + U{0..=j}` under the jitter knob). Real
//! networks are asynchronous — constant multi-tick RTTs, heavy-tailed
//! stragglers, directionally asymmetric links. [`EventEngine`] expresses
//! all of those while keeping the workspace's determinism discipline:
//!
//! * **Latency draws are counter-based.** Each transmission's latency is
//!   a pure function of `(seed, src, dst, tick, sequence, attempt)`
//!   through a dedicated RNG domain
//!   ([`rd_sim::rng::message_latency_rng`]), so queue state and event
//!   order can never feed back into the draws.
//! * **Deliveries are ordered by `(time, rank)`.** In-flight messages
//!   sit in the core's time-keyed delivery queue; within a tick they
//!   arrive in canonical `(send tick, sender, send-sequence)` order.
//!   No hash maps, no wall clock: same seed + same model ⇒
//!   byte-identical event order and byte-identical run archives.
//! * **Timeouts are timer events.** Under reliable delivery, a dropped
//!   message arms a wake-up in the [`TimerWheel`]; retransmission
//!   attempts run exactly when their timer fires (and re-arm on
//!   backoff), not via an every-round sweep.
//! * **One tick of the event clock equals one round of the round
//!   engines** when the model is `const:1` — the engines are then
//!   bit-identical (same metrics, traces, node states, and archives),
//!   which is enforced by the cross-engine equivalence property suite.
//!
//! ```
//! use rd_event::{EventEngine, LatencyModel};
//! use rd_sim::{Envelope, MessageCost, Node, NodeId, RoundContext};
//!
//! struct Ping;
//! #[derive(Debug)]
//! struct Unit;
//! impl MessageCost for Unit {
//!     fn pointers(&self) -> usize { 0 }
//! }
//! impl Node for Ping {
//!     type Msg = Unit;
//!     fn on_round(&mut self, _: &mut Vec<Envelope<Unit>>, ctx: &mut RoundContext<'_, Unit>) {
//!         if ctx.round() == 0 && ctx.id() == NodeId::new(0) {
//!             ctx.send(NodeId::new(1), Unit);
//!         }
//!     }
//! }
//!
//! // Messages take exactly 4 ticks — a regime no round engine can express.
//! let mut engine = EventEngine::new(
//!     vec![Ping, Ping],
//!     7,
//!     LatencyModel::Constant { ticks: 4 },
//! );
//! for _ in 0..5 {
//!     engine.step();
//! }
//! assert_eq!(engine.metrics().total_messages(), 1);
//! ```

mod latency;
mod timer;

pub use latency::LatencyModel;
pub use timer::{TimerId, TimerWheel};

use rd_obs::{CausalTrace, Phase, Recorder};
use rd_sim::{
    round_obs, step_node, take_capped, EngineCore, Envelope, FaultPlan, Node, RetryPolicy,
    RoundEngine, RunMetrics, RunOutcome, Trace,
};
use std::time::Instant;

/// Engine-internal timer payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Wake up and drain the retransmission queue.
    Retransmit,
}

/// Drives a population of [`Node`] programs through discrete simulated
/// time with per-message latencies from a [`LatencyModel`].
///
/// Each [`step`](EventEngine::step) advances simulated time by one
/// tick: due deliveries and timers fire, every live node runs once (its
/// logical clock advancing), and its sends are routed with latencies
/// drawn from the model. Under `LatencyModel::Constant { ticks: 1 }`
/// the engine is bit-identical to the synchronous round engines.
///
/// See the crate-level documentation for the determinism argument.
pub struct EventEngine<N: Node> {
    nodes: Vec<N>,
    core: EngineCore<N::Msg>,
    latency: LatencyModel,
    /// Per-node logical clocks: ticks the node has actually executed.
    /// Crashed nodes freeze; recovered nodes resume behind global time.
    clocks: Vec<u64>,
    timers: TimerWheel<TimerKind>,
    /// The armed retransmission wake-up, tracking the earliest due slot
    /// of the core's retransmission queue.
    retx_timer: Option<TimerId>,
    /// Tick-persistent staging buffer for outgoing envelopes.
    staged: Vec<Envelope<N::Msg>>,
    /// Tick-persistent scratch buffer for capped inbox delivery.
    scratch: Vec<Envelope<N::Msg>>,
    obs: Option<Recorder>,
}

impl<N: Node> EventEngine<N> {
    /// Creates an engine over `nodes` with the given latency model,
    /// where node `i` has identifier `NodeId::new(i)`. `seed`
    /// determines all protocol, fault, and latency randomness.
    ///
    /// # Panics
    ///
    /// Panics if the latency model's parameters are invalid (see
    /// [`LatencyModel::validate`]).
    pub fn new(nodes: Vec<N>, seed: u64, latency: LatencyModel) -> Self {
        if let Err(err) = latency.validate() {
            panic!("invalid latency model: {err}");
        }
        let core = EngineCore::new(nodes.len(), seed);
        let clocks = vec![0; nodes.len()];
        EventEngine {
            nodes,
            core,
            latency,
            clocks,
            timers: TimerWheel::new(),
            retx_timer: None,
            staged: Vec::new(),
            scratch: Vec::new(),
            obs: None,
        }
    }

    /// Attaches a telemetry [`Recorder`]. Purely observational — a run
    /// with a recorder is bit-identical to the same run without one.
    /// Span rows carry the simulated tick in their round field.
    pub fn with_obs(mut self, mut recorder: Recorder) -> Self {
        // One-time message-cost registration for the profiler (no-op
        // unless profiling is on).
        recorder.profile_msg_kind(
            rd_sim::short_type_name::<N::Msg>(),
            std::mem::size_of::<Envelope<N::Msg>>() as u64,
            std::mem::size_of::<rd_sim::NodeId>() as u64,
        );
        self.obs = Some(recorder);
        self
    }

    /// Installs a fault plan (drops, crashes, partitions).
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes a node index that does not exist.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.core.set_faults(faults);
        self
    }

    /// Enables message tracing with the given event capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.core.enable_trace(capacity);
        self
    }

    /// Attaches a causal knowledge-provenance trace. Purely
    /// observational; provenance edges carry simulated send/delivery
    /// ticks, so heavy-tail stragglers are visible in the causal DAG.
    pub fn with_causal_trace(mut self, causal: CausalTrace) -> Self {
        self.core.set_causal(causal);
        self
    }

    /// Caps deliveries at `cap` messages per node per tick; excess
    /// messages queue (in arrival order) for later ticks.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_receive_cap(mut self, cap: usize) -> Self {
        self.core.set_receive_cap(cap);
        self
    }

    /// Enables reliable delivery. Unlike the round engines' end-of-round
    /// sweep, timeouts here are real timer events: each parked
    /// retransmission arms a wake-up in the timer wheel, and attempts
    /// run exactly when it fires. Attempt latencies are drawn from the
    /// latency model on the message's own counter-based axes.
    ///
    /// # Panics
    ///
    /// Panics if the policy's timeout or retry budget is 0.
    pub fn with_reliable_delivery(mut self, policy: RetryPolicy) -> Self {
        self.core.set_reliable(policy);
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to the node programs.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Simulated time: ticks executed so far. One tick is one unit of
    /// the latency model; under `const:1` it coincides with the round
    /// counter of the synchronous engines.
    pub fn now(&self) -> u64 {
        self.core.round()
    }

    /// The per-node logical clocks: how many ticks each node has
    /// actually executed. A node's clock trails [`now`](Self::now) by
    /// the ticks it spent crashed.
    pub fn clocks(&self) -> &[u64] {
        &self.clocks
    }

    /// The engine's latency model.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// The complexity record.
    pub fn metrics(&self) -> &RunMetrics {
        self.core.metrics()
    }

    /// The message trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace()
    }

    /// The causal provenance trace, if enabled.
    pub fn causal(&self) -> Option<&CausalTrace> {
        self.core.causal()
    }

    /// `(fired, cancelled)` counters of the engine's timer wheel.
    pub fn timer_stats(&self) -> (u64, u64) {
        self.timers.stats()
    }

    /// Executes one tick of simulated time: delivers due messages,
    /// fires due timers, runs every live node, routes its sends with
    /// model-drawn latencies, and makes due retransmission attempts.
    pub fn step(&mut self) {
        if let Some(rec) = &mut self.obs {
            rec.begin_round();
        }
        let t_begin = self.obs.as_ref().map(|_| Instant::now());
        let now = self.core.begin_round();
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::BeginRound, now, 0, t_begin.unwrap());
        }
        let suspects = self.core.suspects().to_vec();

        let t_step = self.obs.as_ref().map(|_| Instant::now());
        let state = self.core.step_state();
        let crashes_possible = state.faults.has_crashes();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if crashes_possible && state.faults.is_crashed_at(i, now) {
                // Crashed nodes neither run nor receive (their clock
                // freezes); pending deliveries are consumed and lost.
                state.inboxes[i].clear();
                continue;
            }
            self.clocks[i] += 1;
            let inbox = take_capped(&mut state.inboxes[i], &mut self.scratch, state.receive_cap);
            step_node(node, i, now, state.seed, &suspects, inbox, &mut self.staged);
        }
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::OnRound, now, 0, t_step.unwrap());
        }

        let t_route = self.obs.as_ref().map(|_| Instant::now());
        let seed = self.core.seed();
        let latency = self.latency;
        self.core
            .route_batch_timed(&mut self.staged, |src, dst, sequence| {
                latency.sample(seed, src, dst, now, sequence, 0)
            });
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::RouteShard, now, 0, t_route.unwrap());
        }

        let t_finish = self.obs.as_ref().map(|_| Instant::now());
        // Timers fire at the end of their tick, before time advances —
        // the instant the round engines run their end-of-round sweep,
        // so `const:1` runs replay them exactly.
        let fired = self.timers.fire_due(now);
        if fired.iter().any(|(_, kind)| *kind == TimerKind::Retransmit) {
            self.retx_timer = None;
            self.core.process_due_retransmissions_timed(
                |src, dst, orig_round, orig_seq, attempt| {
                    latency.sample(seed, src, dst, orig_round, orig_seq, attempt)
                },
            );
        }
        self.rearm_retransmission_timer();
        self.core.finish_tick();
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::FinishRound, now, 0, t_finish.unwrap());
            // Profiler self-cost: time the recorder's own round-close
            // bookkeeping as a `Telemetry` span (profiling only).
            let t_tel = rec.profiling_enabled().then(Instant::now);
            let row = *self.core.metrics().rounds().last().expect("open round row");
            rec.end_round(round_obs(now, &row));
            if let Some(t) = t_tel {
                rec.span_from(Phase::Telemetry, now, 0, t);
            }
        }
    }

    /// Keeps exactly one armed wake-up, tracking the earliest due slot
    /// of the retransmission queue: cancels a stale timer (the queue
    /// head moved after a drain or a new earlier park) and arms the
    /// current deadline. Missing a deadline would silently disable
    /// reliable delivery, so the timer wheel is load-bearing here.
    fn rearm_retransmission_timer(&mut self) {
        let due = self.core.next_retransmission_due();
        if self.retx_timer.map(|t| t.deadline()) == due {
            return;
        }
        if let Some(stale) = self.retx_timer.take() {
            self.timers.cancel(stale);
        }
        if let Some(at) = due {
            self.retx_timer = Some(self.timers.arm(at, TimerKind::Retransmit));
        }
    }

    /// Runs until `done(nodes)` holds (checked before the first tick
    /// and after every tick) or `max_ticks` have executed.
    pub fn run_until(&mut self, max_ticks: u64, done: impl FnMut(&[N]) -> bool) -> RunOutcome {
        RoundEngine::run_until(self, max_ticks, done)
    }

    /// Like [`run_until`](Self::run_until), additionally invoking
    /// `observe(tick, nodes)` after every tick.
    pub fn run_observed(
        &mut self,
        max_ticks: u64,
        done: impl FnMut(&[N]) -> bool,
        observe: impl FnMut(u64, &[N]),
    ) -> RunOutcome {
        RoundEngine::run_observed(self, max_ticks, done, observe)
    }
}

impl<N: Node> RoundEngine<N> for EventEngine<N> {
    fn step(&mut self) {
        EventEngine::step(self)
    }

    fn nodes(&self) -> &[N] {
        EventEngine::nodes(self)
    }

    fn round(&self) -> u64 {
        self.now()
    }

    fn metrics(&self) -> &RunMetrics {
        EventEngine::metrics(self)
    }

    fn trace(&self) -> Option<&Trace> {
        EventEngine::trace(self)
    }

    fn causal(&self) -> Option<&CausalTrace> {
        self.core.causal()
    }

    fn take_causal(&mut self) -> Option<CausalTrace> {
        self.core.take_causal()
    }

    fn obs_mut(&mut self) -> Option<&mut Recorder> {
        self.obs.as_mut()
    }

    fn take_obs(&mut self) -> Option<Recorder> {
        self.obs.take()
    }

    fn pool_counters(&self) -> Vec<(&'static str, u64, u64)> {
        let stats = self.core.pool_stats();
        let (fired, cancelled) = self.timers.stats();
        vec![
            ("delay", stats.takes, stats.reuses),
            ("timer", fired, cancelled),
        ]
    }

    fn pool_high_water(&self) -> Vec<(&'static str, u64)> {
        vec![("delay", self.core.pool_high_water_bytes())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_sim::{Engine, MessageCost, NodeId, RoundContext};

    /// Test payload: a bag of ids.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ids(Vec<NodeId>);
    impl MessageCost for Ids {
        fn pointers(&self) -> usize {
            self.0.len()
        }
    }

    /// Broadcast relay: node 0 floods a token along a ring; each node
    /// forwards once.
    struct RingRelay {
        next: NodeId,
        has_token: bool,
        forwarded: bool,
    }

    impl rd_sim::Node for RingRelay {
        type Msg = Ids;
        fn on_round(&mut self, inbox: &mut Vec<Envelope<Ids>>, ctx: &mut RoundContext<'_, Ids>) {
            if ctx.round() == 0 && ctx.id() == NodeId::new(0) {
                self.has_token = true;
            }
            for env in inbox.drain(..) {
                assert_eq!(env.dst, ctx.id());
                self.has_token = true;
            }
            if self.has_token && !self.forwarded {
                self.forwarded = true;
                if self.next != ctx.id() {
                    ctx.send(self.next, Ids(vec![ctx.id()]));
                }
            }
        }
    }

    fn ring(n: usize) -> Vec<RingRelay> {
        (0..n)
            .map(|i| RingRelay {
                next: NodeId::new(((i + 1) % n) as u32),
                has_token: false,
                forwarded: false,
            })
            .collect()
    }

    fn all_have_token(nodes: &[RingRelay]) -> bool {
        nodes.iter().all(|r| r.has_token)
    }

    const SYNC: LatencyModel = LatencyModel::Constant { ticks: 1 };

    #[test]
    fn unit_latency_matches_the_round_engine_exactly() {
        let mut round = Engine::new(ring(8), 42).with_trace(64);
        let mut event = EventEngine::new(ring(8), 42, SYNC).with_trace(64);
        let ro = round.run_until(100, all_have_token);
        let eo = event.run_until(100, all_have_token);
        assert_eq!(ro, eo);
        assert_eq!(
            round.metrics().total_messages(),
            event.metrics().total_messages()
        );
        assert_eq!(
            round.metrics().total_pointers(),
            event.metrics().total_pointers()
        );
        assert_eq!(round.metrics().rounds(), event.metrics().rounds());
        assert_eq!(
            round.trace().unwrap().events(),
            event.trace().unwrap().events()
        );
    }

    #[test]
    fn constant_latency_stretches_time_proportionally() {
        // Each ring hop takes 3 ticks instead of 1: the last of 4 nodes
        // first processes the token at tick 9, i.e. on the 10th step.
        let mut engine = EventEngine::new(ring(4), 1, LatencyModel::Constant { ticks: 3 });
        let outcome = engine.run_until(100, all_have_token);
        assert!(outcome.completed);
        assert_eq!(outcome.rounds, 10);
        assert_eq!(engine.metrics().total_messages(), 4);
    }

    #[test]
    fn same_seed_replays_identically_under_jitter() {
        let run = |seed: u64| {
            let mut e = EventEngine::new(ring(8), seed, LatencyModel::Uniform { min: 1, max: 6 });
            let o = e.run_until(300, all_have_token);
            (
                o,
                e.metrics().total_messages(),
                e.metrics().total_pointers(),
            )
        };
        assert_eq!(run(5), run(5));
        assert!(run(5).0.completed);
    }

    #[test]
    fn heavy_tail_draws_preserve_every_message() {
        let model = LatencyModel::LogNormal {
            mu_milli: 1200,
            sigma_milli: 900,
            cap: 24,
        };
        let mut engine = EventEngine::new(ring(8), 9, model);
        let outcome = engine.run_until(400, all_have_token);
        assert!(outcome.completed);
        assert_eq!(
            engine.metrics().total_messages(),
            8,
            "no message lost to delay"
        );
        assert!(outcome.rounds >= 8, "stragglers cannot beat sync time");
    }

    #[test]
    fn asymmetric_links_are_directional() {
        // A 2-node ping over both directions: 0→1 takes 1 tick, 1→0
        // takes 5. The round trip therefore completes at tick 6.
        struct Pong {
            start: bool,
            got: Vec<u64>,
        }
        impl rd_sim::Node for Pong {
            type Msg = Ids;
            fn on_round(
                &mut self,
                inbox: &mut Vec<Envelope<Ids>>,
                ctx: &mut RoundContext<'_, Ids>,
            ) {
                for env in inbox.drain(..) {
                    self.got.push(ctx.round());
                    if env.src == NodeId::new(0) {
                        ctx.send(NodeId::new(0), Ids(vec![]));
                    }
                }
                if self.start && ctx.round() == 0 {
                    ctx.send(NodeId::new(1), Ids(vec![]));
                }
            }
        }
        let nodes = vec![
            Pong {
                start: true,
                got: vec![],
            },
            Pong {
                start: false,
                got: vec![],
            },
        ];
        let model = LatencyModel::Asymmetric {
            forward: 1,
            backward: 5,
        };
        let mut engine = EventEngine::new(nodes, 3, model);
        for _ in 0..8 {
            engine.step();
        }
        assert_eq!(engine.nodes()[1].got, vec![1], "0→1 took one tick");
        assert_eq!(engine.nodes()[0].got, vec![6], "1→0 took five ticks");
    }

    #[test]
    fn logical_clocks_freeze_while_crashed() {
        let faults = FaultPlan::new().with_crash_at(1, 2).with_recovery_at(1, 5);
        let mut engine = EventEngine::new(ring(3), 1, SYNC).with_faults(faults);
        for _ in 0..8 {
            engine.step();
        }
        assert_eq!(engine.now(), 8);
        assert_eq!(engine.clocks()[0], 8, "healthy node tracks global time");
        assert_eq!(engine.clocks()[1], 5, "crashed node lost ticks 2..5");
    }

    #[test]
    fn reliable_delivery_retries_via_timer_events() {
        // Node 1 is dead for ticks 2..8, exactly when the token reaches
        // it; timer-driven retransmissions recover the broadcast.
        let faults = FaultPlan::new().with_crash_at(1, 1).with_recovery_at(1, 8);
        let policy = RetryPolicy {
            timeout: 2,
            max_retries: 8,
            max_backoff: 4,
        };
        let mut engine = EventEngine::new(ring(4), 1, SYNC)
            .with_faults(faults)
            .with_reliable_delivery(policy);
        let outcome = engine.run_until(100, all_have_token);
        assert!(outcome.completed);
        assert!(engine.metrics().total_retransmissions() >= 1);
        let (fired, _) = engine.timer_stats();
        assert!(fired >= 1, "retransmissions must ride on timer events");
    }

    #[test]
    fn timer_driven_retries_match_the_round_engine_sweep() {
        let faults = || FaultPlan::new().with_drop_probability(0.4);
        let policy = RetryPolicy::default();
        let mut round = Engine::new(ring(8), 11)
            .with_faults(faults())
            .with_reliable_delivery(policy);
        let mut event = EventEngine::new(ring(8), 11, SYNC)
            .with_faults(faults())
            .with_reliable_delivery(policy);
        let ro = round.run_until(200, all_have_token);
        let eo = event.run_until(200, all_have_token);
        assert_eq!(ro, eo);
        assert_eq!(round.metrics().rounds(), event.metrics().rounds());
        assert_eq!(
            round.metrics().total_retransmissions(),
            event.metrics().total_retransmissions()
        );
    }

    #[test]
    fn receive_cap_applies_per_tick() {
        struct Blaster {
            got: Vec<NodeId>,
        }
        impl rd_sim::Node for Blaster {
            type Msg = Ids;
            fn on_round(
                &mut self,
                inbox: &mut Vec<Envelope<Ids>>,
                ctx: &mut RoundContext<'_, Ids>,
            ) {
                for env in inbox.drain(..) {
                    self.got.push(env.src);
                }
                if ctx.round() == 0 && ctx.id() != NodeId::new(0) {
                    ctx.send(NodeId::new(0), Ids(vec![]));
                }
            }
        }
        let nodes = (0..4).map(|_| Blaster { got: vec![] }).collect();
        let mut engine = EventEngine::new(nodes, 1, SYNC).with_receive_cap(1);
        for _ in 0..5 {
            engine.step();
        }
        assert_eq!(
            engine.nodes()[0].got,
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]
        );
    }

    #[test]
    #[should_panic(expected = "invalid latency model")]
    fn invalid_model_is_rejected_at_construction() {
        let _ = EventEngine::new(ring(2), 1, LatencyModel::Constant { ticks: 0 });
    }
}
