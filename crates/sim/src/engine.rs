//! The synchronous round engine.

use crate::engine_core::{step_node, take_capped, EngineCore, RetryPolicy};
use crate::faults::FaultPlan;
use crate::message::Envelope;
use crate::metrics::{round_obs, RunMetrics};
use crate::node::Node;
use crate::trace::Trace;
use rd_obs::{CausalTrace, Phase, Recorder};
use std::time::Instant;

/// Result of [`RoundEngine::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether the completion predicate became true within the round
    /// budget.
    pub completed: bool,
    /// Rounds executed when the run stopped.
    pub rounds: u64,
}

/// The driving interface every execution engine exposes: step rounds,
/// observe nodes, read the clock and the complexity record.
///
/// [`Engine`] (sequential, this crate) and the sharded engine in
/// `rd-exec` both implement it, so runners, experiments, and completion
/// predicates are engine-agnostic. The provided [`run_until`] and
/// [`run_observed`] loops — including the per-round progress callback —
/// are therefore shared, not re-implemented per engine.
///
/// [`run_until`]: RoundEngine::run_until
/// [`run_observed`]: RoundEngine::run_observed
pub trait RoundEngine<N: Node> {
    /// Executes one synchronous round: delivers current inboxes, runs
    /// every live node, and routes outboxes through the fault layer.
    fn step(&mut self);

    /// Read access to the node programs (for completion predicates,
    /// verification, and white-box observations such as cluster counts).
    fn nodes(&self) -> &[N];

    /// Rounds executed so far.
    fn round(&self) -> u64;

    /// The complexity record.
    fn metrics(&self) -> &RunMetrics;

    /// The message trace, if enabled.
    fn trace(&self) -> Option<&Trace>;

    /// The causal knowledge-provenance trace, if enabled. Like the
    /// recorder, it is write-only from the engine's side and never
    /// feeds back into protocol execution.
    fn causal(&self) -> Option<&CausalTrace> {
        None
    }

    /// Detaches the causal provenance trace so the driver can archive
    /// it after the run.
    fn take_causal(&mut self) -> Option<CausalTrace> {
        None
    }

    /// The attached telemetry recorder, if observability is enabled.
    /// Strictly write-only from the engine's side: recorder state never
    /// feeds back into protocol execution.
    fn obs_mut(&mut self) -> Option<&mut Recorder> {
        None
    }

    /// Detaches the recorder so the driver can call
    /// [`Recorder::finish`] after the run.
    fn take_obs(&mut self) -> Option<Recorder> {
        None
    }

    /// `(name, takes, reuses)` counters for every buffer pool the
    /// engine owns (observability export).
    fn pool_counters(&self) -> Vec<(&'static str, u64, u64)> {
        Vec::new()
    }

    /// `(name, peak_bytes)` high-water marks for every buffer pool the
    /// engine owns (profiler export). Like [`pool_counters`], read once
    /// by the driver after the run; never consulted by engine logic.
    ///
    /// [`pool_counters`]: Self::pool_counters
    fn pool_high_water(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Runs until `done(nodes)` holds (checked before the first round and
    /// after every round) or `max_rounds` have executed.
    fn run_until(&mut self, max_rounds: u64, mut done: impl FnMut(&[N]) -> bool) -> RunOutcome
    where
        Self: Sized,
    {
        self.run_observed(max_rounds, &mut done, |_, _| {})
    }

    /// Like [`run_until`](Self::run_until), additionally invoking
    /// `observe(round, nodes)` after every round — the per-round progress
    /// hook white-box experiments (e.g. cluster-count evolution, figure
    /// F3) and long-run progress reporting use.
    fn run_observed(
        &mut self,
        max_rounds: u64,
        mut done: impl FnMut(&[N]) -> bool,
        mut observe: impl FnMut(u64, &[N]),
    ) -> RunOutcome
    where
        Self: Sized,
    {
        if done(self.nodes()) {
            return RunOutcome {
                completed: true,
                rounds: self.round(),
            };
        }
        while self.round() < max_rounds {
            self.step();
            observe(self.round(), self.nodes());
            if done(self.nodes()) {
                return RunOutcome {
                    completed: true,
                    rounds: self.round(),
                };
            }
        }
        RunOutcome {
            completed: false,
            rounds: self.round(),
        }
    }
}

/// Drives a population of [`Node`] programs through synchronous rounds.
///
/// Per round, the engine hands every live node its inbox (messages sent
/// to it in the previous round) together with a deterministic
/// per-`(seed, node, round)` random generator, then routes the node's
/// outbox through the fault layer into next-round inboxes, accounting
/// every message in [`RunMetrics`].
///
/// See the crate-level documentation for a complete example.
pub struct Engine<N: Node> {
    nodes: Vec<N>,
    core: EngineCore<N::Msg>,
    /// Round-persistent staging buffer for outgoing envelopes; drained
    /// by routing, so its allocation is reused every round.
    staged: Vec<Envelope<N::Msg>>,
    /// Round-persistent scratch buffer for capped inbox delivery.
    scratch: Vec<Envelope<N::Msg>>,
    /// Telemetry recorder; `None` (the default) costs one branch per
    /// phase and never reads a clock.
    obs: Option<Recorder>,
}

impl<N: Node> Engine<N> {
    /// Creates an engine over `nodes`, where node `i` has identifier
    /// `NodeId::new(i)`. `seed` determines all protocol and fault
    /// randomness.
    pub fn new(nodes: Vec<N>, seed: u64) -> Self {
        let core = EngineCore::new(nodes.len(), seed);
        Engine {
            nodes,
            core,
            staged: Vec::new(),
            scratch: Vec::new(),
            obs: None,
        }
    }

    /// Attaches a telemetry [`Recorder`]: phases are timed, rounds are
    /// archived, and the recorder's sinks export at run end. Purely
    /// observational — a run with a recorder is bit-identical to the
    /// same run without one.
    pub fn with_obs(mut self, mut recorder: Recorder) -> Self {
        // One-time message-cost registration: the profiler attributes
        // per-kind byte costs at finish from these constants plus the
        // deterministic round counters (no-op unless profiling is on).
        recorder.profile_msg_kind(
            crate::short_type_name::<N::Msg>(),
            std::mem::size_of::<Envelope<N::Msg>>() as u64,
            std::mem::size_of::<crate::NodeId>() as u64,
        );
        self.obs = Some(recorder);
        self
    }

    /// Installs a fault plan (drops, crashes).
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes a node index that does not exist.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.core.set_faults(faults);
        self
    }

    /// Enables message tracing with the given event capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.core.enable_trace(capacity);
        self
    }

    /// Attaches a causal knowledge-provenance trace: the routing phase
    /// records, per `(id, node)` pair, the first delivered message that
    /// could have taught `node` about `id` (deterministically sampled
    /// at the trace's ppm rate). Purely observational — a run with the
    /// trace is bit-identical to the same run without it.
    pub fn with_causal_trace(mut self, causal: CausalTrace) -> Self {
        self.core.set_causal(causal);
        self
    }

    /// Caps deliveries at `cap` messages per node per round; excess
    /// messages queue (in arrival order) for later rounds. Models the
    /// *connection bottleneck* of bandwidth-limited networks: protocols
    /// whose hot spots (e.g. a popular merge target) rely on unbounded
    /// fan-in slow down accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (nothing could ever be delivered).
    pub fn with_receive_cap(mut self, cap: usize) -> Self {
        self.core.set_receive_cap(cap);
        self
    }

    /// Makes delivery asynchronous: every message independently takes
    /// `1 + U{0..=max_extra}` rounds to arrive instead of exactly one.
    /// With this knob the round counter reads as *time units* and the
    /// synchronized phase structure of round-based protocols is
    /// deliberately scrambled — the robustness-to-asynchrony experiment.
    pub fn with_max_extra_delay(mut self, max_extra: u64) -> Self {
        self.core.set_max_extra_delay(max_extra);
        self
    }

    /// Enables reliable delivery: every dropped message is
    /// retransmitted under `policy` (per-message timeout, capped
    /// exponential backoff, bounded retry budget), with every attempt
    /// charged against the message-complexity metrics.
    ///
    /// # Panics
    ///
    /// Panics if the policy's timeout or retry budget is 0.
    pub fn with_reliable_delivery(mut self, policy: RetryPolicy) -> Self {
        self.core.set_reliable(policy);
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to the node programs (for completion predicates,
    /// verification, and white-box observations such as cluster counts).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.core.round()
    }

    /// The complexity record.
    pub fn metrics(&self) -> &RunMetrics {
        self.core.metrics()
    }

    /// The message trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace()
    }

    /// The causal provenance trace, if enabled.
    pub fn causal(&self) -> Option<&CausalTrace> {
        self.core.causal()
    }

    /// Executes one synchronous round: delivers current inboxes, runs
    /// every live node, and routes outboxes through the fault layer.
    pub fn step(&mut self) {
        if let Some(rec) = &mut self.obs {
            rec.begin_round();
        }
        let t_begin = self.obs.as_ref().map(|_| Instant::now());
        let round = self.core.begin_round();
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::BeginRound, round, 0, t_begin.unwrap());
        }
        // Cloned so the report can be lent to nodes while the engine
        // mutates them (the list is tiny: one entry per crash).
        let suspects = self.core.suspects().to_vec();

        let t_step = self.obs.as_ref().map(|_| Instant::now());
        let state = self.core.step_state();
        // Hoisted: with no crashes scheduled (the common case) the
        // per-node map probe below is skipped entirely.
        let crashes_possible = state.faults.has_crashes();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if crashes_possible && state.faults.is_crashed_at(i, round) {
                // Crashed nodes neither run nor receive; their pending
                // deliveries are consumed and lost.
                state.inboxes[i].clear();
                continue;
            }
            let inbox = take_capped(&mut state.inboxes[i], &mut self.scratch, state.receive_cap);
            step_node(
                node,
                i,
                round,
                state.seed,
                &suspects,
                inbox,
                &mut self.staged,
            );
        }

        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::OnRound, round, 0, t_step.unwrap());
        }

        let t_route = self.obs.as_ref().map(|_| Instant::now());
        self.core.route_batch(&mut self.staged);
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::RouteShard, round, 0, t_route.unwrap());
        }

        let t_finish = self.obs.as_ref().map(|_| Instant::now());
        self.core.finish_round();
        if let Some(rec) = &mut self.obs {
            rec.span_from(Phase::FinishRound, round, 0, t_finish.unwrap());
            // Under profiling, the recorder's own round-close
            // bookkeeping is timed as a `Telemetry` span so the
            // profiler's self-cost shows up in the attribution instead
            // of inflating the unattributed remainder.
            let t_tel = rec.profiling_enabled().then(Instant::now);
            let row = *self.core.metrics().rounds().last().expect("open round row");
            rec.end_round(round_obs(round, &row));
            if let Some(t) = t_tel {
                rec.span_from(Phase::Telemetry, round, 0, t);
            }
        }
    }

    /// Runs until `done(nodes)` holds (checked before the first round and
    /// after every round) or `max_rounds` have executed.
    pub fn run_until(&mut self, max_rounds: u64, done: impl FnMut(&[N]) -> bool) -> RunOutcome {
        RoundEngine::run_until(self, max_rounds, done)
    }

    /// Like [`run_until`](Self::run_until), additionally invoking
    /// `observe(round, nodes)` after every round — the hook white-box
    /// experiments (e.g. cluster-count evolution, figure F3) use.
    pub fn run_observed(
        &mut self,
        max_rounds: u64,
        done: impl FnMut(&[N]) -> bool,
        observe: impl FnMut(u64, &[N]),
    ) -> RunOutcome {
        RoundEngine::run_observed(self, max_rounds, done, observe)
    }
}

impl<N: Node> RoundEngine<N> for Engine<N> {
    fn step(&mut self) {
        Engine::step(self)
    }

    fn nodes(&self) -> &[N] {
        Engine::nodes(self)
    }

    fn round(&self) -> u64 {
        Engine::round(self)
    }

    fn metrics(&self) -> &RunMetrics {
        Engine::metrics(self)
    }

    fn trace(&self) -> Option<&Trace> {
        Engine::trace(self)
    }

    fn causal(&self) -> Option<&CausalTrace> {
        self.core.causal()
    }

    fn take_causal(&mut self) -> Option<CausalTrace> {
        self.core.take_causal()
    }

    fn obs_mut(&mut self) -> Option<&mut Recorder> {
        self.obs.as_mut()
    }

    fn take_obs(&mut self) -> Option<Recorder> {
        self.obs.take()
    }

    fn pool_counters(&self) -> Vec<(&'static str, u64, u64)> {
        let stats = self.core.pool_stats();
        vec![("delay", stats.takes, stats.reuses)]
    }

    fn pool_high_water(&self) -> Vec<(&'static str, u64)> {
        vec![("delay", self.core.pool_high_water_bytes())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;
    use crate::message::MessageCost;
    use crate::node::RoundContext;

    /// Test payload: a bag of ids.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ids(Vec<NodeId>);
    impl MessageCost for Ids {
        fn pointers(&self) -> usize {
            self.0.len()
        }
    }

    /// Broadcast relay: node 0 floods a token along a ring; each node
    /// forwards once.
    struct RingRelay {
        next: NodeId,
        has_token: bool,
        forwarded: bool,
    }

    impl Node for RingRelay {
        type Msg = Ids;
        fn on_round(&mut self, inbox: &mut Vec<Envelope<Ids>>, ctx: &mut RoundContext<'_, Ids>) {
            if ctx.round() == 0 && ctx.id() == NodeId::new(0) {
                self.has_token = true;
            }
            for env in inbox.drain(..) {
                assert_eq!(env.dst, ctx.id());
                self.has_token = true;
            }
            if self.has_token && !self.forwarded {
                self.forwarded = true;
                if self.next != ctx.id() {
                    ctx.send(self.next, Ids(vec![ctx.id()]));
                }
            }
        }
    }

    fn ring(n: usize) -> Vec<RingRelay> {
        (0..n)
            .map(|i| RingRelay {
                next: NodeId::new(((i + 1) % n) as u32),
                has_token: false,
                forwarded: false,
            })
            .collect()
    }

    #[test]
    fn ring_broadcast_takes_n_rounds() {
        // Node i first processes the token in round i, so the last node
        // holds it only after the n-th step.
        let mut engine = Engine::new(ring(8), 1);
        let outcome = engine.run_until(100, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(outcome.completed);
        assert_eq!(outcome.rounds, 8);
        // Every node forwarded exactly once; the last delivery closes the
        // ring back to node 0.
        assert_eq!(engine.metrics().total_messages(), 8);
        assert_eq!(engine.metrics().total_pointers(), 8);
    }

    #[test]
    fn completion_checked_before_first_round() {
        let mut engine = Engine::new(ring(4), 1);
        let outcome = engine.run_until(100, |_| true);
        assert!(outcome.completed);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(engine.metrics().round_count(), 0);
    }

    #[test]
    fn round_budget_is_respected() {
        let mut engine = Engine::new(ring(8), 1);
        let outcome = engine.run_until(3, |_| false);
        assert!(!outcome.completed);
        assert_eq!(outcome.rounds, 3);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut e = Engine::new(ring(16), seed);
            let o = e.run_until(64, |nodes| nodes.iter().all(|r| r.has_token));
            (
                o,
                e.metrics().total_messages(),
                e.metrics().total_pointers(),
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn crashed_node_breaks_the_ring() {
        let mut engine = Engine::new(ring(8), 1).with_faults(FaultPlan::new().with_crashes([4]));
        let outcome = engine.run_until(100, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(!outcome.completed);
        // Token reached nodes 1..4 then died at the crashed node.
        let have: Vec<bool> = engine.nodes().iter().map(|r| r.has_token).collect();
        assert_eq!(
            have,
            vec![true, true, true, true, false, false, false, false]
        );
        assert_eq!(engine.metrics().total_dropped(), 1);
    }

    #[test]
    fn drops_slow_but_are_accounted() {
        // With a ring, a single drop halts the broadcast: use it to check
        // drop accounting end-to-end at p close to 1.
        let mut engine =
            Engine::new(ring(4), 3).with_faults(FaultPlan::new().with_drop_probability(0.999));
        let outcome = engine.run_until(10, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(!outcome.completed);
        assert!(engine.metrics().total_dropped() >= 1);
    }

    #[test]
    fn trace_records_sends() {
        let mut engine = Engine::new(ring(4), 1).with_trace(100);
        engine.run_until(10, |nodes| nodes.iter().all(|r| r.has_token));
        let trace = engine.trace().unwrap();
        assert_eq!(trace.events().len(), 4);
        assert_eq!(trace.in_round(0).count(), 1);
        assert_eq!(trace.events()[0].src, NodeId::new(0));
        assert_eq!(trace.events()[0].dst, NodeId::new(1));
    }

    #[test]
    fn observer_sees_every_round() {
        let mut engine = Engine::new(ring(5), 1);
        let mut observed = Vec::new();
        engine.run_observed(
            100,
            |nodes| nodes.iter().all(|r| r.has_token),
            |round, nodes| observed.push((round, nodes.iter().filter(|r| r.has_token).count())),
        );
        assert_eq!(observed.len(), 5);
        assert_eq!(observed.first(), Some(&(1, 1)));
        assert_eq!(observed.last(), Some(&(5, 5)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crashing_nonexistent_node_rejected() {
        let _ = Engine::new(ring(2), 1).with_faults(FaultPlan::new().with_crashes([9]));
    }

    #[test]
    fn dynamic_crash_kills_mid_run() {
        // Node 4 dies at round 3: the token (which reaches it in round 4)
        // is lost in flight.
        let mut engine = Engine::new(ring(8), 1).with_faults(FaultPlan::new().with_crash_at(4, 3));
        let outcome = engine.run_until(100, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(!outcome.completed);
        let have: Vec<bool> = engine.nodes().iter().map(|r| r.has_token).collect();
        assert_eq!(
            have,
            vec![true, true, true, true, false, false, false, false]
        );
    }

    #[test]
    fn dynamic_crash_after_passing_token_is_harmless() {
        // Node 4 forwards the token in round 4 and dies at round 6: the
        // broadcast still completes.
        let mut engine = Engine::new(ring(8), 1).with_faults(FaultPlan::new().with_crash_at(4, 6));
        let outcome = engine.run_until(100, |nodes| {
            nodes.iter().enumerate().all(|(i, r)| i == 4 || r.has_token)
        });
        assert!(outcome.completed);
    }

    /// Probe used by detector tests: records the suspect reports it sees.
    struct SuspectWatcher {
        seen: Vec<(u64, Vec<NodeId>)>,
    }
    impl Node for SuspectWatcher {
        type Msg = Ids;
        fn on_round(&mut self, _inbox: &mut Vec<Envelope<Ids>>, ctx: &mut RoundContext<'_, Ids>) {
            self.seen.push((ctx.round(), ctx.suspects().to_vec()));
        }
    }

    #[test]
    fn detector_reports_each_crash_after_its_latency() {
        let watchers = vec![
            SuspectWatcher { seen: vec![] },
            SuspectWatcher { seen: vec![] },
            SuspectWatcher { seen: vec![] },
        ];
        let mut engine = Engine::new(watchers, 1).with_faults(
            FaultPlan::new()
                .with_crashes([1])
                .with_crash_at(2, 4)
                .with_crash_detection_after(3),
        );
        for _ in 0..10 {
            engine.step();
        }
        let seen = &engine.nodes()[0].seen;
        let at = |round: u64| -> &[NodeId] { &seen.iter().find(|(r, _)| *r == round).unwrap().1 };
        assert!(at(2).is_empty(), "node 1 reported before its latency");
        assert_eq!(at(3), &[NodeId::new(1)]);
        assert_eq!(at(6), &[NodeId::new(1)], "node 2 dies at 4, reported at 7");
        assert_eq!(at(7), &[NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn recovery_plus_reliable_delivery_completes_the_ring() {
        // Node 4 is dead for rounds 2..8, exactly when the token would
        // reach it. Reliable delivery keeps retrying the in-flight hop
        // until node 4 recovers, and the broadcast completes.
        let mut engine = Engine::new(ring(8), 1)
            .with_faults(FaultPlan::new().with_crash_at(4, 2).with_recovery_at(4, 8))
            .with_reliable_delivery(RetryPolicy {
                timeout: 1,
                max_retries: 8,
                max_backoff: 2,
            });
        let outcome = engine.run_until(100, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(outcome.completed);
        assert!(engine.metrics().total_retransmissions() >= 1);
        assert!(engine.metrics().drop_tally().crash >= 1);
    }

    #[test]
    fn partition_blocks_the_boundary_until_it_heals() {
        let split = || FaultPlan::new().with_partition([vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 0, 6);
        // Best-effort: the 3→4 hop is inside the window and the token
        // dies at the boundary.
        let mut engine = Engine::new(ring(8), 1).with_faults(split());
        let outcome = engine.run_until(100, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(!outcome.completed);
        assert_eq!(engine.metrics().drop_tally().partition, 1);
        // Reliable delivery: a retransmission crosses after the heal.
        let mut engine = Engine::new(ring(8), 1)
            .with_faults(split())
            .with_reliable_delivery(RetryPolicy::default());
        let outcome = engine.run_until(100, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(outcome.completed);
        assert!(engine.metrics().total_retransmissions() >= 1);
    }

    #[test]
    fn recovered_node_resumes_with_its_pre_crash_state() {
        // Node 4 forwards the token in round 4, dies at 5, recovers at
        // 9: the broadcast already completed through it, and its own
        // has_token state survives the outage.
        let mut engine = Engine::new(ring(8), 1)
            .with_faults(FaultPlan::new().with_crash_at(4, 5).with_recovery_at(4, 9));
        let outcome = engine.run_until(100, |nodes| nodes.iter().all(|r| r.has_token));
        assert!(outcome.completed);
        assert!(engine.nodes()[4].has_token);
    }

    #[test]
    fn receive_cap_defers_excess_messages() {
        // Three senders target node 0 in round 0; with cap 1, node 0
        // sees them one per round, oldest first.
        struct Blaster {
            got: Vec<NodeId>,
        }
        impl Node for Blaster {
            type Msg = Ids;
            fn on_round(
                &mut self,
                inbox: &mut Vec<Envelope<Ids>>,
                ctx: &mut RoundContext<'_, Ids>,
            ) {
                for env in inbox.drain(..) {
                    self.got.push(env.src);
                }
                if ctx.round() == 0 && ctx.id() != NodeId::new(0) {
                    ctx.send(NodeId::new(0), Ids(vec![]));
                }
            }
        }
        let nodes = (0..4).map(|_| Blaster { got: vec![] }).collect();
        let mut engine = Engine::new(nodes, 1).with_receive_cap(1);
        for _ in 0..5 {
            engine.step();
        }
        assert_eq!(
            engine.nodes()[0].got,
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]
        );
        // Uncapped, all three arrive in round 1 together.
        let nodes = (0..4).map(|_| Blaster { got: vec![] }).collect();
        let mut engine = Engine::new(nodes, 1);
        engine.step();
        engine.step();
        assert_eq!(engine.nodes()[0].got.len(), 3);
    }

    #[test]
    #[should_panic(expected = "never deliver")]
    fn zero_receive_cap_rejected() {
        let _ = Engine::new(ring(2), 1).with_receive_cap(0);
    }

    #[test]
    fn async_delays_preserve_delivery_and_determinism() {
        // The ring broadcast still completes under heavy jitter, just
        // slower, and identically for identical seeds.
        let run = |seed: u64| {
            let mut e = Engine::new(ring(8), seed).with_max_extra_delay(4);
            let o = e.run_until(200, |nodes| nodes.iter().all(|r| r.has_token));
            (o, e.metrics().total_messages())
        };
        let (outcome, messages) = run(5);
        assert!(outcome.completed);
        assert_eq!(messages, 8, "no message may be lost to delay");
        assert!(outcome.rounds >= 8, "jitter cannot beat the sync time");
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn zero_extra_delay_is_exactly_synchronous() {
        let sync = {
            let mut e = Engine::new(ring(8), 1);
            e.run_until(100, |nodes| nodes.iter().all(|r| r.has_token))
        };
        let zero = {
            let mut e = Engine::new(ring(8), 1).with_max_extra_delay(0);
            e.run_until(100, |nodes| nodes.iter().all(|r| r.has_token))
        };
        assert_eq!(sync, zero);
    }

    #[test]
    fn no_detector_means_no_reports() {
        let watchers = vec![
            SuspectWatcher { seen: vec![] },
            SuspectWatcher { seen: vec![] },
        ];
        let mut engine = Engine::new(watchers, 1).with_faults(FaultPlan::new().with_crashes([1]));
        for _ in 0..5 {
            engine.step();
        }
        assert!(engine.nodes()[0].seen.iter().all(|(_, s)| s.is_empty()));
    }
}
