//! A free list of reusable `Vec` buffers.
//!
//! The round loop of both engines churns through short-lived vectors —
//! staging buffers, routing buckets, delay batches — whose sizes repeat
//! round after round. [`BufferPool`] keeps the allocations alive across
//! rounds: [`take`](BufferPool::take) hands out a cleared buffer with
//! its old capacity intact, [`put`](BufferPool::put) returns it. After a
//! couple of warm-up rounds the hot path stops allocating entirely.

/// Hit-rate counters of a [`BufferPool`]: how often `take` was called
/// and how often it could reuse a pooled allocation. Observation only —
/// exported by the telemetry layer, never read by engine logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub takes: u64,
    /// Of `takes`: served from the free list (the rest allocated fresh).
    pub reuses: u64,
}

/// A bounded free list of `Vec<T>` buffers.
///
/// Returned buffers are cleared (length 0) but keep their capacity. The
/// pool holds a bounded number of spares so a one-off burst of buffers
/// cannot pin memory forever.
#[derive(Debug)]
pub struct BufferPool<T> {
    spares: Vec<Vec<T>>,
    stats: PoolStats,
    /// Total element capacity currently parked in `spares`.
    spare_capacity: usize,
    /// Largest `spare_capacity` ever reached — the pool's memory
    /// footprint at its fullest, in elements.
    high_water: usize,
}

/// Spares kept beyond this are dropped instead of pooled.
const MAX_SPARES: usize = 64;

impl<T> BufferPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool {
            spares: Vec::new(),
            stats: PoolStats::default(),
            spare_capacity: 0,
            high_water: 0,
        }
    }

    /// Hands out an empty buffer, reusing a pooled allocation when one
    /// is available.
    pub fn take(&mut self) -> Vec<T> {
        self.stats.takes += 1;
        match self.spares.pop() {
            Some(buf) => {
                self.stats.reuses += 1;
                self.spare_capacity -= buf.capacity();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Lifetime take/reuse counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Returns a buffer to the pool. Its contents are dropped; its
    /// allocation is kept for the next [`take`](Self::take) (unless the
    /// pool is full or the buffer never allocated).
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > 0 && self.spares.len() < MAX_SPARES {
            self.spare_capacity += buf.capacity();
            self.high_water = self.high_water.max(self.spare_capacity);
            self.spares.push(buf);
        }
    }

    /// Peak bytes ever parked in the free list at once. Observation
    /// only — sampled by the profiler at run end, never read by engine
    /// logic.
    pub fn high_water_bytes(&self) -> u64 {
        (self.high_water * std::mem::size_of::<T>()) as u64
    }

    /// Number of pooled spare buffers.
    pub fn spares(&self) -> usize {
        self.spares.len()
    }
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        BufferPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_capacity() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        let mut buf = pool.take();
        buf.extend(0..100);
        let ptr = buf.as_ptr();
        pool.put(buf);

        let buf = pool.take();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 100);
        assert_eq!(buf.as_ptr(), ptr, "allocation should be reused");
        assert_eq!(
            pool.stats(),
            PoolStats {
                takes: 2,
                reuses: 1
            }
        );
    }

    #[test]
    fn capacityless_buffers_are_not_pooled() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.spares(), 0);
    }

    #[test]
    fn high_water_tracks_peak_parked_capacity() {
        let mut pool: BufferPool<u64> = BufferPool::new();
        assert_eq!(pool.high_water_bytes(), 0);
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(8));
        // Peak: 24 elements parked at once.
        assert_eq!(pool.high_water_bytes(), 24 * 8);
        let _a = pool.take();
        let _b = pool.take();
        // Draining the pool does not lower the high-water mark.
        assert_eq!(pool.high_water_bytes(), 24 * 8);
        pool.put(Vec::with_capacity(4));
        assert_eq!(pool.high_water_bytes(), 24 * 8);
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        for _ in 0..200 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.spares(), MAX_SPARES);
    }
}
