//! Optional message tracing for debugging and white-box tests.

use crate::faults::DropCause;
use crate::id::NodeId;

/// One traced message delivery (or drop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round in which the message was sent.
    pub round: u64,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Pointers carried.
    pub pointers: usize,
    /// Why fault injection discarded the message (`None` = delivered).
    pub dropped: Option<DropCause>,
}

impl TraceEvent {
    /// Whether fault injection discarded the message.
    pub fn is_dropped(&self) -> bool {
        self.dropped.is_some()
    }
}

/// A bounded in-memory message trace.
///
/// Disabled by default; when enabled on the engine it records every send
/// up to a capacity limit, after which further events are counted but not
/// stored (so a runaway protocol cannot exhaust memory through its own
/// debugging aid).
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    overflow: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            overflow: 0,
        }
    }

    /// Records an event (or bumps the overflow counter at capacity).
    pub(crate) fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.overflow += 1;
        }
    }

    /// Adds events that were observed but not stored (used when folding
    /// per-worker trace fragments whose local buffers overflowed).
    pub(crate) fn add_overflow(&mut self, count: u64) {
        self.overflow += count;
    }

    /// The configured event capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The recorded events, in send order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events that arrived after the trace filled up.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total events observed: stored plus overflowed. A consumer must
    /// compare this against `events().len()` (or check `overflow()`)
    /// before treating the stored prefix as the complete story.
    pub fn total_events(&self) -> u64 {
        self.events.len() as u64 + self.overflow
    }

    /// Events sent in a given round.
    pub fn in_round(&self, round: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.round == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> TraceEvent {
        TraceEvent {
            round,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            pointers: 0,
            dropped: None,
        }
    }

    #[test]
    fn records_until_capacity_then_counts() {
        let mut t = Trace::with_capacity(2);
        t.record(ev(0));
        t.record(ev(0));
        t.record(ev(1));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.overflow(), 1);
        assert_eq!(t.total_events(), 3);
    }

    #[test]
    fn in_round_filters() {
        let mut t = Trace::with_capacity(10);
        t.record(ev(0));
        t.record(ev(1));
        t.record(ev(1));
        assert_eq!(t.in_round(1).count(), 2);
        assert_eq!(t.in_round(2).count(), 0);
    }
}
