//! Exhaustive small-instance verification: every algorithm, on **every**
//! weakly connected directed graph with up to 4 nodes.
//!
//! Property tests sample the instance space; this test closes it for
//! small `n`: all 2⁶ = 64 digraphs on 3 nodes and all 2¹² = 4096 on 4
//! nodes (self-loops excluded by construction), filtered to the weakly
//! connected ones, each run to completion and soundness-checked. A
//! protocol bug that depends on some exotic little configuration — a
//! two-node cycle hanging off a sink, mutual edges, an isolated
//! in-degree-zero source — cannot hide here.

use resource_discovery::core::algorithms::hm::{HmConfig, MergeRule};
use resource_discovery::core::algorithms::{
    DiscoveryAlgorithm, Flooding, HmDiscovery, NameDropper, PointerDoubling, Swamping,
};
use resource_discovery::core::problem;
use resource_discovery::core::runner::RunReport;
use resource_discovery::graphs::{connectivity, DiGraph};
use resource_discovery::sim::{Engine, NodeId};

/// All ordered node pairs `(u, v)`, `u != v`, for `n` nodes.
fn pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v {
                out.push((u, v));
            }
        }
    }
    out
}

/// Every weakly connected digraph on `n` nodes, as edge bitmasks.
fn weakly_connected_graphs(n: usize) -> Vec<DiGraph> {
    let pairs = pairs(n);
    let mut out = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        let edges = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e);
        let g = DiGraph::from_edges(n, edges);
        if connectivity::is_weakly_connected(&g) {
            out.push(g);
        }
    }
    out
}

fn run_on<A>(alg: &A, g: &DiGraph, seed: u64) -> RunReport
where
    A: DiscoveryAlgorithm,
    A::NodeState: resource_discovery::sim::Node,
{
    // The runner regenerates from a Topology; here the instance is an
    // explicit graph, so drive the engine directly and mirror the
    // runner's checks.
    let initial = problem::initial_knowledge(g);
    let nodes = alg.make_nodes(&initial);
    let mut engine = Engine::new(nodes, seed);
    let outcome = engine.run_until(4_000, problem::everyone_knows_everyone);
    let nodes = engine.nodes();
    let n = g.node_count();
    let sound = nodes.iter().enumerate().all(|(i, node)| {
        use resource_discovery::core::KnowledgeView;
        node.knows(NodeId::new(i as u32)) && node.known_ids().iter().all(|id| id.index() < n)
    });
    RunReport {
        algorithm: alg.name(),
        topology: "explicit".into(),
        n,
        seed,
        completed: outcome.completed,
        verdict: if outcome.completed {
            resource_discovery::core::runner::RunVerdict::Complete
        } else {
            resource_discovery::core::runner::RunVerdict::BudgetExhausted
        },
        rounds: outcome.rounds,
        messages: engine.metrics().total_messages(),
        pointers: engine.metrics().total_pointers(),
        bits: engine.metrics().total_bits(),
        drops: Default::default(),
        retransmissions: 0,
        trace_events: 0,
        trace_overflow: 0,
        detector_retractions: 0,
        max_sent_messages: engine.metrics().max_sent_messages(),
        max_recv_messages: engine.metrics().max_recv_messages(),
        mean_messages_per_node: engine.metrics().mean_messages_per_node(),
        sound,
    }
}

fn exhaust<A>(alg: &A, n: usize)
where
    A: DiscoveryAlgorithm,
    A::NodeState: resource_discovery::sim::Node,
{
    let graphs = weakly_connected_graphs(n);
    assert!(!graphs.is_empty());
    for (i, g) in graphs.iter().enumerate() {
        let report = run_on(alg, g, 7);
        assert!(
            report.completed,
            "{} failed on graph #{i} of n={n}: edges {:?}",
            report.algorithm,
            g.iter_edges().collect::<Vec<_>>()
        );
        assert!(
            report.sound,
            "{} unsound on graph #{i} of n={n}",
            report.algorithm
        );
    }
}

#[test]
fn three_node_space_is_fully_covered() {
    // Sanity on the enumeration itself: of the 64 digraphs on 3 nodes,
    // exactly the weakly connected ones survive the filter, and both
    // extremes are present.
    let graphs = weakly_connected_graphs(3);
    assert!(
        graphs.iter().any(|g| g.edge_count() == 2),
        "spanning trees present"
    );
    assert!(
        graphs.iter().any(|g| g.edge_count() == 6),
        "complete graph present"
    );
    assert!(
        graphs.len() > 30 && graphs.len() < 64,
        "{} graphs",
        graphs.len()
    );
}

#[test]
fn hm_completes_on_every_small_instance() {
    exhaust(&HmDiscovery::default(), 3);
    exhaust(&HmDiscovery::default(), 4);
}

#[test]
fn hm_variants_complete_on_every_small_instance() {
    for rule in [MergeRule::RandomAbove, MergeRule::MinAbove] {
        exhaust(
            &HmDiscovery::new(HmConfig {
                merge_rule: rule,
                ..Default::default()
            }),
            4,
        );
    }
    exhaust(
        &HmDiscovery::new(HmConfig {
            parallel_probes: false,
            ..Default::default()
        }),
        4,
    );
}

#[test]
fn baselines_complete_on_every_small_instance() {
    exhaust(&Flooding, 4);
    exhaust(&NameDropper, 4);
    exhaust(&PointerDoubling, 4);
    exhaust(&Swamping, 4);
}
