#![warn(missing_docs)]

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored so `cargo bench` works in network-less
//! environments.
//!
//! It implements the `criterion_group!`/`criterion_main!` entry points
//! and the `Criterion`/`BenchmarkGroup`/`Bencher` measurement API the
//! workspace's benches use. Measurement is deliberately simple: each
//! bench runs `sample_size` timed samples (after one warm-up call) and
//! reports min / median / mean wall-clock per iteration. When invoked by
//! `cargo test` (any `--test`-ish harness flag present), every bench
//! body executes exactly once as a smoke test, so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when the binary was NOT launched by `cargo bench`. Cargo
/// appends `--bench` to bench executables it runs via `cargo bench` (and
/// `--test` via `cargo test`), so anything without `--bench` — test
/// runs, `--list` probes, direct invocation — executes each bench body
/// exactly once, untimed, keeping test runs fast.
fn smoke_mode() -> bool {
    !std::env::args().any(|a| a == "--bench")
}

/// A named benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke: bool,
}

impl Bencher {
    /// Calls `body` repeatedly, timing each sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.smoke {
            black_box(body());
            return;
        }
        black_box(body()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} [smoke: ran once, untimed]");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        sorted[0],
        median,
        mean,
        sorted.len()
    );
}

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        smoke: smoke_mode(),
    };
    f(&mut b);
    report(name, &b.samples);
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benches `f`, handing it the input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Benches `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted for API compatibility; the
    /// stand-in has no tunable CLI).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benches a standalone function with the default sample size.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, 20, f);
        self
    }
}

/// Bundles bench functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        group.finish();
        // Smoke mode (under cargo test): the body ran exactly once.
        assert!(runs >= 1);
    }

    #[test]
    fn ids_render_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("hm", 4096).to_string(), "hm/4096");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
