//! Structural metrics of knowledge graphs: BFS distances, eccentricity,
//! diameter, and degree statistics.
//!
//! The round lower bound `Ω(log D)` discussed in DESIGN.md §1.1 is stated
//! in terms of the diameter `D` of the *undirected closure* of the initial
//! knowledge graph, so that is the diameter this module computes by
//! default.

use crate::connectivity;
use crate::digraph::DiGraph;

/// Distance (in hops) from `src` to every node following directed edges;
/// `u32::MAX` marks unreachable nodes.
pub fn bfs_distances(g: &DiGraph, src: usize) -> Vec<u32> {
    let n = g.node_count();
    assert!(src < n, "source {src} out of range for n={n}");
    let mut dist = vec![u32::MAX; n];
    dist[src] = 0;
    let mut frontier = vec![src as u32];
    let mut next = Vec::new();
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        for &u in &frontier {
            for &v in g.out(u as usize) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = d;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// Eccentricity of `src` in `g` (max finite BFS distance), or `None` if
/// some node is unreachable from `src`.
pub fn eccentricity(g: &DiGraph, src: usize) -> Option<u32> {
    let dist = bfs_distances(g, src);
    let mut ecc = 0;
    for &d in &dist {
        if d == u32::MAX {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Exact diameter of the undirected closure of `g`, or `None` when the
/// graph is not weakly connected (diameter undefined) or has no nodes.
///
/// Runs one BFS per node — `O(n · (n + m))` — which is fine for the graph
/// sizes used in unit tests and topology validation. Use
/// [`approx_undirected_diameter`] in sweeps.
pub fn undirected_diameter(g: &DiGraph) -> Option<u32> {
    let u = g.undirected_closure();
    let n = u.node_count();
    if n == 0 || !connectivity::is_weakly_connected(g) {
        return None;
    }
    let mut diam = 0;
    for src in 0..n {
        diam = diam.max(eccentricity(&u, src)?);
    }
    Some(diam)
}

/// Lower bound on the undirected diameter via the double-sweep heuristic:
/// BFS from `src`, then BFS from the farthest node found. Exact on trees,
/// a tight lower bound in practice; `O(n + m)`.
pub fn approx_undirected_diameter(g: &DiGraph, src: usize) -> Option<u32> {
    let u = g.undirected_closure();
    if u.node_count() == 0 || !connectivity::is_weakly_connected(g) {
        return None;
    }
    let d1 = bfs_distances(&u, src);
    let far = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| i)?;
    eccentricity(&u, far)
}

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Out-degree statistics of `g`. Returns `None` for the empty graph.
pub fn out_degree_stats(g: &DiGraph) -> Option<DegreeStats> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut min = usize::MAX;
    let mut max = 0;
    for u in 0..n {
        let d = g.out_degree(u);
        min = min.min(d);
        max = max.max(d);
    }
    Some(DegreeStats {
        min,
        max,
        mean: g.edge_count() as f64 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> DiGraph {
        DiGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_on_path_counts_hops() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![u32::MAX, u32::MAX, 0, 1, 2]);
    }

    #[test]
    fn eccentricity_none_when_unreachable() {
        let g = path(4);
        assert_eq!(eccentricity(&g, 0), Some(3));
        assert_eq!(eccentricity(&g, 3), None);
    }

    #[test]
    fn path_diameter_is_n_minus_one() {
        assert_eq!(undirected_diameter(&path(6)), Some(5));
    }

    #[test]
    fn star_diameter_is_two() {
        let g = DiGraph::from_edges(5, (1..5).map(|i| (0, i)));
        assert_eq!(undirected_diameter(&g), Some(2));
    }

    #[test]
    fn disconnected_diameter_is_none() {
        assert_eq!(undirected_diameter(&DiGraph::new(3)), None);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = path(33);
        assert_eq!(approx_undirected_diameter(&g, 16), Some(32));
    }

    #[test]
    fn double_sweep_lower_bounds_exact() {
        // A 4x4 grid (undirected via closure).
        let mut g = DiGraph::new(16);
        for r in 0..4 {
            for c in 0..4 {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < 4 {
                    g.add_edge(v, v + 4);
                }
            }
        }
        let exact = undirected_diameter(&g).unwrap();
        let approx = approx_undirected_diameter(&g, 5).unwrap();
        assert!(approx <= exact);
        assert_eq!(exact, 6);
    }

    #[test]
    fn degree_stats_of_star() {
        let g = DiGraph::from_edges(4, (1..4).map(|i| (0, i)));
        let s = out_degree_stats(&g).unwrap();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert!((s.mean - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty_graph() {
        assert_eq!(out_degree_stats(&DiGraph::new(0)), None);
    }
}
