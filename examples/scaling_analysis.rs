//! Scaling analysis: sweep, fit, and plot — the measurement pipeline in
//! one sitting.
//!
//! Runs a small rounds-vs-n sweep for two algorithms, fits every
//! candidate scaling law, and draws the curves as a terminal plot —
//! exactly what the full benchmark harness does, at espresso scale.
//!
//! ```text
//! cargo run --release --example scaling_analysis
//! ```

use resource_discovery::analysis::experiment::{sweep, SweepSpec};
use resource_discovery::analysis::{best_fit, Plot};
use resource_discovery::prelude::*;

fn main() {
    let ns = vec![64, 128, 256, 512, 1024, 2048];
    let kinds = vec![
        AlgorithmKind::Hm(HmConfig::default()),
        AlgorithmKind::NameDropper,
    ];
    println!("sweeping {} sizes x {} algorithms x 3 seeds...", ns.len(), kinds.len());
    let cells = sweep(&SweepSpec {
        kinds: kinds.clone(),
        topology: Topology::KOut { k: 3 },
        ns: ns.clone(),
        seeds: 0..3,
        ..Default::default()
    });

    let mut plot = Plot::new(56, 12).with_log_x();
    for kind in &kinds {
        let name = kind.name();
        let series: Vec<(f64, f64)> = cells
            .iter()
            .filter(|c| c.algorithm == name)
            .map(|c| (c.n as f64, c.rounds.mean))
            .collect();
        let xs: Vec<f64> = series.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = series.iter().map(|&(_, y)| y).collect();
        let ranked = best_fit(&xs, &ys);
        println!("\n{name}:");
        for fit in ranked.iter().take(2) {
            println!("  {fit}");
        }
        let ci = cells
            .iter()
            .rev()
            .find(|c| c.algorithm == name)
            .map(|c| c.rounds.ci95())
            .unwrap();
        println!(
            "  95% CI for the mean at n={}: [{:.1}, {:.1}]",
            ns.last().unwrap(),
            ci.0,
            ci.1
        );
        plot.series(name, series);
    }
    println!("\nrounds vs n (log x):\n{plot}");
}
