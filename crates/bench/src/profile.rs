//! Sweep sizing profiles.

use rd_core::runner::AlgorithmKind;

/// How big the experiment sweeps run.
///
/// The message-heavy baselines are capped at smaller `n` than the
/// message-frugal algorithms: flooding moves `Θ(n²)` envelopes per round
/// and Name-Dropper `Θ(n²)` pointers per round near completion, so their
/// caps keep the full profile practical on a laptop-class machine. The
/// caps are data, not policy — every table states which sizes each
/// algorithm ran at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small sizes and few seeds: used by tests and `--quick`. Minutes.
    Quick,
    /// The sizes EXPERIMENTS.md reports. Tens of minutes on one core.
    Full,
}

impl Profile {
    /// Instance sizes of the headline scaling sweep (T1/F1/T2/F2).
    pub fn scaling_ns(self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![64, 128, 256, 512],
            Profile::Full => vec![256, 512, 1024, 2048, 4096, 8192],
        }
    }

    /// Largest `n` the given algorithm runs at in the scaling sweep.
    pub fn cap_for(self, kind: AlgorithmKind) -> usize {
        match self {
            Profile::Quick => usize::MAX,
            Profile::Full => match kind {
                // Flooding's mid-run rounds ship ~n² envelopes of ~n
                // fresh ids each — Θ(n³·4B) of in-flight payload. 1024
                // peaks around 2 GB; 2048 would need ~34 GB.
                AlgorithmKind::Flooding => 1024,
                // Swamping re-ships full knowledge on every edge every
                // round: strictly worse than flooding.
                AlgorithmKind::Swamping => 512,
                AlgorithmKind::NameDropper | AlgorithmKind::RandomPointerJump => 4096,
                AlgorithmKind::PointerDoubling | AlgorithmKind::Hm(_) => usize::MAX,
            },
        }
    }

    /// Seeds per `(algorithm, n)` cell.
    pub fn seeds(self) -> std::ops::Range<u64> {
        match self {
            Profile::Quick => 0..3,
            Profile::Full => 0..5,
        }
    }

    /// Fixed instance size for the non-scaling experiments (T3/T4/T5).
    /// Bounded by the flooding memory cap, since the survey runs every
    /// contender.
    pub fn survey_n(self) -> usize {
        match self {
            Profile::Quick => 256,
            Profile::Full => 1024,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Profile::Quick.scaling_ns().last() < Profile::Full.scaling_ns().last());
        assert!(Profile::Quick.seeds().count() <= Profile::Full.seeds().count());
        assert!(Profile::Quick.survey_n() < Profile::Full.survey_n());
    }

    #[test]
    fn full_caps_heavy_baselines_only() {
        assert_eq!(Profile::Full.cap_for(AlgorithmKind::Flooding), 1024);
        assert_eq!(Profile::Full.cap_for(AlgorithmKind::NameDropper), 4096);
        assert_eq!(
            Profile::Full.cap_for(AlgorithmKind::PointerDoubling),
            usize::MAX
        );
    }

    #[test]
    fn quick_never_caps() {
        assert_eq!(Profile::Quick.cap_for(AlgorithmKind::Flooding), usize::MAX);
    }
}
