//! Churn property tests: every algorithm of the suite, under random
//! combinations of coin drops, crashes, crash-recoveries, partitions,
//! detection delays, and reliable delivery, must preserve the safety
//! invariants — no fabricated identifiers, self-knowledge, round-over-
//! round monotonicity — and, when it completes, converge on exactly the
//! reachable live component.
//!
//! A second property pins liveness for the self-healing algorithms:
//! with no coin drops and reliable delivery across crash-recovery
//! windows and healing partitions, the live component must actually be
//! reached within a generous round budget.

use proptest::prelude::*;
use resource_discovery::core::algorithms::hm::HmConfig;
use resource_discovery::core::algorithms::{
    Flooding, HmDiscovery, NameDropper, PointerDoubling, RandomPointerJump, Swamping,
};
use resource_discovery::core::{problem, verify, DiscoveryAlgorithm, KnowledgeView};
use resource_discovery::prelude::*;
use resource_discovery::sim::Node;

/// One random churn configuration.
#[derive(Debug, Clone)]
struct Churn {
    topo: Topology,
    n: usize,
    seed: u64,
    faults: FaultPlan,
    reliable: Option<RetryPolicy>,
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Cycle),
        Just(Topology::Path),
        Just(Topology::RandomTree),
        (2usize..5).prop_map(|k| Topology::KOut { k }),
        (2usize..6).prop_map(|avg_degree| Topology::ErdosRenyi { avg_degree }),
    ]
}

/// Builds a fault plan from small drawn integers. `drop_decipct` of 0
/// disables the coin; the liveness property passes 0 explicitly.
#[allow(clippy::too_many_arguments)]
fn build_churn(
    topo: Topology,
    n: usize,
    seed: u64,
    drop_decipct: u32,
    crashes: usize,
    crash_at: u64,
    recover: bool,
    partition: bool,
    detect: bool,
    reliable: bool,
) -> Churn {
    let mut faults = FaultPlan::new().with_drop_probability(drop_decipct as f64 / 10.0);
    for c in 0..crashes {
        let node = (seed.rotate_left(c as u32 * 11) as usize + c * 3) % n;
        faults = faults.with_crash_at(node, crash_at + c as u64);
    }
    if recover && crashes > 0 {
        // The c = 0 crash becomes a crash-recovery window.
        let node = (seed as usize) % n;
        faults = faults.with_recovery_at(node, crash_at + 4);
    }
    if partition {
        let cut = n / 2;
        faults = faults.with_partition(
            [(0..cut).collect::<Vec<_>>(), (cut..n).collect::<Vec<_>>()],
            2,
            7,
        );
    }
    if detect && crashes > 0 {
        faults = faults.with_crash_detection_after(3);
    }
    Churn {
        topo,
        n,
        seed,
        faults,
        reliable: reliable.then_some(RetryPolicy {
            timeout: 1,
            max_retries: 4,
            max_backoff: 4,
        }),
    }
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    (
        arb_topology(),
        8usize..24,
        any::<u64>(),
        (0u32..3, 0usize..3, 0u64..12),
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(topo, n, seed, (drop, crashes, at), (recover, partition, detect, reliable))| {
                build_churn(
                    topo, n, seed, drop, crashes, at, recover, partition, detect, reliable,
                )
            },
        )
}

/// Churn with no coin drops and reliable delivery always on: every
/// live-to-live message eventually lands, so self-healing algorithms
/// must converge on the live component.
fn arb_benign_churn() -> impl Strategy<Value = Churn> {
    (
        arb_topology(),
        8usize..20,
        any::<u64>(),
        (1usize..3, 0u64..8),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(|(topo, n, seed, (crashes, at), (recover, partition))| {
            build_churn(
                topo, n, seed, 0, crashes, at, recover, partition, true, true,
            )
        })
}

fn make_engine<A>(
    alg: &A,
    churn: &Churn,
    initial: &problem::InitialKnowledge,
) -> Engine<A::NodeState>
where
    A: DiscoveryAlgorithm,
    A::NodeState: Node,
{
    let mut engine =
        Engine::new(alg.make_nodes(initial), churn.seed).with_faults(churn.faults.clone());
    if let Some(policy) = churn.reliable {
        engine = engine.with_reliable_delivery(policy);
    }
    engine
}

fn live_mask(churn: &Churn) -> Vec<bool> {
    (0..churn.n)
        .map(|i| !churn.faults.is_permanently_crashed(i))
        .collect()
}

/// Safety under arbitrary churn: no fabrication, identity retained,
/// knowledge monotone every round; and if the run completes, the final
/// state covers the reachable live component.
fn assert_safe<A>(alg: &A, churn: &Churn) -> Result<(), TestCaseError>
where
    A: DiscoveryAlgorithm,
    A::NodeState: Node + KnowledgeView,
{
    let graph = churn.topo.generate(churn.n, churn.seed);
    let initial = problem::initial_knowledge(&graph);
    let mut engine = make_engine(alg, churn, &initial);
    let live = live_mask(churn);
    let live_pred = live.clone();
    let name = alg.name();
    let mut checker = verify::MonotonicityChecker::new();
    let outcome = engine.run_observed(
        400,
        |nodes: &[A::NodeState]| problem::everyone_knows_everyone_among(nodes, &live_pred),
        |round, nodes| {
            if let Err(v) = checker.observe(nodes) {
                panic!("{name}: monotonicity violated at round {round}: {v}");
            }
        },
    );
    let nodes = engine.nodes();
    prop_assert!(verify::no_fabricated_ids(nodes), "{}: fabricated id", name);
    prop_assert!(verify::knows_self(nodes), "{}: lost own identity", name);
    if outcome.completed {
        prop_assert!(
            verify::live_component_complete(nodes, &initial, &live),
            "{}: completed without covering the live component",
            name
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All six algorithms stay safe under arbitrary churn.
    #[test]
    fn churn_never_breaks_safety(churn in arb_churn()) {
        assert_safe(&Flooding, &churn)?;
        assert_safe(&Swamping, &churn)?;
        assert_safe(&RandomPointerJump, &churn)?;
        assert_safe(&NameDropper, &churn)?;
        assert_safe(&PointerDoubling, &churn)?;
        assert_safe(&HmDiscovery::new(HmConfig::default()), &churn)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The self-healing algorithms converge on the reachable live
    /// component under benign churn (no coin drops, reliable delivery,
    /// failure detection).
    #[test]
    fn benign_churn_reaches_the_live_component(churn in arb_benign_churn()) {
        let graph = churn.topo.generate(churn.n, churn.seed);
        let initial = problem::initial_knowledge(&graph);
        let live = live_mask(&churn);

        let mut flood = make_engine(&Flooding, &churn, &initial);
        let outcome = flood.run_until(2_000, |nodes: &[_]| {
            verify::live_component_complete(nodes, &initial, &live)
        });
        prop_assert!(outcome.completed, "flooding never covered its live component");

        let mut swamp = make_engine(&Swamping, &churn, &initial);
        let outcome = swamp.run_until(2_000, |nodes: &[_]| {
            verify::live_component_complete(nodes, &initial, &live)
        });
        prop_assert!(outcome.completed, "swamping never covered its live component");

        let mut dropper = make_engine(&NameDropper, &churn, &initial);
        let outcome = dropper.run_until(2_000, |nodes: &[_]| {
            verify::live_component_complete(nodes, &initial, &live)
        });
        prop_assert!(outcome.completed, "name-dropper never covered its live component");
    }
}
