//! Rendezvous (highest-random-weight) placement.
//!
//! Every machine computes `weight(key, m) = hash(key, m)` for each
//! member `m` and assigns the key to the maximum — the same answer on
//! every machine that holds the same membership, with no communication.
//! Rendezvous hashing's defining property is *minimal disruption*:
//! removing a member reassigns exactly the keys that member owned, and
//! adding one steals from everyone only the keys it now wins.

use crate::hash::mix2;
use rd_sim::NodeId;

/// The rendezvous weight of `member` for `key`.
pub fn weight(key: u64, member: NodeId) -> u64 {
    mix2(key, u64::from(u32::from(member)) + 1)
}

/// The owner of `key` among `members` (ties, which need a 2⁻⁶⁴ fluke,
/// break toward the larger id).
///
/// # Panics
///
/// Panics if `members` is empty.
pub fn owner(key: u64, members: &[NodeId]) -> NodeId {
    assert!(!members.is_empty(), "placement over an empty membership");
    members
        .iter()
        .copied()
        .max_by_key(|&m| (weight(key, m), m))
        .expect("nonempty")
}

/// The `r` distinct members with the highest weights for `key` —
/// the replica set (all members if `r >= members.len()`), best first.
///
/// # Panics
///
/// Panics if `members` is empty or `r == 0`.
pub fn replicas(key: u64, members: &[NodeId], r: usize) -> Vec<NodeId> {
    assert!(!members.is_empty(), "placement over an empty membership");
    assert!(r > 0, "a replica set needs at least one member");
    let mut ranked: Vec<NodeId> = members.to_vec();
    ranked.sort_by_key(|&m| std::cmp::Reverse((weight(key, m), m)));
    ranked.truncate(r);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn owner_is_deterministic_and_member() {
        let m = members(16);
        for key in 0..200 {
            let o = owner(key, &m);
            assert!(m.contains(&o));
            assert_eq!(o, owner(key, &m));
        }
    }

    #[test]
    fn owner_ignores_membership_order() {
        let m = members(16);
        let mut shuffled = m.clone();
        shuffled.reverse();
        for key in 0..200 {
            assert_eq!(owner(key, &m), owner(key, &shuffled));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let m = members(8);
        let mut counts = vec![0u32; 8];
        let keys = 8000;
        for key in 0..keys {
            counts[owner(key, &m).index()] += 1;
        }
        for &c in &counts {
            // Expected 1000 per member; allow ±25%.
            assert!((750..1250).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn removal_moves_only_the_victims_keys() {
        let full = members(10);
        let removed = NodeId::new(4);
        let reduced: Vec<NodeId> = full.iter().copied().filter(|&m| m != removed).collect();
        for key in 0..2000 {
            let before = owner(key, &full);
            let after = owner(key, &reduced);
            if before == removed {
                assert_ne!(after, removed);
            } else {
                assert_eq!(before, after, "key {key} moved needlessly");
            }
        }
    }

    #[test]
    fn addition_steals_only_what_it_wins() {
        let small = members(9);
        let mut grown = small.clone();
        let newcomer = NodeId::new(9);
        grown.push(newcomer);
        for key in 0..2000 {
            let before = owner(key, &small);
            let after = owner(key, &grown);
            assert!(
                after == before || after == newcomer,
                "key {key} hopped sideways"
            );
        }
    }

    #[test]
    fn replicas_are_distinct_ranked_prefixes() {
        let m = members(12);
        for key in 0..100 {
            let r3 = replicas(key, &m, 3);
            assert_eq!(r3.len(), 3);
            assert_eq!(r3[0], owner(key, &m));
            let mut dedup = r3.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 3);
            // Prefix consistency: the top-2 are the first two of top-3.
            assert_eq!(&replicas(key, &m, 2)[..], &r3[..2]);
        }
    }

    #[test]
    fn replicas_clamp_to_membership() {
        let m = members(3);
        assert_eq!(replicas(1, &m, 10).len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty membership")]
    fn empty_membership_rejected() {
        owner(1, &[]);
    }
}
