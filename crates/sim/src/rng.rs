//! Deterministic randomness derivation.
//!
//! Every `(run seed, node, round)` triple deterministically yields an
//! independent random stream, so simulation results never depend on the
//! order in which the engine happens to step nodes, and a run can be
//! replayed bit-for-bit from its seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 — the standard 64-bit seed-scrambling finalizer. Used to
/// derive well-separated sub-seeds from structured inputs whose raw bit
/// patterns are highly correlated (consecutive node indices, consecutive
/// round numbers).
pub fn split_mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines a run seed with a domain label, a node index, and a round
/// number into a single well-mixed sub-seed.
pub fn derive_seed(run_seed: u64, domain: u64, node: u64, round: u64) -> u64 {
    let mut s = split_mix64(run_seed ^ split_mix64(domain));
    s = split_mix64(s ^ split_mix64(node.wrapping_mul(0xa24b_aed4_963e_e407)));
    split_mix64(s ^ split_mix64(round.wrapping_mul(0x9fb2_1c65_1e98_df25)))
}

/// A random generator for one `(node, round)` step of a run.
pub fn node_round_rng(run_seed: u64, node: usize, round: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(run_seed, 0x6e6f_6465, node as u64, round))
}

/// A random generator for routing one message, derived from the run
/// seed, the sender, the round the message was sent in, and the
/// message's send-sequence number within that round (0 for the sender's
/// first send of the round, 1 for its second, …).
///
/// This is the *counter-based* randomness that lets the routing phase
/// run in parallel: the fault-drop and delay-jitter coins of a message
/// are a pure function of `(seed, src, round, sequence)`, so routing
/// one envelope never advances any stream another envelope reads —
/// routing order (and therefore worker count) cannot change any coin.
pub fn message_route_rng(run_seed: u64, src: usize, round: u64, sequence: u64) -> StdRng {
    let s = derive_seed(run_seed, 0x726f_7574, src as u64, round);
    StdRng::seed_from_u64(split_mix64(
        s ^ split_mix64(sequence.wrapping_mul(0xd6e8_feb8_6659_fd93)),
    ))
}

/// A random generator for one *retransmission attempt* of a message,
/// derived from the run seed, the original sender, the round the message
/// was first sent in, its send-sequence number within that round, and
/// the attempt counter (1 for the first retransmission, 2 for the
/// second, …).
///
/// A separate domain keeps retry coins independent of the original
/// routing coins: enabling reliable delivery never perturbs the fate of
/// any first-attempt message, and each attempt's fate is a pure function
/// of `(seed, src, round, sequence, attempt)` — independent of engine
/// kind, worker count, or how many other messages are in flight.
pub fn message_retry_rng(
    run_seed: u64,
    src: usize,
    round: u64,
    sequence: u64,
    attempt: u32,
) -> StdRng {
    let s = derive_seed(run_seed, 0x7265_7472, src as u64, round);
    let seq = split_mix64(sequence.wrapping_mul(0xd6e8_feb8_6659_fd93));
    let att = split_mix64((attempt as u64).wrapping_mul(0xbea2_25f9_eb34_556d));
    StdRng::seed_from_u64(split_mix64(s ^ seq ^ att))
}

/// A random generator for drawing one message's *delivery latency*,
/// derived from the run seed, the sender, the round (simulated tick)
/// the message was sent in, its send-sequence number within that
/// round, and the transmission attempt (0 for the original send, 1 for
/// the first retransmission, …).
///
/// A separate domain keeps latency draws independent of the route,
/// retry, and provenance streams: switching latency models (or moving
/// between the round engines and the discrete-event engine) never
/// perturbs any drop coin, and each draw is a pure function of
/// `(seed, src, round, sequence, attempt)` — independent of event
/// ordering, engine kind, or queue state.
pub fn message_latency_rng(
    run_seed: u64,
    src: usize,
    round: u64,
    sequence: u64,
    attempt: u32,
) -> StdRng {
    let s = derive_seed(run_seed, 0x6c61_7465, src as u64, round);
    let seq = split_mix64(sequence.wrapping_mul(0xd6e8_feb8_6659_fd93));
    let att = split_mix64((attempt as u64).wrapping_mul(0xbea2_25f9_eb34_556d));
    StdRng::seed_from_u64(split_mix64(s ^ seq ^ att))
}

/// The deterministic causal-trace sampling decision for one message,
/// derived — like [`message_route_rng`] — purely from `(seed, src,
/// round, sequence)` plus its own domain label. `sample_ppm` is the
/// acceptance rate in parts per million; rates `>= 1_000_000` accept
/// without drawing at all.
///
/// A separate domain keeps the sampling coin independent of the route
/// and retry streams: enabling (or re-rating) causal tracing can never
/// perturb any message fate, and the counter-based derivation makes the
/// decision identical on every engine and worker count.
pub fn prov_sample(run_seed: u64, src: usize, round: u64, sequence: u64, sample_ppm: u32) -> bool {
    if sample_ppm >= 1_000_000 {
        return true;
    }
    prov_sample_from(prov_base(run_seed, src, round), sequence, sample_ppm)
}

/// The `(run seed, src, round)`-dependent half of the provenance coin.
/// Routing loops receive messages grouped by source, so they hoist this
/// and flip the per-message half with [`prov_sample_from`].
#[inline]
pub fn prov_base(run_seed: u64, src: usize, round: u64) -> u64 {
    derive_seed(run_seed, 0x7072_6f76, src as u64, round)
}

/// The per-message provenance coin given a hoisted [`prov_base`].
/// `prov_sample_from(prov_base(seed, src, round), seq, ppm)` is
/// identical to `prov_sample(seed, src, round, seq, ppm)` by
/// construction.
#[inline]
pub fn prov_sample_from(base: u64, sequence: u64, sample_ppm: u32) -> bool {
    if sample_ppm >= 1_000_000 {
        return true;
    }
    let coin = split_mix64(base ^ split_mix64(sequence.wrapping_mul(0xd6e8_feb8_6659_fd93)));
    coin % 1_000_000 < sample_ppm as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn split_mix_is_deterministic_and_scrambles() {
        assert_eq!(split_mix64(1), split_mix64(1));
        assert_ne!(split_mix64(1), split_mix64(2));
        // Low-entropy inputs map to well-spread outputs.
        let outs: HashSet<u64> = (0..1000).map(split_mix64).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn derived_seeds_separate_every_axis() {
        let base = derive_seed(7, 1, 2, 3);
        assert_ne!(base, derive_seed(8, 1, 2, 3), "run seed ignored");
        assert_ne!(base, derive_seed(7, 2, 2, 3), "domain ignored");
        assert_ne!(base, derive_seed(7, 1, 3, 3), "node ignored");
        assert_ne!(base, derive_seed(7, 1, 2, 4), "round ignored");
    }

    #[test]
    fn node_round_rng_replays_identically() {
        let mut a = node_round_rng(99, 5, 17);
        let mut b = node_round_rng(99, 5, 17);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn adjacent_nodes_get_distinct_streams() {
        let mut a = node_round_rng(99, 5, 17);
        let mut b = node_round_rng(99, 6, 17);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn message_route_rng_replays_identically() {
        let mut a = message_route_rng(99, 5, 17, 3);
        let mut b = message_route_rng(99, 5, 17, 3);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn message_route_rng_separates_every_axis() {
        let first = |mut r: StdRng| r.random::<u64>();
        let base = first(message_route_rng(9, 4, 2, 0));
        assert_ne!(base, first(message_route_rng(8, 4, 2, 0)), "seed ignored");
        assert_ne!(base, first(message_route_rng(9, 5, 2, 0)), "src ignored");
        assert_ne!(base, first(message_route_rng(9, 4, 3, 0)), "round ignored");
        assert_ne!(
            base,
            first(message_route_rng(9, 4, 2, 1)),
            "sequence ignored"
        );
    }

    #[test]
    fn message_retry_rng_separates_every_axis() {
        let first = |mut r: StdRng| r.random::<u64>();
        let base = first(message_retry_rng(9, 4, 2, 0, 1));
        assert_ne!(
            base,
            first(message_retry_rng(8, 4, 2, 0, 1)),
            "seed ignored"
        );
        assert_ne!(base, first(message_retry_rng(9, 5, 2, 0, 1)), "src ignored");
        assert_ne!(
            base,
            first(message_retry_rng(9, 4, 3, 0, 1)),
            "round ignored"
        );
        assert_ne!(
            base,
            first(message_retry_rng(9, 4, 2, 1, 1)),
            "sequence ignored"
        );
        assert_ne!(
            base,
            first(message_retry_rng(9, 4, 2, 0, 2)),
            "attempt ignored"
        );
        // And the retry domain is distinct from the route domain.
        assert_ne!(base, first(message_route_rng(9, 4, 2, 0)));
    }

    #[test]
    fn message_latency_rng_separates_every_axis() {
        let first = |mut r: StdRng| r.random::<u64>();
        let base = first(message_latency_rng(9, 4, 2, 0, 0));
        assert_eq!(base, first(message_latency_rng(9, 4, 2, 0, 0)));
        assert_ne!(
            base,
            first(message_latency_rng(8, 4, 2, 0, 0)),
            "seed ignored"
        );
        assert_ne!(
            base,
            first(message_latency_rng(9, 5, 2, 0, 0)),
            "src ignored"
        );
        assert_ne!(
            base,
            first(message_latency_rng(9, 4, 3, 0, 0)),
            "round ignored"
        );
        assert_ne!(
            base,
            first(message_latency_rng(9, 4, 2, 1, 0)),
            "sequence ignored"
        );
        assert_ne!(
            base,
            first(message_latency_rng(9, 4, 2, 0, 1)),
            "attempt ignored"
        );
        // And the latency domain is distinct from the route and retry
        // domains.
        assert_ne!(base, first(message_route_rng(9, 4, 2, 0)));
        assert_ne!(base, first(message_retry_rng(9, 4, 2, 0, 0)));
    }

    #[test]
    fn prov_sample_is_deterministic_and_separates_every_axis() {
        let base = prov_sample(9, 4, 2, 0, 500_000);
        assert_eq!(base, prov_sample(9, 4, 2, 0, 500_000));
        // Full-rate sampling accepts everything without a coin.
        assert!(prov_sample(9, 4, 2, 0, 1_000_000));
        assert!(prov_sample(9, 4, 2, 0, 2_000_000));
        // Zero-rate sampling accepts nothing.
        assert!(!prov_sample(9, 4, 2, 0, 0));
        // Each axis changes the underlying coin: over many draws the
        // acceptance count tracks the rate, and axes decorrelate.
        let hits = |f: &dyn Fn(u64) -> bool| (0..4000).filter(|&i| f(i)).count();
        let by_seq = hits(&|i| prov_sample(1, 0, 0, i, 250_000));
        let by_round = hits(&|i| prov_sample(1, 0, i, 0, 250_000));
        let by_src = hits(&|i| prov_sample(1, i as usize, 0, 0, 250_000));
        for count in [by_seq, by_round, by_src] {
            assert!((800..1200).contains(&count), "rate off: {count}/4000");
        }
    }

    #[test]
    fn consecutive_sequences_are_well_spread() {
        // Counter-based derivation must not correlate the coins of a
        // sender's burst of sends within one round.
        let outs: HashSet<u64> = (0..1000)
            .map(|seq| {
                let mut r = message_route_rng(1, 0, 0, seq);
                r.random::<u64>()
            })
            .collect();
        assert_eq!(outs.len(), 1000);
    }
}
