//! **T10** — robustness to asynchrony: completion under random message
//! delays.
//!
//! The model (and the paper) is synchronous; real networks are not.
//! Here every message independently takes `1 + U{0..=j}` time units to
//! arrive. The HM implementation's handlers are event-driven and its
//! probe/join/report machinery retries, so correctness survives the
//! scrambled phase structure — this experiment measures the slowdown,
//! against Name-Dropper (whose single-transfer rounds barely care).

use crate::profile::Profile;
use rd_analysis::Table;
use rd_core::algorithms::{HmDiscovery, NameDropper, PointerDoubling};
use rd_core::{problem, DiscoveryAlgorithm};
use rd_graphs::Topology;
use rd_sim::{Engine, Node};

fn rounds_with_jitter<A>(alg: &A, n: usize, seed: u64, jitter: u64) -> (bool, u64)
where
    A: DiscoveryAlgorithm,
    A::NodeState: Node,
{
    let g = Topology::KOut { k: 3 }.generate(n, seed);
    let nodes = alg.make_nodes(&problem::initial_knowledge(&g));
    let mut engine = Engine::new(nodes, seed).with_max_extra_delay(jitter);
    let outcome = engine.run_until(200_000, problem::everyone_knows_everyone);
    (outcome.completed, outcome.rounds)
}

/// Runs the jitter sweep at the profile's survey size.
pub fn run(profile: Profile) -> Table {
    let n = profile.survey_n();
    let seed = 1;
    let jitters = [0u64, 1, 2, 4, 8];
    let mut headers = vec!["algorithm".to_string()];
    headers.extend(jitters.iter().map(|j| format!("jitter ≤ {j}")));
    let mut t = Table::new(headers);

    let mut add_row = |name: &str, f: &dyn Fn(u64) -> (bool, u64)| {
        let mut row = vec![name.to_string()];
        for &j in &jitters {
            let (done, rounds) = f(j);
            row.push(if done {
                rounds.to_string()
            } else {
                format!("{rounds} (incomplete)")
            });
        }
        t.row(row);
    };
    add_row("hm", &|j| {
        rounds_with_jitter(&HmDiscovery::default(), n, seed, j)
    });
    add_row("name-dropper", &|j| {
        rounds_with_jitter(&NameDropper, n, seed, j)
    });
    add_row("pointer-doubling", &|j| {
        rounds_with_jitter(&PointerDoubling, n, seed, j)
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hm_completes_under_jitter() {
        for jitter in [1u64, 3, 7] {
            let (done, rounds) = rounds_with_jitter(&HmDiscovery::default(), 128, 5, jitter);
            assert!(done, "jitter={jitter} incomplete");
            assert!(rounds > 0);
        }
    }

    #[test]
    fn name_dropper_completes_under_jitter() {
        let (done, _) = rounds_with_jitter(&NameDropper, 96, 5, 5);
        assert!(done);
    }
}
