//! HDR-style log-linear histogram.
//!
//! The bucket layout is the classic high-dynamic-range scheme: values
//! below 2^[`SUB_BITS`] are recorded exactly, and every octave above
//! that is split into 2^[`SUB_BITS`] linear sub-buckets, so the
//! relative quantile error is bounded by `2^-SUB_BITS` (6.25%) across
//! the full `u64` range. Memory is lazily grown to the highest bucket
//! touched — a histogram of round-trip nanoseconds costs a few hundred
//! `u64`s, never a pre-allocated table.
//!
//! All state is plain counters: merging two histograms (e.g. folding
//! per-worker span timings into a run-wide view) is element-wise
//! addition and is exact.

/// Sub-bucket resolution: 2^4 = 16 linear buckets per octave.
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// A log-linear histogram over `u64` values with ≤ 6.25% relative
/// quantile error and exact counts below 16.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Maps a value to its bucket index (exact below `SUB_COUNT`,
/// log-linear above).
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) - SUB_COUNT;
    ((u64::from(exp - SUB_BITS + 1) << SUB_BITS) + sub) as usize
}

/// Lower bound of the value range covered by bucket `index` (the
/// inverse of [`bucket_index`], used as the reported quantile value).
fn bucket_lo(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index;
    }
    let group = (index >> SUB_BITS) - 1;
    let sub = index & (SUB_COUNT - 1);
    (SUB_COUNT + sub) << group
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `v`.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `count` observations of `v`.
    pub fn record_n(&mut self, v: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
        if self.total == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.total += count;
        self.sum += u128::from(v) * u128::from(count);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded values (exact — tracked outside the
    /// buckets).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded values (exact — tracked outside the
    /// buckets).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket holding the `ceil(q·count)`-th observation, clamped to
    /// the exact recorded min/max so `quantile(0.0)` and
    /// `quantile(1.0)` are always exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lo(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` (exact: counters add element-wise).
    pub fn merge(&mut self, other: &Histogram) {
        if other.total == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if self.total == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_continuous_and_invertible() {
        let mut values: Vec<u64> = (0..4096u64)
            .chain((0..40).map(|e| (1u64 << (e + 10)) + e))
            .collect();
        values.sort_unstable();
        let mut prev = None;
        for v in values {
            let idx = bucket_index(v);
            if let Some(p) = prev {
                assert!(idx >= p, "bucket index must be monotone at v={v}");
            }
            prev = Some(idx);
            let lo = bucket_lo(idx);
            assert!(lo <= v, "bucket_lo({idx}) = {lo} must not exceed v = {v}");
            assert_eq!(
                bucket_index(lo),
                idx,
                "bucket_lo must land in its own bucket"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for q in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let want = ((q * 16.0).ceil() as u64).clamp(1, 16) - 1;
            assert_eq!(h.quantile(q), want, "quantile {q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 37);
        }
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let exact = (q * 10_000.0).ceil() as u64 * 37;
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / SUB_COUNT as f64, "q={q}: {approx} vs {exact}");
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let v = i * i % 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
