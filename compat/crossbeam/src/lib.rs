#![warn(missing_docs)]

//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, vendored so the workspace builds in network-less environments.
//! Provides `crossbeam::thread::scope` scoped threads over
//! `std::thread::scope`.

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention: the
    //! spawn closure receives the scope (so threads can spawn siblings),
    //! and `scope` returns a `Result` carrying any child panic payload.

    use std::thread::ScopedJoinHandle;

    /// A scope handle passed to spawned closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread joined at scope exit. The closure receives
        /// the scope, so it may spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Any panic payload propagated out of a scoped thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// Runs `f` with a scope in which threads borrowing from the
    /// environment may be spawned; all are joined before `scope`
    /// returns. Returns `Err` with the first panic payload if any
    /// spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU32, Ordering};

        #[test]
        fn threads_share_borrowed_state_and_join() {
            let counter = AtomicU32::new(0);
            let out = super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                }
                7
            })
            .unwrap();
            assert_eq!(out, 7);
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn child_panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("child died"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawns_work() {
            let counter = AtomicU32::new(0);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                });
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 1);
        }
    }
}
