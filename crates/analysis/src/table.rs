//! Fixed-width table and CSV rendering for experiment output.

use std::fmt;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use rd_analysis::Table;
///
/// let mut t = Table::new(["algorithm", "rounds"]);
/// t.row(["hm", "33"]);
/// t.row(["name-dropper", "78"]);
/// let text = t.to_string();
/// assert!(text.contains("| hm"));
/// assert_eq!(t.to_csv(), "algorithm,rounds\nhm,33\nname-dropper,78\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as RFC-4180-ish CSV (cells containing commas, quotes, or
    /// newlines are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers, &mut out);
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..cols {
                let pad = widths[i] - cells[i].chars().count();
                write!(f, " {}{} |", cells[i], " ".repeat(pad))?;
            }
            writeln!(f)
        };
        rule(f)?;
        line(f, &self.headers)?;
        rule(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        rule(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "longer"]);
        t.row(["wide-cell", "x"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // rule, header, rule, row, rule
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len), "ragged table:\n{s}");
        assert!(s.contains("| wide-cell |"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a,b", "say \"hi\""]);
        assert_eq!(t.to_csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn ragged_row_rejected() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn empty_table_still_renders_header() {
        let t = Table::new(["solo"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("solo"));
        assert_eq!(t.to_csv(), "solo\n");
    }

    #[test]
    fn len_counts_rows() {
        let mut t = Table::new(["c"]);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.len(), 2);
    }
}
