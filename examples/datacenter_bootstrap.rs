//! Datacenter bootstrap: racks of machines discover each other.
//!
//! A datacenter knowledge graph at boot time looks like a chain of
//! cliques: machines within a rack know each other (same broadcast
//! domain), and adjacent racks are linked through one pair of machines
//! (the wiring order of the ToR uplinks). This example sweeps the rack
//! count at a fixed machine count — exactly the diameter experiment F5 —
//! and shows how the discovery algorithms react as the datacenter gets
//! "longer".
//!
//! ```text
//! cargo run --release --example datacenter_bootstrap
//! ```

use resource_discovery::prelude::*;

fn main() {
    let machines = 2048;
    println!("bootstrapping {machines} machines arranged in racks\n");

    let mut table = Table::new([
        "racks",
        "diameter",
        "hm rounds",
        "pointer-doubling rounds",
        "hm messages",
    ]);
    for racks in [4usize, 16, 64, 256] {
        let g = resource_discovery::graphs::topology::clique_chain(machines, racks);
        let diameter = metrics::approx_undirected_diameter(&g, 0).expect("connected");

        let config = RunConfig::new(Topology::CliqueChain { cliques: racks }, machines, 7);
        let hm = run(AlgorithmKind::Hm(HmConfig::default()), &config);
        let pd = run(AlgorithmKind::PointerDoubling, &config);
        assert!(hm.completed && pd.completed);

        table.row([
            racks.to_string(),
            diameter.to_string(),
            hm.rounds.to_string(),
            pd.rounds.to_string(),
            hm.messages.to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "\nRounds grow with log(diameter), not with machine count: a wide flat \
         datacenter discovers itself as fast as a single rack."
    );
}
