//! Name-Dropper (Harchol-Balter, Leighton, Lewin — PODC '99): the
//! randomized `O(log² n)` baseline the paper improves on.
//!
//! Every round, every machine picks one uniformly random machine it
//! knows and *transfers* its entire knowledge to it; the receiver also
//! learns the sender's id from the envelope (the "reverse pointer" of the
//! original paper). HLL '99 prove completion in `O(log² n)` rounds w.h.p.
//! on any weakly connected initial knowledge graph, with `O(n log² n)`
//! messages and `O(n² log² n)` pointers.
//!
//! Name-Dropper has no local termination detection — the original
//! analysis simply runs it for `c · log² n` rounds — so the harness
//! measures convergence with the omniscient completion predicate, as the
//! literature does.

use crate::algorithms::{DiscoveryAlgorithm, KnowledgeView};
use crate::knowledge::KnowledgeSet;
use crate::problem::InitialKnowledge;
use rd_sim::{Envelope, MessageCost, Node, NodeId, PointerList, RoundContext};

/// Factory for the Name-Dropper baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NameDropper;

/// Name-Dropper payload: the sender's entire knowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferMsg {
    /// Every identifier the sender knew when it sent.
    pub ids: PointerList,
}

impl MessageCost for TransferMsg {
    fn pointers(&self) -> usize {
        self.ids.len()
    }

    fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
        self.ids.visit_ids(visit);
    }
}

/// Per-node state of Name-Dropper.
#[derive(Debug, Clone)]
pub struct NameDropperNode {
    knowledge: KnowledgeSet,
}

impl Node for NameDropperNode {
    type Msg = TransferMsg;

    fn on_round(
        &mut self,
        inbox: &mut Vec<Envelope<TransferMsg>>,
        ctx: &mut RoundContext<'_, TransferMsg>,
    ) {
        for env in inbox.drain(..) {
            self.knowledge.insert(env.src); // reverse pointer
            self.knowledge.extend(env.payload.ids);
        }
        let me = ctx.id();
        if let Some(target) = {
            let rng = ctx.rng();
            self.knowledge.sample_other(rng, me)
        } {
            let ids: PointerList = self.knowledge.iter().filter(|&v| v != target).collect();
            ctx.send(target, TransferMsg { ids });
        }
    }
}

impl KnowledgeView for NameDropperNode {
    fn knows(&self, id: NodeId) -> bool {
        self.knowledge.contains(id)
    }
    fn knows_count(&self) -> usize {
        self.knowledge.len()
    }
    fn known_ids(&self) -> Vec<NodeId> {
        self.knowledge.to_vec()
    }
    fn resident_bytes(&self) -> u64 {
        self.knowledge.resident_bytes() as u64
    }
}

impl DiscoveryAlgorithm for NameDropper {
    type NodeState = NameDropperNode;

    fn name(&self) -> String {
        "name-dropper".into()
    }

    fn make_nodes(&self, initial: &InitialKnowledge) -> Vec<NameDropperNode> {
        initial
            .rows()
            .enumerate()
            .map(|(u, ids)| {
                let mut knowledge = KnowledgeSet::new(NodeId::new(u as u32));
                knowledge.extend(ids.iter().copied());
                NameDropperNode { knowledge }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem;
    use rd_graphs::Topology;
    use rd_sim::Engine;

    fn run_nd(topo: Topology, n: usize, seed: u64) -> (rd_sim::RunOutcome, u64) {
        let g = topo.generate(n, seed);
        let nodes = NameDropper.make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, seed);
        let outcome = engine.run_until(100_000, problem::everyone_knows_everyone);
        (outcome, engine.metrics().total_messages())
    }

    #[test]
    fn completes_on_path() {
        let (outcome, _) = run_nd(Topology::Path, 64, 3);
        assert!(outcome.completed);
        // O(log² n) with small constants: log2(64)² = 36; give slack.
        assert!(outcome.rounds <= 120, "rounds = {}", outcome.rounds);
    }

    #[test]
    fn completes_on_random_overlay() {
        let (outcome, _) = run_nd(Topology::KOut { k: 3 }, 256, 5);
        assert!(outcome.completed);
        assert!(outcome.rounds <= 80, "rounds = {}", outcome.rounds);
    }

    #[test]
    fn one_message_per_node_per_round() {
        let g = Topology::Cycle.generate(32, 1);
        let nodes = NameDropper.make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, 1);
        for _ in 0..5 {
            engine.step();
        }
        assert_eq!(engine.metrics().total_messages(), 5 * 32);
    }

    #[test]
    fn single_node_is_silent() {
        let (outcome, messages) = run_nd(Topology::Path, 1, 1);
        assert!(outcome.completed);
        assert_eq!(messages, 0);
    }

    #[test]
    fn knowledge_is_monotone_under_transfer() {
        let g = Topology::RandomTree.generate(48, 9);
        let nodes = NameDropper.make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, 9);
        let mut prev: Vec<usize> = engine.nodes().iter().map(|n| n.knows_count()).collect();
        for _ in 0..30 {
            engine.step();
            let now: Vec<usize> = engine.nodes().iter().map(|n| n.knows_count()).collect();
            for (a, b) in prev.iter().zip(&now) {
                assert!(b >= a, "knowledge shrank");
            }
            prev = now;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            run_nd(Topology::KOut { k: 2 }, 64, 77),
            run_nd(Topology::KOut { k: 2 }, 64, 77)
        );
    }
}
