//! Machine-readable perf-regression verdicts over the `BENCH_*.json`
//! schema — the library half of `rd-inspect bench-diff`.
//!
//! Two benchmark summaries are joined on their configuration key
//! `(n, engine, obs, trace, prof, live)` and compared on `rounds_per_sec`. Each
//! matched row gets a verdict: `FAIL` above the failure threshold,
//! `WARN` between the warn and fail thresholds, `OK` otherwise. Rows
//! present on only one side are reported but never gate — a PR that
//! adds configurations must not fail for measuring more.
//!
//! The committed baseline may additionally carry a `"targets"` section:
//! pinned minimum throughputs per configuration. Relative comparison
//! alone ratchets silently — land a regression, re-commit the baseline,
//! and the loss is laundered into the new normal. A target row keeps
//! gating against the absolute floor until someone *deliberately* edits
//! it, so performance wins stay pinned. A new run below a target is a
//! `FAIL`; a target whose configuration vanished from the new summary
//! is a `WARN` (the pinned win can no longer be checked).

use crate::json::Json;
use std::fmt::Write as _;

/// One benchmark configuration row, keyed for joining.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    pub n: u64,
    pub engine: String,
    pub obs: bool,
    pub trace: bool,
    pub prof: bool,
    pub live: bool,
    pub rounds_per_sec: f64,
}

impl BenchRow {
    fn key(&self) -> (u64, &str, bool, bool, bool, bool) {
        (
            self.n,
            &self.engine,
            self.obs,
            self.trace,
            self.prof,
            self.live,
        )
    }

    fn label(&self) -> String {
        format!(
            "n={} engine={} obs={} trace={} prof={} live={}",
            self.n, self.engine, self.obs, self.trace, self.prof, self.live
        )
    }
}

/// Parses a `BENCH_*.json` document into its configuration rows.
/// Rows written before the `trace` (resp. `prof`, `live`) field existed
/// read as `trace: false` (`prof: false`, `live: false`), so old
/// committed baselines keep joining cleanly.
pub fn parse_bench(text: &str) -> Result<Vec<BenchRow>, String> {
    let doc = Json::parse(text)?;
    let configs = doc
        .get("configs")
        .and_then(Json::as_arr)
        .ok_or("missing \"configs\" array")?;
    let mut rows = Vec::new();
    for (i, row) in configs.iter().enumerate() {
        let field = |name: &str| {
            row.get(name)
                .ok_or_else(|| format!("configs[{i}]: missing \"{name}\""))
        };
        rows.push(BenchRow {
            n: field("n")?
                .as_u64()
                .ok_or_else(|| format!("configs[{i}]: \"n\" must be a number"))?,
            engine: field("engine")?
                .as_str()
                .ok_or_else(|| format!("configs[{i}]: \"engine\" must be a string"))?
                .to_string(),
            obs: field("obs")?
                .as_bool()
                .ok_or_else(|| format!("configs[{i}]: \"obs\" must be a boolean"))?,
            trace: row
                .get("trace")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| format!("configs[{i}]: \"trace\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
            prof: row
                .get("prof")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| format!("configs[{i}]: \"prof\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
            live: row
                .get("live")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| format!("configs[{i}]: \"live\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
            rounds_per_sec: field("rounds_per_sec")?
                .as_f64()
                .ok_or_else(|| format!("configs[{i}]: \"rounds_per_sec\" must be a number"))?,
        });
    }
    Ok(rows)
}

/// One pinned minimum-throughput row from the committed baseline's
/// optional `"targets"` section.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTarget {
    pub n: u64,
    pub engine: String,
    pub obs: bool,
    pub trace: bool,
    pub prof: bool,
    pub live: bool,
    /// The run fails when the matching configuration measures below
    /// this floor, regardless of what the relative diff says.
    pub min_rounds_per_sec: f64,
}

impl BenchTarget {
    fn key(&self) -> (u64, &str, bool, bool, bool, bool) {
        (
            self.n,
            &self.engine,
            self.obs,
            self.trace,
            self.prof,
            self.live,
        )
    }

    fn label(&self) -> String {
        format!(
            "n={} engine={} obs={} trace={} prof={} live={}",
            self.n, self.engine, self.obs, self.trace, self.prof, self.live
        )
    }
}

/// Parses the optional `"targets"` section of a `BENCH_*.json`
/// document. Summaries without one (every freshly generated summary,
/// and all baselines committed before targets existed) parse as empty.
pub fn parse_targets(text: &str) -> Result<Vec<BenchTarget>, String> {
    let doc = Json::parse(text)?;
    let Some(targets) = doc.get("targets") else {
        return Ok(Vec::new());
    };
    let targets = targets.as_arr().ok_or("\"targets\" must be an array")?;
    let mut rows = Vec::new();
    for (i, row) in targets.iter().enumerate() {
        let field = |name: &str| {
            row.get(name)
                .ok_or_else(|| format!("targets[{i}]: missing \"{name}\""))
        };
        rows.push(BenchTarget {
            n: field("n")?
                .as_u64()
                .ok_or_else(|| format!("targets[{i}]: \"n\" must be a number"))?,
            engine: field("engine")?
                .as_str()
                .ok_or_else(|| format!("targets[{i}]: \"engine\" must be a string"))?
                .to_string(),
            obs: field("obs")?
                .as_bool()
                .ok_or_else(|| format!("targets[{i}]: \"obs\" must be a boolean"))?,
            trace: row
                .get("trace")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| format!("targets[{i}]: \"trace\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
            prof: row
                .get("prof")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| format!("targets[{i}]: \"prof\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
            live: row
                .get("live")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| format!("targets[{i}]: \"live\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
            min_rounds_per_sec: field("min_rounds_per_sec")?
                .as_f64()
                .ok_or_else(|| format!("targets[{i}]: \"min_rounds_per_sec\" must be a number"))?,
        });
    }
    Ok(rows)
}

/// Verdict on one joined configuration row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Warn,
    Fail,
}

impl Verdict {
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Ok => "OK",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDiff {
    pub label: String,
    pub old: f64,
    pub new: f64,
    /// Throughput regression in percent; negative values are speedups.
    pub regression_pct: f64,
    pub verdict: Verdict,
}

/// One checked target row: a pinned floor against the new measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetRow {
    pub label: String,
    pub min: f64,
    /// The matching new measurement; `None` when the configuration
    /// vanished from the new summary.
    pub actual: Option<f64>,
    pub verdict: Verdict,
}

/// The full comparison of two benchmark summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    pub rows: Vec<RowDiff>,
    pub targets: Vec<TargetRow>,
    pub only_old: Vec<String>,
    pub only_new: Vec<String>,
    pub warn_above_pct: f64,
    pub fail_above_pct: f64,
}

impl BenchDiff {
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Fail)
            .count()
            + self
                .targets
                .iter()
                .filter(|t| t.verdict == Verdict::Fail)
                .count()
    }

    pub fn warnings(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Warn)
            .count()
            + self
                .targets
                .iter()
                .filter(|t| t.verdict == Verdict::Warn)
                .count()
    }

    /// Renders the verdict table. With `annotations`, WARN rows also
    /// emit GitHub `::warning::` annotation lines (the non-blocking
    /// half of the CI gate).
    pub fn render(&self, annotations: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-diff: warn above {:.1}% regression, fail above {:.1}%",
            self.warn_above_pct, self.fail_above_pct
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<4} {:<44} {:>10.2} -> {:>10.2} rounds/s ({:+.1}%)",
                row.verdict.name(),
                row.label,
                row.old,
                row.new,
                -row.regression_pct
            );
            if annotations && row.verdict == Verdict::Warn {
                let _ = writeln!(
                    out,
                    "::warning::bench regression {:.1}% on {} ({:.2} -> {:.2} rounds/s)",
                    row.regression_pct, row.label, row.old, row.new
                );
            }
        }
        for t in &self.targets {
            match t.actual {
                Some(actual) => {
                    let _ = writeln!(
                        out,
                        "{:<4} {:<44} {:>10.2} rounds/s vs pinned floor {:.2}",
                        t.verdict.name(),
                        t.label,
                        actual,
                        t.min
                    );
                    if annotations && t.verdict == Verdict::Fail {
                        let _ = writeln!(
                            out,
                            "::error::bench below pinned target on {} ({:.2} < {:.2} rounds/s)",
                            t.label, actual, t.min
                        );
                    }
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<4} {:<44} no matching row for pinned floor {:.2}",
                        t.verdict.name(),
                        t.label,
                        t.min
                    );
                    if annotations {
                        let _ = writeln!(
                            out,
                            "::warning::bench target {} has no matching row in new summary",
                            t.label
                        );
                    }
                }
            }
        }
        for label in &self.only_old {
            let _ = writeln!(out, "note: {label} only in old summary (not compared)");
        }
        for label in &self.only_new {
            let _ = writeln!(out, "note: {label} only in new summary (not compared)");
        }
        let _ = writeln!(
            out,
            "verdict: {} compared, {} warning(s), {} failure(s)",
            self.rows.len(),
            self.warnings(),
            self.failures()
        );
        out
    }
}

/// Joins and compares two row sets. `regression_pct` is
/// `(old - new) / old * 100`: positive when the new side is slower.
pub fn compare(
    old: &[BenchRow],
    new: &[BenchRow],
    warn_above_pct: f64,
    fail_above_pct: f64,
) -> BenchDiff {
    compare_with_targets(old, new, &[], warn_above_pct, fail_above_pct)
}

/// [`compare`], plus pinned-floor checks: every `target` is matched
/// against the *new* summary on the same configuration key and fails
/// when the measurement is below `min_rounds_per_sec`. Targets come
/// from the committed baseline, so they gate even when the relative
/// diff is clean.
pub fn compare_with_targets(
    old: &[BenchRow],
    new: &[BenchRow],
    targets: &[BenchTarget],
    warn_above_pct: f64,
    fail_above_pct: f64,
) -> BenchDiff {
    let mut rows = Vec::new();
    let mut only_old = Vec::new();
    for o in old {
        match new.iter().find(|n| n.key() == o.key()) {
            Some(n) => {
                let regression_pct = if o.rounds_per_sec > 0.0 {
                    (o.rounds_per_sec - n.rounds_per_sec) / o.rounds_per_sec * 100.0
                } else {
                    0.0
                };
                let verdict = if regression_pct > fail_above_pct {
                    Verdict::Fail
                } else if regression_pct > warn_above_pct {
                    Verdict::Warn
                } else {
                    Verdict::Ok
                };
                rows.push(RowDiff {
                    label: o.label(),
                    old: o.rounds_per_sec,
                    new: n.rounds_per_sec,
                    regression_pct,
                    verdict,
                });
            }
            None => only_old.push(o.label()),
        }
    }
    let only_new = new
        .iter()
        .filter(|n| !old.iter().any(|o| o.key() == n.key()))
        .map(BenchRow::label)
        .collect();
    let targets = targets
        .iter()
        .map(|t| match new.iter().find(|n| n.key() == t.key()) {
            Some(n) => TargetRow {
                label: t.label(),
                min: t.min_rounds_per_sec,
                actual: Some(n.rounds_per_sec),
                verdict: if n.rounds_per_sec < t.min_rounds_per_sec {
                    Verdict::Fail
                } else {
                    Verdict::Ok
                },
            },
            None => TargetRow {
                label: t.label(),
                min: t.min_rounds_per_sec,
                actual: None,
                verdict: Verdict::Warn,
            },
        })
        .collect();
    BenchDiff {
        rows,
        targets,
        only_old,
        only_new,
        warn_above_pct,
        fail_above_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: u64, engine: &str, obs: bool, trace: bool, rps: f64) -> BenchRow {
        BenchRow {
            n,
            engine: engine.into(),
            obs,
            trace,
            prof: false,
            live: false,
            rounds_per_sec: rps,
        }
    }

    #[test]
    fn parses_the_bench_schema_with_and_without_trace() {
        let text = r#"{
            "bench": "exec-round-throughput",
            "configs": [
                {"n": 4096, "engine": "sequential", "workers": 0, "obs": false, "rounds_per_sec": 105.5},
                {"n": 4096, "engine": "sharded:4", "workers": 4, "obs": true, "trace": true, "rounds_per_sec": 94.0}
            ]
        }"#;
        let rows = parse_bench(text).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].trace, "missing trace field defaults to false");
        assert!(rows[1].trace);
        assert_eq!(rows[1].engine, "sharded:4");
        assert!(!rows[1].prof, "missing prof field defaults to false");
        assert!(!rows[1].live, "missing live field defaults to false");
        let profiled = parse_bench(
            r#"{"configs": [{"n": 64, "engine": "sequential", "obs": true, "prof": true, "rounds_per_sec": 1.0}]}"#,
        )
        .unwrap();
        assert!(profiled[0].prof);
        let live = parse_bench(
            r#"{"configs": [{"n": 64, "engine": "sequential", "obs": true, "live": true, "rounds_per_sec": 1.0}]}"#,
        )
        .unwrap();
        assert!(live[0].live, "explicit live field parses");
    }

    #[test]
    fn live_rows_join_only_against_live_rows() {
        let mut live_row = row(1, "sequential", true, false, 100.0);
        live_row.live = true;
        let old = vec![row(1, "sequential", true, false, 100.0), live_row.clone()];
        let mut live_new = live_row;
        live_new.rounds_per_sec = 99.0;
        let new = vec![row(1, "sequential", true, false, 100.0), live_new];
        let diff = compare(&old, &new, 5.0, 15.0);
        assert_eq!(diff.rows.len(), 2, "live and non-live rows both join");
        assert!(diff.rows[0].label.contains("live=false"));
        assert!(diff.rows[1].label.contains("live=true"));
        assert_eq!(diff.rows[1].new, 99.0);
    }

    #[test]
    fn parse_rejects_malformed_summaries() {
        assert!(parse_bench("{}").is_err());
        assert!(parse_bench(r#"{"configs":[{"n":"x"}]}"#).is_err());
    }

    #[test]
    fn verdict_thresholds_split_ok_warn_fail() {
        let old = vec![
            row(1, "sequential", false, false, 100.0),
            row(2, "sequential", false, false, 100.0),
            row(3, "sequential", false, false, 100.0),
        ];
        let new = vec![
            row(1, "sequential", false, false, 97.0), // -3%: OK
            row(2, "sequential", false, false, 90.0), // -10%: WARN
            row(3, "sequential", false, false, 80.0), // -20%: FAIL
        ];
        let diff = compare(&old, &new, 5.0, 15.0);
        assert_eq!(diff.rows[0].verdict, Verdict::Ok);
        assert_eq!(diff.rows[1].verdict, Verdict::Warn);
        assert_eq!(diff.rows[2].verdict, Verdict::Fail);
        assert_eq!(diff.failures(), 1);
        assert_eq!(diff.warnings(), 1);
        let rendered = diff.render(true);
        assert!(rendered.contains("::warning::"), "{rendered}");
        assert!(rendered.contains("1 failure(s)"), "{rendered}");
    }

    #[test]
    fn unmatched_rows_never_gate() {
        let old = vec![row(1, "sequential", false, false, 100.0)];
        let new = vec![row(2, "sharded:4", false, false, 50.0)];
        let diff = compare(&old, &new, 5.0, 15.0);
        assert!(diff.rows.is_empty());
        assert_eq!(diff.failures(), 0);
        assert_eq!(diff.only_old.len(), 1);
        assert_eq!(diff.only_new.len(), 1);
    }

    #[test]
    fn parses_targets_and_tolerates_their_absence() {
        let with = r#"{
            "bench": "exec-round-throughput",
            "configs": [],
            "targets": [
                {"n": 4096, "engine": "sequential", "obs": false, "min_rounds_per_sec": 50.0},
                {"n": 4096, "engine": "sharded:4", "obs": true, "trace": true, "min_rounds_per_sec": 40.0}
            ]
        }"#;
        let targets = parse_targets(with).unwrap();
        assert_eq!(targets.len(), 2);
        assert!(!targets[0].trace, "missing trace field defaults to false");
        assert_eq!(targets[1].min_rounds_per_sec, 40.0);
        assert!(parse_targets(r#"{"configs": []}"#).unwrap().is_empty());
        assert!(parse_targets(r#"{"targets": [{"n": 1}]}"#).is_err());
    }

    fn target(n: u64, engine: &str, min: f64) -> BenchTarget {
        BenchTarget {
            n,
            engine: engine.into(),
            obs: false,
            trace: false,
            prof: false,
            live: false,
            min_rounds_per_sec: min,
        }
    }

    #[test]
    fn targets_pin_absolute_floors_independently_of_the_relative_diff() {
        // The relative diff is clean — old and new agree — but the new
        // measurement sits below the pinned floor, so the run fails:
        // re-committing a regressed baseline cannot launder the loss.
        let old = vec![row(1, "sequential", false, false, 60.0)];
        let new = vec![row(1, "sequential", false, false, 60.0)];
        let targets = vec![target(1, "sequential", 80.0)];
        let diff = compare_with_targets(&old, &new, &targets, 5.0, 15.0);
        assert_eq!(diff.rows[0].verdict, Verdict::Ok, "relative diff is clean");
        assert_eq!(diff.targets[0].verdict, Verdict::Fail);
        assert_eq!(diff.failures(), 1);
        let rendered = diff.render(true);
        assert!(
            rendered.contains("::error::bench below pinned target"),
            "{rendered}"
        );
        assert!(rendered.contains("1 failure(s)"), "{rendered}");
    }

    #[test]
    fn met_targets_and_vanished_targets_do_not_fail() {
        let new = vec![row(1, "sequential", false, false, 100.0)];
        let targets = vec![
            target(1, "sequential", 80.0), // met
            target(2, "sharded:4", 80.0),  // configuration vanished
        ];
        let diff = compare_with_targets(&new.clone(), &new, &targets, 5.0, 15.0);
        assert_eq!(diff.targets[0].verdict, Verdict::Ok);
        assert_eq!(diff.targets[1].verdict, Verdict::Warn);
        assert_eq!(diff.targets[1].actual, None);
        assert_eq!(diff.failures(), 0);
        assert_eq!(diff.warnings(), 1);
        let rendered = diff.render(true);
        assert!(
            rendered.contains("no matching row for pinned floor"),
            "{rendered}"
        );
    }

    #[test]
    fn speedups_are_ok() {
        let old = vec![row(1, "sequential", true, true, 100.0)];
        let new = vec![row(1, "sequential", true, true, 140.0)];
        let diff = compare(&old, &new, 5.0, 15.0);
        assert_eq!(diff.rows[0].verdict, Verdict::Ok);
        assert!(diff.rows[0].regression_pct < 0.0);
    }
}
