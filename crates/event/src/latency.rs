//! Pluggable message-latency models.
//!
//! A [`LatencyModel`] maps every transmission to a delivery latency in
//! whole simulated ticks (`>= 1`). Draws come from their own
//! counter-based stream ([`rd_sim::rng::message_latency_rng`]): the
//! latency of one message is a pure function of
//! `(seed, src, dst, tick, sequence, attempt)` and the model, so event
//! order can never feed back into the draws and a run replays
//! bit-for-bit from its seed.
//!
//! All model parameters are integers (the lognormal shape is given in
//! thousandths), which keeps the type `Copy + Eq + Hash` — it can ride
//! inside engine-selection enums and be compared for cache keys.

use rand::Rng;
use rd_sim::rng::message_latency_rng;

/// A deterministic message-latency model: how many simulated ticks a
/// transmission spends in flight.
///
/// The first two models are symmetric and memoryless; `LogNormal`
/// produces the heavy-tailed RTT distributions measured in deployed
/// P2P networks; `Asymmetric` gives the two directions of every link
/// different (constant) latencies, which no round-based engine can
/// express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks` ticks. `Constant { ticks: 1 }`
    /// is the synchronous round model.
    Constant {
        /// Delivery latency of every message (`>= 1`).
        ticks: u64,
    },
    /// Every message independently takes `U{min..=max}` ticks.
    Uniform {
        /// Minimum latency in ticks (`>= 1`).
        min: u64,
        /// Maximum latency in ticks (`>= min`).
        max: u64,
    },
    /// Every message independently takes `round(exp(mu + sigma * Z))`
    /// ticks (`Z` standard normal), clamped to `[1, cap]` — the
    /// heavy-tailed straggler regime.
    LogNormal {
        /// Location parameter `mu`, in thousandths (`1200` = 1.2).
        mu_milli: u32,
        /// Shape parameter `sigma`, in thousandths (`800` = 0.8).
        sigma_milli: u32,
        /// Upper clamp on the drawn latency, in ticks (`>= 1`).
        cap: u64,
    },
    /// Links are directionally asymmetric: messages from a lower to a
    /// higher node index take `forward` ticks, the reverse direction
    /// takes `backward` ticks.
    Asymmetric {
        /// Latency of `src < dst` transmissions, in ticks (`>= 1`).
        forward: u64,
        /// Latency of `src > dst` transmissions, in ticks (`>= 1`).
        backward: u64,
    },
    /// Grey failure: a deterministic, seed-keyed subset of nodes is
    /// *slow* — not crashed, not lossy, just late. Every message that
    /// touches a slow node (as sender or receiver) takes `slow` ticks;
    /// all other traffic takes `base` ticks. Whether a node is slow is
    /// a pure function of `(seed, node)`, so the subset is stable for
    /// the whole run and replays bit-for-bit.
    Slow {
        /// Latency of healthy-to-healthy traffic, in ticks (`>= 1`).
        base: u64,
        /// Latency of traffic touching a slow node, in ticks (`>= base`).
        slow: u64,
        /// Fraction of nodes that are slow, in parts per million
        /// (`1..=1_000_000`).
        frac_ppm: u32,
    },
}

/// Domain tag of the slow-subset membership stream ("slow").
const SLOW_DOMAIN: u64 = 0x736c_6f77;

/// Whether `node` belongs to the grey-failure slow subset: a pure
/// function of `(seed, node)` via the dedicated counter-based domain.
fn is_slow_node(seed: u64, node: usize, frac_ppm: u32) -> bool {
    use rd_sim::rng::{derive_seed, split_mix64};
    split_mix64(derive_seed(seed, SLOW_DOMAIN, node as u64, 0)) % 1_000_000 < u64::from(frac_ppm)
}

impl Default for LatencyModel {
    /// The synchronous baseline: every message takes exactly one tick.
    fn default() -> Self {
        LatencyModel::Constant { ticks: 1 }
    }
}

impl LatencyModel {
    /// Checks the model's parameters, returning a description of the
    /// first violation. Engines call this at construction.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            LatencyModel::Constant { ticks: 0 } => Err("constant latency must be >= 1 tick".into()),
            LatencyModel::Uniform { min: 0, .. } => {
                Err("uniform latency minimum must be >= 1 tick".into())
            }
            LatencyModel::Uniform { min, max } if max < min => Err(format!(
                "uniform latency range empty: min {min} > max {max}"
            )),
            LatencyModel::LogNormal { cap: 0, .. } => {
                Err("lognormal latency cap must be >= 1 tick".into())
            }
            LatencyModel::Asymmetric { forward, backward } if forward == 0 || backward == 0 => {
                Err("asymmetric link latencies must be >= 1 tick".into())
            }
            LatencyModel::Slow { base: 0, .. } => {
                Err("slow-model base latency must be >= 1 tick".into())
            }
            LatencyModel::Slow { base, slow, .. } if slow < base => {
                Err(format!("slow-model slow latency {slow} below base {base}"))
            }
            LatencyModel::Slow { frac_ppm, .. } if frac_ppm == 0 || frac_ppm > 1_000_000 => Err(
                format!("slow-node fraction must be 1..=1000000 ppm, got {frac_ppm}"),
            ),
            _ => Ok(()),
        }
    }

    /// The model's canonical spec string, e.g. `const:1`,
    /// `uniform:1:8`, `lognormal:1200:800:32`, `asym:1:8`,
    /// `slow:1:16:50000`. [`parse`](Self::parse) accepts exactly these
    /// forms.
    pub fn name(&self) -> String {
        match *self {
            LatencyModel::Constant { ticks } => format!("const:{ticks}"),
            LatencyModel::Uniform { min, max } => format!("uniform:{min}:{max}"),
            LatencyModel::LogNormal {
                mu_milli,
                sigma_milli,
                cap,
            } => format!("lognormal:{mu_milli}:{sigma_milli}:{cap}"),
            LatencyModel::Asymmetric { forward, backward } => {
                format!("asym:{forward}:{backward}")
            }
            LatencyModel::Slow {
                base,
                slow,
                frac_ppm,
            } => format!("slow:{base}:{slow}:{frac_ppm}"),
        }
    }

    /// Parses a spec string produced by [`name`](Self::name):
    /// `const:TICKS`, `uniform:MIN:MAX`, `lognormal:MU_MILLI:SIGMA_MILLI:CAP`,
    /// `asym:FORWARD:BACKWARD`, or `slow:BASE:SLOW:FRAC_PPM`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let int = |s: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("bad latency parameter {s:?} in {spec:?}"))
        };
        let model = match parts.as_slice() {
            ["const", t] => LatencyModel::Constant { ticks: int(t)? },
            ["uniform", lo, hi] => LatencyModel::Uniform {
                min: int(lo)?,
                max: int(hi)?,
            },
            ["lognormal", mu, sigma, cap] => LatencyModel::LogNormal {
                mu_milli: int(mu)? as u32,
                sigma_milli: int(sigma)? as u32,
                cap: int(cap)?,
            },
            ["asym", f, b] => LatencyModel::Asymmetric {
                forward: int(f)?,
                backward: int(b)?,
            },
            ["slow", b, s, f] => LatencyModel::Slow {
                base: int(b)?,
                slow: int(s)?,
                frac_ppm: int(f)? as u32,
            },
            _ => {
                return Err(format!(
                    "unknown latency model {spec:?} \
                     (expected const:T | uniform:MIN:MAX | \
                     lognormal:MU_MILLI:SIGMA_MILLI:CAP | asym:F:B | \
                     slow:BASE:SLOW:FRAC_PPM)"
                ))
            }
        };
        model.validate()?;
        Ok(model)
    }

    /// Draws the delivery latency of one transmission, in ticks
    /// (`>= 1`). Pure in all arguments: the same
    /// `(seed, src, dst, tick, sequence, attempt)` always yields the
    /// same latency, via the dedicated counter-based stream.
    ///
    /// `attempt` is 0 for the original send and counts retransmission
    /// attempts from 1, mirroring [`rd_sim::retry_fate`]'s axis.
    pub fn sample(
        &self,
        seed: u64,
        src: usize,
        dst: usize,
        tick: u64,
        sequence: u64,
        attempt: u32,
    ) -> u64 {
        match *self {
            LatencyModel::Constant { ticks } => ticks,
            LatencyModel::Uniform { min, max } => {
                if min == max {
                    return min;
                }
                let mut rng = message_latency_rng(seed, src, tick, sequence, attempt);
                rng.random_range(min..=max)
            }
            LatencyModel::LogNormal {
                mu_milli,
                sigma_milli,
                cap,
            } => {
                let mut rng = message_latency_rng(seed, src, tick, sequence, attempt);
                // Box–Muller; `1 - u1` keeps the logarithm finite since
                // the uniform draw lives in `[0, 1)`.
                let u1: f64 = rng.random();
                let u2: f64 = rng.random();
                let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let mu = mu_milli as f64 / 1000.0;
                let sigma = sigma_milli as f64 / 1000.0;
                let ticks = (mu + sigma * z).exp().round();
                if ticks.is_finite() {
                    (ticks as u64).clamp(1, cap)
                } else {
                    cap
                }
            }
            LatencyModel::Asymmetric { forward, backward } => {
                if src < dst {
                    forward
                } else {
                    backward
                }
            }
            LatencyModel::Slow {
                base,
                slow,
                frac_ppm,
            } => {
                // Grey failure affects all of a slow node's traffic:
                // both what it sends and what is sent to it.
                if is_slow_node(seed, src, frac_ppm) || is_slow_node(seed, dst, frac_ppm) {
                    slow
                } else {
                    base
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_strings_round_trip() {
        for model in [
            LatencyModel::Constant { ticks: 3 },
            LatencyModel::Uniform { min: 1, max: 8 },
            LatencyModel::LogNormal {
                mu_milli: 1200,
                sigma_milli: 800,
                cap: 32,
            },
            LatencyModel::Asymmetric {
                forward: 1,
                backward: 8,
            },
            LatencyModel::Slow {
                base: 1,
                slow: 16,
                frac_ppm: 50_000,
            },
        ] {
            assert_eq!(LatencyModel::parse(&model.name()), Ok(model));
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for spec in [
            "bogus",
            "const:0",
            "const:x",
            "uniform:0:4",
            "uniform:5:2",
            "uniform:1",
            "lognormal:1000:800:0",
            "asym:0:3",
            "slow:0:4:1000",
            "slow:8:2:1000",
            "slow:1:4:0",
            "slow:1:4:2000000",
            "",
        ] {
            assert!(LatencyModel::parse(spec).is_err(), "accepted {spec:?}");
        }
    }

    #[test]
    fn draws_are_pure_and_in_range() {
        let models = [
            LatencyModel::Uniform { min: 2, max: 9 },
            LatencyModel::LogNormal {
                mu_milli: 1200,
                sigma_milli: 900,
                cap: 40,
            },
        ];
        for model in models {
            let (lo, hi) = match model {
                LatencyModel::Uniform { min, max } => (min, max),
                LatencyModel::LogNormal { cap, .. } => (1, cap),
                _ => unreachable!(),
            };
            for seq in 0..200 {
                let a = model.sample(7, 3, 5, 11, seq, 0);
                let b = model.sample(7, 3, 5, 11, seq, 0);
                assert_eq!(a, b, "draw not pure");
                assert!((lo..=hi).contains(&a), "draw {a} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn heavy_tail_actually_spreads() {
        // Across many draws a lognormal with sigma ~0.9 must produce
        // both short and long latencies — otherwise the model degraded
        // to a constant.
        let model = LatencyModel::LogNormal {
            mu_milli: 1000,
            sigma_milli: 900,
            cap: 64,
        };
        let draws: Vec<u64> = (0..2000).map(|s| model.sample(1, 0, 1, 0, s, 0)).collect();
        let min = *draws.iter().min().unwrap();
        let max = *draws.iter().max().unwrap();
        assert!(min <= 2, "no short draws (min {min})");
        assert!(max >= 10, "no tail draws (max {max})");
    }

    #[test]
    fn asymmetric_depends_only_on_direction() {
        let model = LatencyModel::Asymmetric {
            forward: 2,
            backward: 7,
        };
        assert_eq!(model.sample(1, 0, 5, 3, 0, 0), 2);
        assert_eq!(model.sample(1, 5, 0, 3, 0, 0), 7);
    }

    #[test]
    fn slow_subset_is_stable_and_slows_both_directions() {
        let model = LatencyModel::Slow {
            base: 1,
            slow: 16,
            frac_ppm: 300_000,
        };
        let seed = 9;
        let slow_nodes: Vec<usize> = (0..64)
            .filter(|&i| is_slow_node(seed, i, 300_000))
            .collect();
        assert!(!slow_nodes.is_empty(), "no slow nodes at 30%");
        assert!(slow_nodes.len() < 64, "every node slow at 30%");
        let s = slow_nodes[0];
        let healthy = (0..64).find(|i| !slow_nodes.contains(i)).unwrap();
        // Both directions of a slow node's traffic take the slow path,
        // at any tick/sequence (membership ignores those axes).
        for tick in 0..4 {
            assert_eq!(model.sample(seed, s, healthy, tick, 0, 0), 16);
            assert_eq!(model.sample(seed, healthy, s, tick, 7, 0), 16);
        }
        let other = (0..64)
            .find(|i| !slow_nodes.contains(i) && *i != healthy)
            .unwrap();
        assert_eq!(model.sample(seed, healthy, other, 0, 0, 0), 1);
        // A different seed re-keys the subset.
        let reseeded: Vec<usize> = (0..64)
            .filter(|&i| is_slow_node(seed ^ 0xdead, i, 300_000))
            .collect();
        assert_ne!(slow_nodes, reseeded, "subset ignores the seed");
    }

    #[test]
    fn attempt_axis_changes_jittered_draws() {
        let model = LatencyModel::Uniform { min: 1, max: 1000 };
        let by_attempt: Vec<u64> = (0..8).map(|a| model.sample(1, 0, 1, 0, 0, a)).collect();
        let distinct: std::collections::HashSet<_> = by_attempt.iter().collect();
        assert!(distinct.len() > 1, "attempt axis ignored: {by_attempt:?}");
    }
}
