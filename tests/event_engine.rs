//! End-to-end contracts of the discrete-event engine through the
//! public runner API: replay determinism down to archive bytes, the
//! `latency_model` archive header field, and behaviour only an event
//! engine can express (latency-dependent convergence at identical
//! drop coins).

use resource_discovery::core::algorithms::hm::HmConfig;
use resource_discovery::obs::archive;
use resource_discovery::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rd-event-it-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn event_config(latency: LatencyModel, archive: PathBuf) -> RunConfig {
    RunConfig::new(Topology::KOut { k: 3 }, 192, 7)
        .with_max_rounds(2_000)
        .with_engine(EngineKind::Event { latency })
        .with_trace(1 << 14)
        .with_obs(ObsSpec::new().with_archive(archive))
}

/// Strips the host-timing telemetry — the only archive content that
/// measures the machine rather than the simulated run, and therefore
/// the only content outside the determinism boundary on *any* engine:
/// per-round `wall_ns` and the summary's `wall_ns_total`, the `phase`
/// and `worker` span-timing records, the `wall_seconds_total` gauge,
/// and the `*_ns` histograms. Every other byte must replay exactly.
fn without_wall_clock(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines().filter(|l| {
        !(l.starts_with("{\"type\":\"phase\"")
            || l.starts_with("{\"type\":\"worker\"")
            || l.contains("\"name\":\"wall_seconds_total\"")
            || (l.starts_with("{\"type\":\"hist\"") && l.contains("_ns\"")))
    }) {
        let mut rest = line;
        while let Some(i) = rest.find("\"wall_ns") {
            let colon = rest[i..].find(':').unwrap();
            let (head, tail) = rest.split_at(i + colon + 1);
            out.push_str(head);
            let digits = tail.chars().take_while(char::is_ascii_digit).count();
            out.push('0');
            rest = &tail[digits..];
        }
        out.push_str(rest);
        out.push('\n');
    }
    out
}

/// Same seed, same latency model ⇒ byte-identical run archives (modulo
/// the wall-clock fields, which measure the host, not the run). This
/// is the replay contract of the whole subsystem: every latency draw,
/// timer firing, and delivery is a pure function of the run seed.
#[test]
fn same_seed_same_model_means_byte_identical_archives() {
    let dir = tmp_dir("replay");
    for model in [
        LatencyModel::Constant { ticks: 3 },
        LatencyModel::Uniform { min: 1, max: 6 },
        LatencyModel::LogNormal {
            mu_milli: 400,
            sigma_milli: 900,
            cap: 24,
        },
    ] {
        let mut reports = Vec::new();
        let mut texts = Vec::new();
        for pass in 0..2 {
            let path = dir.join(format!("{}-{pass}.jsonl", model.name().replace(':', "-")));
            let report = run(
                AlgorithmKind::Hm(HmConfig::default()),
                &event_config(model, path.clone()),
            );
            reports.push(report);
            texts.push(without_wall_clock(&std::fs::read_to_string(&path).unwrap()));
        }
        assert_eq!(reports[0], reports[1], "{}: report diverged", model.name());
        assert_eq!(
            texts[0],
            texts[1],
            "{}: archive bytes diverged between identical runs",
            model.name()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Event-engine archives carry the latency model in their header and
/// still validate; round-engine archives keep omitting the field, so
/// their byte format is untouched by this subsystem.
#[test]
fn archives_record_the_latency_model() {
    let dir = tmp_dir("header");
    let path = dir.join("event.jsonl");
    run(
        AlgorithmKind::Hm(HmConfig::default()),
        &event_config(LatencyModel::Uniform { min: 1, max: 4 }, path.clone()),
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(archive::validate(&text).is_empty());
    let parsed = archive::parse(&text).unwrap();
    assert_eq!(parsed.header.engine, "event:uniform:1:4");
    assert_eq!(parsed.header.latency_model.as_deref(), Some("uniform:1:4"));

    let seq_path = dir.join("seq.jsonl");
    run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(Topology::KOut { k: 3 }, 192, 7)
            .with_obs(ObsSpec::new().with_archive(seq_path.clone())),
    );
    let seq_text = std::fs::read_to_string(&seq_path).unwrap();
    let seq = archive::parse(&seq_text).unwrap();
    assert_eq!(seq.header.latency_model, None);
    assert!(
        !seq_text.contains("latency_model"),
        "round-engine archive grew a latency_model field"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The headline behavioural claim: under the same seed (hence the same
/// drop coins and node randomness), heavy-tail latency stretches
/// convergence past the synchronous run — a result no round engine can
/// express, since their delay knob is bounded uniform jitter.
#[test]
fn heavy_tail_latency_stretches_convergence() {
    let base = RunConfig::new(Topology::KOut { k: 3 }, 256, 11).with_max_rounds(4_000);
    let sync = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &base.clone().with_engine(EngineKind::Event {
            latency: LatencyModel::default(),
        }),
    );
    let tail = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &base.with_engine(EngineKind::Event {
            latency: LatencyModel::LogNormal {
                mu_milli: 700,
                sigma_milli: 1_200,
                cap: 64,
            },
        }),
    );
    assert!(sync.completed, "synchronous run must converge");
    assert!(tail.completed, "heavy-tail run must still converge");
    assert!(
        tail.rounds > sync.rounds,
        "heavy-tail latency should stretch convergence: {} vs {} ticks",
        tail.rounds,
        sync.rounds
    );
}
