//! Descriptive statistics over repeated-seed measurements.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for count < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (midpoint-interpolated for even counts).
    pub median: f64,
}

impl Summary {
    /// A zeroed summary for an empty sample.
    pub fn empty() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
            median: 0.0,
        }
    }

    /// Renders as `mean ± std` with the given precision.
    pub fn mean_pm_std(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.std)
    }

    /// Half-width of the 95% confidence interval for the mean, using
    /// Student's t critical values (0 for samples smaller than 2).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        t_critical_95(self.count - 1) * self.std / (self.count as f64).sqrt()
    }

    /// The 95% confidence interval `(low, high)` for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }
}

/// Two-sided 95% critical value of Student's t distribution with `df`
/// degrees of freedom (exact table through 30, then the asymptotic
/// normal value — the error of that tail approximation is under 2%).
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.960
    }
}

/// Summarizes a sample. Returns [`Summary::empty`] for empty input.
///
/// # Example
///
/// ```
/// let s = rd_analysis::summarize(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.median, 2.5);
/// assert_eq!(s.min, 1.0);
/// ```
pub fn summarize(sample: &[f64]) -> Summary {
    if sample.is_empty() {
        return Summary::empty();
    }
    let count = sample.len();
    let mean = sample.iter().sum::<f64>() / count as f64;
    let var = if count > 1 {
        sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
    } else {
        0.0
    };
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let median = if count % 2 == 1 {
        sorted[count / 2]
    } else {
        (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
    };
    Summary {
        count,
        mean,
        std: var.sqrt(),
        min: sorted[0],
        max: sorted[count - 1],
        median,
    }
}

/// The `p`-th percentile (0–100) of a sample, by nearest-rank.
///
/// # Panics
///
/// Panics on an empty sample or `p` outside `0..=100`.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    assert!(!sample.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        assert_eq!(summarize(&[]), Summary::empty());
    }

    #[test]
    fn single_value() {
        let s = summarize(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Bessel-corrected std of this classic sample is ~2.138.
        assert!((s.std - 2.138).abs() < 0.01, "std = {}", s.std);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn odd_median() {
        assert_eq!(summarize(&[3.0, 1.0, 2.0]).median, 2.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 50.0), 51.0); // nearest-rank on 0..99
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn formatting() {
        let s = summarize(&[1.0, 2.0]);
        assert_eq!(s.mean_pm_std(1), "1.5 ± 0.7");
    }

    #[test]
    fn ci95_matches_hand_computation() {
        // Sample of 5: std = 1, mean = 10; t(4) = 2.776.
        let s = Summary {
            count: 5,
            mean: 10.0,
            std: 1.0,
            min: 8.0,
            max: 12.0,
            median: 10.0,
        };
        let expect = 2.776 / 5f64.sqrt();
        assert!((s.ci95_half_width() - expect).abs() < 1e-9);
        let (lo, hi) = s.ci95();
        assert!((hi - lo - 2.0 * expect).abs() < 1e-9);
    }

    #[test]
    fn ci95_zero_for_tiny_samples() {
        assert_eq!(summarize(&[3.0]).ci95_half_width(), 0.0);
        assert_eq!(Summary::empty().ci95_half_width(), 0.0);
    }

    #[test]
    fn ci95_narrows_with_sample_size() {
        let small = Summary {
            count: 3,
            std: 1.0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            median: 0.0,
        };
        let large = Summary {
            count: 100,
            ..small
        };
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
