//! Property-based tests over the topology zoo and graph utilities.

use proptest::prelude::*;
use rd_graphs::{connectivity, metrics, topology::Topology, DiGraph, UnionFind};

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Path),
        Just(Topology::Cycle),
        Just(Topology::StarOut),
        Just(Topology::StarIn),
        Just(Topology::BinaryTree),
        Just(Topology::RandomTree),
        Just(Topology::Hypercube),
        Just(Topology::Grid2d),
        Just(Topology::Lollipop),
        (1usize..6).prop_map(|k| Topology::KOut { k }),
        (1usize..8).prop_map(|avg_degree| Topology::ErdosRenyi { avg_degree }),
        (1usize..20).prop_map(|cliques| Topology::CliqueChain { cliques }),
        (1usize..4).prop_map(|m| Topology::ScaleFree { m }),
    ]
}

proptest! {
    #[test]
    fn generated_graphs_are_weakly_connected(
        topo in arb_topology(),
        n in 1usize..400,
        seed in any::<u64>(),
    ) {
        let g = topo.generate(n, seed);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(connectivity::is_weakly_connected(&g));
    }

    #[test]
    fn generation_is_deterministic(
        topo in arb_topology(),
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        prop_assert_eq!(topo.generate(n, seed), topo.generate(n, seed));
    }

    #[test]
    fn double_sweep_never_exceeds_exact_diameter(
        topo in arb_topology(),
        n in 2usize..80,
        seed in any::<u64>(),
    ) {
        let g = topo.generate(n, seed);
        let exact = metrics::undirected_diameter(&g).expect("connected");
        let approx = metrics::approx_undirected_diameter(&g, 0).expect("connected");
        prop_assert!(approx <= exact);
        // Double sweep is a 2-approximation from any start node.
        prop_assert!(u64::from(exact) <= 2 * u64::from(approx) + 1);
    }

    #[test]
    fn union_find_agrees_with_component_labels(
        edges in prop::collection::vec((0usize..50, 0usize..50), 0..120),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = DiGraph::from_edges(50, edges.iter().copied());
        let labels = connectivity::weak_components(&g);
        let mut uf = UnionFind::new(50);
        for &(u, v) in &edges {
            uf.union(u, v);
        }
        for u in 0..50 {
            for v in 0..50 {
                prop_assert_eq!(labels[u] == labels[v], uf.same(u, v));
            }
        }
    }

    #[test]
    fn scc_partition_covers_all_nodes_once(
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..150),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = DiGraph::from_edges(40, edges);
        let comps = connectivity::strongly_connected_components(&g);
        let mut seen = [false; 40];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "node {} in two SCCs", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scc_members_are_mutually_reachable(
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..80),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = DiGraph::from_edges(25, edges);
        for comp in connectivity::strongly_connected_components(&g) {
            let reach = connectivity::reachable_from(&g, comp[0]);
            for &v in &comp {
                prop_assert!(reach[v]);
                let back = connectivity::reachable_from(&g, v);
                prop_assert!(back[comp[0]]);
            }
        }
    }
}
