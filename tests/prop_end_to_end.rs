//! Workspace-level property tests through the umbrella crate's public
//! API: complexity relationships that must hold on arbitrary instances.

use proptest::prelude::*;
use resource_discovery::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Cycle),
        Just(Topology::RandomTree),
        Just(Topology::Hypercube),
        Just(Topology::Grid2d),
        (2usize..5).prop_map(|k| Topology::KOut { k }),
        (2usize..6).prop_map(|avg_degree| Topology::ErdosRenyi { avg_degree }),
        (2usize..10).prop_map(|cliques| Topology::CliqueChain { cliques }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flooding is the round-complexity floor: no algorithm (with our
    /// super-round constants) completes in fewer rounds than it, and
    /// everything completes.
    #[test]
    fn flooding_is_the_round_floor(
        topo in arb_topology(),
        n in 8usize..120,
        seed in any::<u64>(),
    ) {
        let cfg = RunConfig::new(topo, n, seed).with_max_rounds(60_000);
        let flood = run(AlgorithmKind::Flooding, &cfg);
        prop_assert!(flood.completed);
        for kind in [AlgorithmKind::NameDropper, AlgorithmKind::Hm(HmConfig::default())] {
            let other = run(kind, &cfg);
            prop_assert!(other.completed);
            prop_assert!(
                other.rounds + 2 >= flood.rounds,
                "{} ({} rounds) beat flooding ({} rounds)",
                other.algorithm, other.rounds, flood.rounds
            );
        }
    }

    /// Every node whose initial knowledge is incomplete must receive at
    /// least one message, so total messages are bounded below by the
    /// number of such nodes; and bit complexity exceeds pointer
    /// complexity whenever anything was sent.
    #[test]
    fn complexity_lower_bounds_hold(
        topo in arb_topology(),
        n in 2usize..100,
        seed in any::<u64>(),
    ) {
        let g = topo.generate(n, seed);
        let must_receive = (0..n).filter(|&u| g.out_degree(u) < n - 1).count() as u64;
        for kind in AlgorithmKind::contenders() {
            let report = run(kind, &RunConfig::new(topo, n, seed).with_max_rounds(60_000));
            prop_assert!(report.completed);
            prop_assert!(
                report.messages >= must_receive,
                "{}: {} messages < {} nodes with something to learn",
                report.algorithm, report.messages, must_receive
            );
            prop_assert!(report.bits >= report.pointers);
            prop_assert!(report.max_sent_messages <= report.messages);
        }
    }

    /// Everyone-knows-everyone requires at least n·(n-1) pointer
    /// receptions minus what the initial knowledge already provides —
    /// every algorithm's pointer count respects the information bound.
    #[test]
    fn pointer_complexity_respects_information_bound(
        topo in arb_topology(),
        n in 4usize..80,
        seed in any::<u64>(),
    ) {
        let g = topo.generate(n, seed);
        let initial_pointers: u64 = g.edge_count() as u64;
        let must_learn = (n * (n - 1)) as u64 - initial_pointers;
        let report = run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(topo, n, seed).with_max_rounds(60_000),
        );
        prop_assert!(report.completed);
        // Each delivered pointer teaches at most one (node, id) pair,
        // and envelope sources teach one more per message.
        prop_assert!(
            report.pointers + report.messages >= must_learn,
            "{} pointers + {} messages < {} required learnings",
            report.pointers, report.messages, must_learn
        );
    }

    /// The failure detector never hurts: enabling it on a fault-free run
    /// changes nothing.
    #[test]
    fn detector_is_inert_without_crashes(
        topo in arb_topology(),
        n in 2usize..80,
        seed in any::<u64>(),
    ) {
        let plain = run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(topo, n, seed).with_max_rounds(60_000),
        );
        let with_detector = run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(topo, n, seed)
                .with_max_rounds(60_000)
                .with_faults(FaultPlan::new().with_crash_detection_after(0)),
        );
        prop_assert_eq!(plain, with_detector);
    }
}
