//! One module per experiment of the evaluation (`DESIGN.md` §4).
//!
//! | module       | regenerates |
//! |--------------|-------------|
//! | [`scaling`]  | T1 (rounds vs n), F1 (scaling-law fits), T2 (messages), F2 (pointers), F4 (round ratios) |
//! | [`survey`]   | T3 (topology robustness) |
//! | [`clusters`] | F3 (cluster-count collapse per super-round) |
//! | [`ablation`] | T4 (merge rule / probe parallelism / invite ablations) |
//! | [`diameter`] | F5 (rounds vs diameter at fixed n) |
//! | [`floor`]    | F6 (the Ω(log D) floor on paths) |
//! | [`faults`]   | T5 (completion under message drops) |
//! | [`gossip`]   | T6 (direct-addressing gossip vs push–pull) |
//! | [`classic`]  | T7 (the full historical suite, HLL '99 onward) |
//! | [`failover`] | T8 (staggered leader crashes with failure detection) |
//! | [`bandwidth`]| T9 (completion under per-node receive caps) |
//! | [`asynchrony`]| T10 (completion under random message delays) |

pub mod ablation;
pub mod asynchrony;
pub mod bandwidth;
pub mod classic;
pub mod clusters;
pub mod diameter;
pub mod failover;
pub mod faults;
pub mod floor;
pub mod gossip;
pub mod scaling;
pub mod survey;
