//! The topology zoo: generators for every initial-knowledge-graph family
//! used in the evaluation.
//!
//! A knowledge graph's edge `u -> v` means "`u` initially knows `v`'s
//! identifier". Resource discovery requires weak connectivity, so every
//! generator either is weakly connected by construction or is repaired by
//! [`ensure_weakly_connected`] after random generation.

use crate::connectivity;
use crate::digraph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A family of initial knowledge graphs, parameterised where applicable.
///
/// # Example
///
/// ```
/// use rd_graphs::{Topology, connectivity};
///
/// for topo in Topology::survey() {
///     let g = topo.generate(64, 7);
///     assert_eq!(g.node_count(), 64);
///     assert!(connectivity::is_weakly_connected(&g), "{topo}");
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Directed path: `i` knows `i + 1`. Diameter `n - 1`: the worst case
    /// for every algorithm (see DESIGN.md §1.1).
    Path,
    /// Directed cycle: the path plus `n-1 -> 0`.
    Cycle,
    /// Out-star: node 0 knows every other node; leaves know nobody.
    StarOut,
    /// In-star: every node knows node 0.
    StarIn,
    /// Complete binary tree, parent knows children.
    BinaryTree,
    /// Uniform random recursive tree: node `i` knows one uniform `j < i`.
    RandomTree,
    /// Complete knowledge graph (everyone already knows everyone's id but
    /// not that discovery is complete — also the gossip substrate).
    Complete,
    /// Every node knows `k` distinct uniform random peers; repaired to
    /// weak connectivity. The evaluation's default "overlay bootstrap"
    /// workload.
    KOut {
        /// Out-degree per node.
        k: usize,
    },
    /// `G(n, m)` random digraph with `m ≈ avg_degree · n` edges, repaired
    /// to weak connectivity.
    ErdosRenyi {
        /// Expected out-degree per node.
        avg_degree: usize,
    },
    /// Hypercube over `⌈log₂ n⌉` dimensions, truncated to `n` nodes
    /// (edges to indices `>= n` are skipped).
    Hypercube,
    /// Two-dimensional grid with row-major layout and rightward/downward
    /// knowledge edges.
    Grid2d,
    /// A chain of `cliques` bidirectional cliques joined by single
    /// bridges. Diameter `Θ(cliques)` at any `n`: the knob experiment F5
    /// turns to isolate diameter dependence.
    CliqueChain {
        /// Number of cliques in the chain.
        cliques: usize,
    },
    /// Barabási–Albert preferential attachment: each new node knows
    /// `m` degree-biased existing nodes.
    ScaleFree {
        /// Attachment edges per new node.
        m: usize,
    },
    /// Lollipop: a clique on `n/2` nodes with a path of `n/2` hanging off.
    Lollipop,
}

impl Topology {
    /// A short stable name for tables and CSV output.
    pub fn name(&self) -> String {
        match self {
            Topology::Path => "path".into(),
            Topology::Cycle => "cycle".into(),
            Topology::StarOut => "star-out".into(),
            Topology::StarIn => "star-in".into(),
            Topology::BinaryTree => "binary-tree".into(),
            Topology::RandomTree => "random-tree".into(),
            Topology::Complete => "complete".into(),
            Topology::KOut { k } => format!("kout-{k}"),
            Topology::ErdosRenyi { avg_degree } => format!("er-{avg_degree}"),
            Topology::Hypercube => "hypercube".into(),
            Topology::Grid2d => "grid".into(),
            Topology::CliqueChain { cliques } => format!("clique-chain-{cliques}"),
            Topology::ScaleFree { m } => format!("scale-free-{m}"),
            Topology::Lollipop => "lollipop".into(),
        }
    }

    /// The ten-topology survey used by experiment T3.
    pub fn survey() -> Vec<Topology> {
        vec![
            Topology::Path,
            Topology::Cycle,
            Topology::StarOut,
            Topology::StarIn,
            Topology::BinaryTree,
            Topology::RandomTree,
            Topology::KOut { k: 3 },
            Topology::ErdosRenyi { avg_degree: 4 },
            Topology::Hypercube,
            Topology::Grid2d,
            Topology::CliqueChain { cliques: 16 },
            Topology::ScaleFree { m: 2 },
            Topology::Lollipop,
            Topology::Complete,
        ]
    }

    /// Generates an `n`-node instance of this family.
    ///
    /// The result is always weakly connected (for `n >= 1`). `seed` makes
    /// random families reproducible; deterministic families ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if a parameterised family receives a
    /// degenerate parameter (`k == 0`, `m == 0`, `cliques == 0`).
    pub fn generate(&self, n: usize, seed: u64) -> DiGraph {
        assert!(n > 0, "knowledge graphs need at least one node");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        match *self {
            Topology::Path => path(n),
            Topology::Cycle => cycle(n),
            Topology::StarOut => star_out(n),
            Topology::StarIn => star_in(n),
            Topology::BinaryTree => binary_tree(n),
            Topology::RandomTree => random_tree(n, &mut rng),
            Topology::Complete => complete(n),
            Topology::KOut { k } => k_out(n, k, &mut rng),
            Topology::ErdosRenyi { avg_degree } => erdos_renyi(n, avg_degree, &mut rng),
            Topology::Hypercube => hypercube(n),
            Topology::Grid2d => grid2d(n),
            Topology::CliqueChain { cliques } => clique_chain(n, cliques),
            Topology::ScaleFree { m } => scale_free(n, m, &mut rng),
            Topology::Lollipop => lollipop(n),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

fn path(n: usize) -> DiGraph {
    DiGraph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
}

fn cycle(n: usize) -> DiGraph {
    let mut g = path(n);
    if n > 1 {
        g.add_edge(n - 1, 0);
    }
    g
}

fn star_out(n: usize) -> DiGraph {
    DiGraph::from_edges(n, (1..n).map(|i| (0, i)))
}

fn star_in(n: usize) -> DiGraph {
    DiGraph::from_edges(n, (1..n).map(|i| (i, 0)))
}

fn binary_tree(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                g.add_edge(i, child);
            }
        }
    }
    g
}

fn random_tree(n: usize, rng: &mut StdRng) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 1..n {
        let j = rng.random_range(0..i);
        g.add_edge(i, j);
    }
    g
}

fn complete(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    g
}

fn k_out(n: usize, k: usize, rng: &mut StdRng) -> DiGraph {
    assert!(k > 0, "k-out requires k >= 1");
    let mut g = DiGraph::new(n);
    if n == 1 {
        return g;
    }
    let k = k.min(n - 1);
    for u in 0..n {
        let mut added = 0;
        // Rejection sampling; with k << n this terminates quickly, and
        // the loop guard keeps degenerate cases (k close to n) safe.
        let mut attempts = 0;
        while added < k && attempts < 64 * k + 64 {
            attempts += 1;
            let v = rng.random_range(0..n);
            if v != u && g.add_edge(u, v) {
                added += 1;
            }
        }
        // Deterministic fallback for the (tiny-n) cases where rejection
        // sampling stalls.
        let mut v = (u + 1) % n;
        while added < k {
            if v != u && g.add_edge(u, v) {
                added += 1;
            }
            v = (v + 1) % n;
        }
    }
    ensure_weakly_connected(&mut g, rng);
    g
}

fn erdos_renyi(n: usize, avg_degree: usize, rng: &mut StdRng) -> DiGraph {
    assert!(avg_degree > 0, "Erdős–Rényi requires avg_degree >= 1");
    let mut g = DiGraph::new(n);
    if n == 1 {
        return g;
    }
    let target = avg_degree.saturating_mul(n).min(n * (n - 1));
    let mut inserted = 0;
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(20) + 100;
    while inserted < target && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && g.add_edge(u, v) {
            inserted += 1;
        }
    }
    ensure_weakly_connected(&mut g, rng);
    g
}

fn hypercube(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    if n == 1 {
        return g;
    }
    let dims = usize::BITS - (n - 1).leading_zeros();
    for v in 0..n {
        for b in 0..dims {
            let w = v ^ (1usize << b);
            if w < n && w != v {
                g.add_edge(v, w);
            }
        }
    }
    g
}

fn grid2d(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    let w = (n as f64).sqrt().ceil() as usize;
    let w = w.max(1);
    for v in 0..n {
        if (v + 1) % w != 0 && v + 1 < n {
            g.add_edge(v, v + 1);
        }
        if v + w < n {
            g.add_edge(v, v + w);
        }
    }
    // A final partial row whose first cell index is not a multiple of w
    // cannot occur (row-major layout), but a 1-wide tail is linked by the
    // downward edges above; nothing else to repair.
    g
}

/// Chain of `cliques` bidirectional cliques. Exposed directly (in
/// addition to [`Topology::CliqueChain`]) so experiment F5 can sweep the
/// clique count while keeping `n` fixed.
pub fn clique_chain(n: usize, cliques: usize) -> DiGraph {
    assert!(cliques > 0, "clique chain requires at least one clique");
    let cliques = cliques.min(n);
    let mut g = DiGraph::new(n);
    let base = n / cliques;
    let extra = n % cliques;
    let mut start = 0;
    let mut prev_last: Option<usize> = None;
    for c in 0..cliques {
        let size = base + usize::from(c < extra);
        let end = start + size;
        for u in start..end {
            for v in start..end {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        if let Some(p) = prev_last {
            // Single directed bridge: the previous clique's last node
            // knows this clique's first node, and vice versa, so the
            // chain is weakly (indeed strongly) connected.
            g.add_edge(p, start);
            g.add_edge(start, p);
        }
        prev_last = Some(end - 1);
        start = end;
    }
    g
}

fn scale_free(n: usize, m: usize, rng: &mut StdRng) -> DiGraph {
    assert!(m > 0, "preferential attachment requires m >= 1");
    let mut g = DiGraph::new(n);
    if n == 1 {
        return g;
    }
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<u32> = vec![0];
    for i in 1..n {
        let targets = m.min(i);
        let mut added = 0;
        let mut attempts = 0;
        while added < targets && attempts < 64 * targets + 64 {
            attempts += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())] as usize;
            if t != i && g.add_edge(i, t) {
                endpoints.push(t as u32);
                added += 1;
            }
        }
        if added == 0 {
            // Guarantee attachment even if sampling stalled.
            g.add_edge(i, i - 1);
            endpoints.push((i - 1) as u32);
        }
        endpoints.push(i as u32);
    }
    g
}

fn lollipop(n: usize) -> DiGraph {
    let head = (n / 2).max(1);
    let mut g = DiGraph::new(n);
    for u in 0..head {
        for v in 0..head {
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    for i in head..n {
        g.add_edge(i, i - 1);
        g.add_edge(i - 1, i);
    }
    g
}

/// Repairs a (possibly disconnected) random graph to weak connectivity by
/// linking one random representative of each weak component to a random
/// node of the previous component.
pub fn ensure_weakly_connected(g: &mut DiGraph, rng: &mut StdRng) {
    let n = g.node_count();
    if n <= 1 || connectivity::is_weakly_connected(g) {
        return;
    }
    let labels = connectivity::weak_components(g);
    let mut members: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (v, &c) in labels.iter().enumerate() {
        members.entry(c).or_default().push(v);
    }
    let comps: Vec<&Vec<usize>> = members.values().collect();
    for w in comps.windows(2) {
        let a = w[0][rng.random_range(0..w[0].len())];
        let b = w[1][rng.random_range(0..w[1].len())];
        g.add_edge(b, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn every_survey_family_is_weakly_connected() {
        for topo in Topology::survey() {
            for n in [1usize, 2, 3, 7, 32, 100] {
                let g = topo.generate(n, 1234);
                assert_eq!(g.node_count(), n, "{topo} n={n}");
                assert!(
                    connectivity::is_weakly_connected(&g),
                    "{topo} n={n} disconnected"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for topo in [
            Topology::KOut { k: 3 },
            Topology::ErdosRenyi { avg_degree: 4 },
            Topology::RandomTree,
            Topology::ScaleFree { m: 2 },
        ] {
            let a = topo.generate(200, 9);
            let b = topo.generate(200, 9);
            let c = topo.generate(200, 10);
            assert_eq!(a, b, "{topo} not deterministic");
            assert_ne!(a, c, "{topo} ignores seed");
        }
    }

    #[test]
    fn path_shape() {
        let g = Topology::Path.generate(5, 0);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(metrics::undirected_diameter(&g), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = Topology::Cycle.generate(6, 0);
        assert_eq!(g.edge_count(), 6);
        assert!(connectivity::is_strongly_connected(&g));
    }

    #[test]
    fn stars_have_diameter_two() {
        for topo in [Topology::StarOut, Topology::StarIn] {
            let g = topo.generate(9, 0);
            assert_eq!(g.edge_count(), 8);
            assert_eq!(metrics::undirected_diameter(&g), Some(2), "{topo}");
        }
    }

    #[test]
    fn complete_has_all_edges() {
        let g = Topology::Complete.generate(7, 0);
        assert_eq!(g.edge_count(), 42);
    }

    #[test]
    fn kout_has_exact_out_degree() {
        let g = Topology::KOut { k: 3 }.generate(50, 5);
        for u in 0..50 {
            assert!(g.out_degree(u) >= 3, "node {u} degree {}", g.out_degree(u));
        }
    }

    #[test]
    fn kout_clamps_k_for_tiny_n() {
        let g = Topology::KOut { k: 10 }.generate(4, 5);
        for u in 0..4 {
            assert_eq!(g.out_degree(u), 3);
        }
    }

    #[test]
    fn erdos_renyi_hits_edge_budget() {
        let g = Topology::ErdosRenyi { avg_degree: 4 }.generate(500, 5);
        let m = g.edge_count();
        assert!((1900..=2600).contains(&m), "edge count {m} out of range");
    }

    #[test]
    fn hypercube_power_of_two_degrees() {
        let g = Topology::Hypercube.generate(16, 0);
        for u in 0..16 {
            assert_eq!(g.out_degree(u), 4);
        }
        assert_eq!(metrics::undirected_diameter(&g), Some(4));
    }

    #[test]
    fn hypercube_truncated_still_connected() {
        let g = Topology::Hypercube.generate(13, 0);
        assert!(connectivity::is_weakly_connected(&g));
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let g = Topology::Grid2d.generate(16, 0);
        assert_eq!(metrics::undirected_diameter(&g), Some(6));
    }

    #[test]
    fn clique_chain_diameter_scales_with_cliques() {
        let d4 = metrics::undirected_diameter(&clique_chain(64, 4)).unwrap();
        let d16 = metrics::undirected_diameter(&clique_chain(64, 16)).unwrap();
        assert!(d16 > d4, "d4={d4} d16={d16}");
        assert!(connectivity::is_strongly_connected(&clique_chain(64, 16)));
    }

    #[test]
    fn clique_chain_clamps_cliques_to_n() {
        let g = clique_chain(3, 10);
        assert!(connectivity::is_weakly_connected(&g));
    }

    #[test]
    fn scale_free_every_late_node_attaches() {
        let g = Topology::ScaleFree { m: 2 }.generate(300, 3);
        for u in 2..300 {
            assert!(g.out_degree(u) >= 1, "node {u} unattached");
        }
        assert!(connectivity::is_weakly_connected(&g));
    }

    #[test]
    fn lollipop_has_clique_and_tail() {
        let g = Topology::Lollipop.generate(20, 0);
        assert!(g.out_degree(0) >= 9);
        let d = metrics::undirected_diameter(&g).unwrap();
        assert!(d >= 10, "tail too short: diameter {d}");
    }

    #[test]
    fn ensure_weakly_connected_repairs() {
        let mut g = DiGraph::from_edges(6, [(0, 1), (2, 3), (4, 5)]);
        let mut rng = StdRng::seed_from_u64(1);
        ensure_weakly_connected(&mut g, &mut rng);
        assert!(connectivity::is_weakly_connected(&g));
    }

    #[test]
    fn single_node_everywhere() {
        for topo in Topology::survey() {
            let g = topo.generate(1, 0);
            assert_eq!(g.node_count(), 1);
            assert_eq!(g.edge_count(), 0);
        }
    }
}
