//! Terminal scatter plots: quick visual shape checks for the figure
//! series, rendered as plain text so they live happily in logs and in
//! EXPERIMENTS.md code blocks.

use std::fmt;

const MARKERS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

/// A multi-series character-grid scatter plot.
///
/// # Example
///
/// ```
/// use rd_analysis::plot::Plot;
///
/// let mut p = Plot::new(40, 10).with_log_x();
/// p.series("hm", [(256.0, 29.0), (1024.0, 33.0), (8192.0, 34.0)]);
/// p.series("nd", [(256.0, 19.0), (1024.0, 21.0), (4096.0, 26.0)]);
/// let text = p.to_string();
/// assert!(text.contains("o = hm"));
/// assert!(text.contains('x'));
/// ```
#[derive(Debug, Clone)]
pub struct Plot {
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Plot {
    /// Creates a plot with the given character-grid dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "plot too small: {width}x{height}"
        );
        Plot {
            width,
            height,
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Scales the x axis logarithmically (base 2).
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Scales the y axis logarithmically (base 2).
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a named series. Points with non-positive coordinates on a
    /// log-scaled axis are skipped at render time.
    pub fn series(
        &mut self,
        label: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> &mut Self {
        self.series
            .push((label.into(), points.into_iter().collect()));
        self
    }

    fn scale(&self, v: f64, log: bool) -> Option<f64> {
        if log {
            (v > 0.0).then(|| v.log2())
        } else {
            Some(v)
        }
    }
}

impl fmt::Display for Plot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Collect scaled points per series.
        let scaled: Vec<(usize, Vec<(f64, f64)>)> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (_, pts))| {
                let pts = pts
                    .iter()
                    .filter_map(|&(x, y)| {
                        Some((self.scale(x, self.log_x)?, self.scale(y, self.log_y)?))
                    })
                    .collect();
                (i, pts)
            })
            .collect();
        let all: Vec<(f64, f64)> = scaled.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        if all.is_empty() {
            return writeln!(f, "(empty plot)");
        }
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in &all {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let span = |lo: f64, hi: f64| {
            if (hi - lo).abs() < 1e-12 {
                1.0
            } else {
                hi - lo
            }
        };
        let (sx, sy) = (span(min_x, max_x), span(min_y, max_y));

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, pts) in &scaled {
            let marker = MARKERS[si % MARKERS.len()];
            for &(x, y) in pts {
                let col = (((x - min_x) / sx) * (self.width - 1) as f64).round() as usize;
                let row = (((y - min_y) / sy) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row; // y grows upward
                grid[row][col] = marker;
            }
        }

        let unscale = |v: f64, log: bool| if log { 2f64.powf(v) } else { v };
        writeln!(
            f,
            "{:>10.4} +{}",
            unscale(max_y, self.log_y),
            "-".repeat(self.width)
        )?;
        for row in &grid {
            writeln!(f, "{:>10} |{}", "", row.iter().collect::<String>())?;
        }
        writeln!(
            f,
            "{:>10.4} +{}",
            unscale(min_y, self.log_y),
            "-".repeat(self.width)
        )?;
        writeln!(
            f,
            "{:>10} {:<.4}{}{:>.4}",
            "",
            unscale(min_x, self.log_x),
            " ".repeat(self.width.saturating_sub(8)),
            unscale(max_x, self.log_x),
        )?;
        for (i, (label, _)) in self.series.iter().enumerate() {
            writeln!(f, "{:>12} = {}", MARKERS[i % MARKERS.len()], label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_for_each_series() {
        let mut p = Plot::new(20, 6);
        p.series("a", [(0.0, 0.0), (1.0, 1.0)]);
        p.series("b", [(0.5, 0.5)]);
        let s = p.to_string();
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("o = a"));
        assert!(s.contains("x = b"));
    }

    #[test]
    fn empty_plot_renders_placeholder() {
        let p = Plot::new(10, 4);
        assert!(p.to_string().contains("empty"));
    }

    #[test]
    fn log_axis_skips_nonpositive_points() {
        let mut p = Plot::new(10, 4).with_log_x();
        p.series("a", [(0.0, 1.0)]); // unplottable on log x
        assert!(p.to_string().contains("empty"));
        let mut q = Plot::new(10, 4).with_log_x();
        q.series("a", [(1.0, 1.0), (1024.0, 2.0)]);
        assert!(q.to_string().contains('o'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut p = Plot::new(12, 4);
        p.series("flat", [(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]);
        let s = p.to_string();
        assert!(s.contains('o'));
    }

    #[test]
    fn corner_points_land_on_grid_edges() {
        let mut p = Plot::new(10, 5);
        p.series("a", [(0.0, 0.0), (9.0, 4.0)]);
        let s = p.to_string();
        let rows: Vec<&str> = s.lines().collect();
        // Top data row holds the max-y point, bottom data row the min-y.
        assert!(rows[1].contains('o'));
        assert!(rows[5].contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_dimensions_rejected() {
        Plot::new(1, 5);
    }
}
