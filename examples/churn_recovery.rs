//! Churn: discovery despite crashed machines and a lossy network.
//!
//! A fraction of the machines crashed before discovery started, and the
//! network drops 10% of all messages. The survivors must still find
//! each other. Two scenarios:
//!
//! 1. **Without a failure detector** — the protocol keeps retrying dead
//!    acquaintances forever, so the cluster never drains to quiescence
//!    and the final roster broadcast never fires; the classic PODC '99
//!    completion (some survivor knows all survivors and all survivors
//!    know it) is still reached.
//! 2. **With a failure detector** — a crash-reporting service (in the
//!    spirit of Falcon/Albatross) tells the survivors who is dead after
//!    a latency; dead work items are purged, quiescence returns, and
//!    the survivors reach full everyone-knows-everyone completion.
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use resource_discovery::prelude::*;

fn main() {
    let n = 512;
    let seed = 21;
    // A denser bootstrap overlay (k = 6) keeps the survivor subgraph
    // weakly connected despite the crashes.
    let topology = Topology::KOut { k: 6 };

    // Every 13th machine is dead from the start.
    let crashed: Vec<usize> = (0..n).filter(|i| i % 13 == 5).collect();
    println!(
        "{} machines, {} crashed before boot, 10% message loss\n",
        n,
        crashed.len()
    );

    // Scenario 1: no failure detector -> classic completion only.
    let blind_faults = FaultPlan::new()
        .with_drop_probability(0.10)
        .with_crashes(crashed.iter().copied());
    let blind = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(topology, n, seed)
            .with_faults(blind_faults)
            .with_completion(Completion::LeaderKnowsAll)
            .with_max_rounds(100_000),
    );
    assert!(blind.completed, "leader-completion failed without detector");
    println!(
        "without failure detector: leader-knows-all after {} rounds \
         ({} messages, {} dropped)",
        blind.rounds,
        blind.messages,
        blind.dropped()
    );

    // Scenario 2: crash reports arrive after 30 rounds -> survivors
    // purge dead work and reach full completion.
    let informed_faults = FaultPlan::new()
        .with_drop_probability(0.10)
        .with_crashes(crashed.iter().copied())
        .with_crash_detection_after(30);
    let informed = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(topology, n, seed)
            .with_faults(informed_faults)
            .with_max_rounds(100_000),
    );
    assert!(informed.completed, "survivors failed to fully converge");
    assert!(informed.sound);
    println!(
        "with failure detector:    everyone-knows-everyone (among survivors) \
         after {} rounds ({} messages, {} dropped)",
        informed.rounds,
        informed.messages,
        informed.dropped()
    );

    // Fault-free reference on the same instance.
    let clean = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(topology, n, seed),
    );
    println!(
        "fault-free reference:     {} rounds — churn cost {:+} rounds",
        clean.rounds,
        informed.rounds as i64 - clean.rounds as i64
    );
}
