//! Sorted-set merge kernels for the gossip hot path.
//!
//! The bench gossip workload (and any protocol that keeps its knowledge
//! as a **sorted, deduplicated** id vector) spends the bulk of each
//! round folding incoming batches into local state. Re-sorting the
//! concatenation is Θ((k+m)·log(k+m)) per round and was measured at
//! ~3 µs/node at n=2^16; the two-pointer merge here is Θ(k+m) with a
//! memcmp-only fast path for the common converged case, measured at
//! ~0.6 µs/node on the same workload — the single largest win of the
//! hot-path overhaul.
//!
//! Correctness note for capped knowledge: iterating capped 2-way merges
//! over a sequence of batches yields exactly the same result as the
//! global `sort → dedup → truncate(cap)` over the concatenation,
//! because both compute the smallest `cap` elements of the union — the
//! intermediate truncation can only drop elements that are larger than
//! `cap` smaller ones, which the global form would drop too. This
//! equivalence is property-tested below and pinned end-to-end by the
//! workload state digest in `rd-bench`'s `profile` binary.

use rd_sim::NodeId;

/// Merge two sorted, deduplicated slices into `out`, keeping at most
/// `cap` smallest elements. `out` is cleared first.
pub fn merge_sorted_capped_into(a: &[NodeId], b: &[NodeId], cap: usize, out: &mut Vec<NodeId>) {
    out.clear();
    out.reserve(cap.min(a.len() + b.len()));
    let (mut i, mut j) = (0, 0);
    // Branchless body: on randomly interleaved inputs a three-way
    // `if/else` mispredicts ~50% of iterations (~15 ns each, the
    // dominant cost of the loop); selecting with `min` and advancing by
    // boolean increments compiles to cmov/setcc instead.
    while i < a.len() && j < b.len() && out.len() < cap {
        let (x, y) = (a[i], b[j]);
        out.push(x.min(y));
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    // One side is exhausted (or the cap is hit): bulk-copy the tail —
    // no per-element comparisons needed.
    if out.len() < cap {
        let rest = if i < a.len() { &a[i..] } else { &b[j..] };
        let take = (cap - out.len()).min(rest.len());
        out.extend_from_slice(&rest[..take]);
    }
}

/// Fold a sorted, deduplicated `incoming` slice into `known` in place,
/// keeping at most `cap` smallest ids (`known` is assumed to already
/// hold at most `cap`). `scratch` is reused storage for the merge
/// output (ping-pong buffer; its prior contents are ignored).
///
/// Fast paths, in order of cost:
/// 1. `incoming` is a *prefix* of `known` — one memcmp, no writes. The
///    steady state once gossip has fully converged, since senders ship
///    the smallest ids they know.
/// 2. A read-only two-pointer scan proves `incoming` contributes
///    nothing: either every incoming id is already known, or the first
///    genuinely new id (and therefore everything after it) falls past
///    the cap boundary. Near convergence *hot* receivers see dozens of
///    such batches per round; proving the no-op costs reads only,
///    where a blind merge would rewrite the whole capped vector per
///    batch.
/// 3. Otherwise the scanned prefix `known[..i]` is exactly the merged
///    output so far (every earlier incoming id was matched inside it),
///    so the real merge bulk-copies it and resumes mid-stream.
pub fn merge_sorted_capped(
    known: &mut Vec<NodeId>,
    incoming: &[NodeId],
    cap: usize,
    scratch: &mut Vec<NodeId>,
) {
    if incoming.len() <= known.len() && incoming == &known[..incoming.len()] {
        return;
    }
    // When `known` is already full, ids >= its maximum can never enter
    // the smallest-`cap`-of-union result, so clamp `incoming` to the
    // prefix strictly below it. This keeps the scans below O(|useful
    // incoming|) instead of O(cap): a stale sender's batch that mixes a
    // few small ids with large ones would otherwise force the two-
    // pointer scan to walk the entire capped vector just to rule the
    // large ids out.
    let incoming = if known.len() >= cap && !known.is_empty() {
        let max = *known.last().unwrap();
        &incoming[..incoming.partition_point(|&x| x < max)]
    } else {
        incoming
    };
    if incoming.is_empty() {
        return;
    }
    // Read-only scan: advance through `known` matching incoming ids in
    // order until one is provably new. Branchless except for the
    // terminal "new id found" break, which fires at most once.
    let (mut i, mut j) = (0, 0);
    while i < known.len() && j < incoming.len() {
        let (x, y) = (known[i], incoming[j]);
        if y < x {
            break;
        }
        i += 1;
        j += (x == y) as usize;
    }
    if j == incoming.len() {
        // Every incoming id already known: union == known.
        return;
    }
    if i == known.len() && known.len() >= cap {
        // The first new id is larger than everything in a full `known`
        // (the scan exhausted it), so it — and every later incoming id
        // — would be truncated.
        return;
    }
    // General merge, skipping the already-verified prefix: known[..i]
    // is the merged output up to this point.
    scratch.clear();
    scratch.reserve(cap.min(known.len() + incoming.len() - j));
    let take = i.min(cap);
    scratch.extend_from_slice(&known[..take]);
    let (mut i, mut j) = (i, j);
    while i < known.len() && j < incoming.len() && scratch.len() < cap {
        let (x, y) = (known[i], incoming[j]);
        scratch.push(x.min(y));
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    if scratch.len() < cap {
        let rest = if i < known.len() {
            &known[i..]
        } else {
            &incoming[j..]
        };
        let take = (cap - scratch.len()).min(rest.len());
        scratch.extend_from_slice(&rest[..take]);
    }
    std::mem::swap(known, scratch);
}

/// Tagged variant of [`merge_sorted_capped`]: `tags[i]` is satellite
/// data for `known[i]` and is carried through the merge — surviving
/// entries keep their tag, ids inserted from `incoming` get `new_tag`.
/// Returns `true` iff `known` changed.
///
/// This powers delta gossip: the workload tags every id with the round
/// it was learned (low bits) and the round its node was last sent to
/// (high bits), and both must follow their id through rewrites. The
/// fast paths are identical to the untagged kernel — provable no-ops
/// never touch the tag array at all.
pub fn merge_sorted_capped_tagged<T: Copy>(
    known: &mut Vec<NodeId>,
    tags: &mut Vec<T>,
    incoming: &[NodeId],
    new_tag: T,
    cap: usize,
    scratch: &mut Vec<NodeId>,
    tag_scratch: &mut Vec<T>,
) -> bool {
    debug_assert_eq!(known.len(), tags.len());
    if incoming.len() <= known.len() && incoming == &known[..incoming.len()] {
        return false;
    }
    let incoming = if known.len() >= cap && !known.is_empty() {
        let max = *known.last().unwrap();
        &incoming[..incoming.partition_point(|&x| x < max)]
    } else {
        incoming
    };
    if incoming.is_empty() {
        return false;
    }
    let (mut i, mut j) = (0, 0);
    while i < known.len() && j < incoming.len() {
        let (x, y) = (known[i], incoming[j]);
        if y < x {
            break;
        }
        i += 1;
        j += (x == y) as usize;
    }
    if j == incoming.len() {
        return false;
    }
    if i == known.len() && known.len() >= cap {
        return false;
    }
    scratch.clear();
    tag_scratch.clear();
    let reserve = cap.min(known.len() + incoming.len() - j);
    scratch.reserve(reserve);
    tag_scratch.reserve(reserve);
    let take = i.min(cap);
    scratch.extend_from_slice(&known[..take]);
    tag_scratch.extend_from_slice(&tags[..take]);
    let (mut i, mut j) = (i, j);
    while i < known.len() && j < incoming.len() && scratch.len() < cap {
        let (x, y) = (known[i], incoming[j]);
        let from_known = x <= y;
        scratch.push(x.min(y));
        tag_scratch.push(if from_known { tags[i] } else { new_tag });
        i += from_known as usize;
        j += (y <= x) as usize;
    }
    while scratch.len() < cap && i < known.len() {
        scratch.push(known[i]);
        tag_scratch.push(tags[i]);
        i += 1;
    }
    while scratch.len() < cap && j < incoming.len() {
        scratch.push(incoming[j]);
        tag_scratch.push(new_tag);
        j += 1;
    }
    std::mem::swap(known, scratch);
    std::mem::swap(tags, tag_scratch);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId::new(i)).collect()
    }

    /// Reference implementation: global sort + dedup + truncate.
    fn reference(known: &[NodeId], incoming: &[NodeId], cap: usize) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = known.iter().chain(incoming).copied().collect();
        all.sort_unstable();
        all.dedup();
        all.truncate(cap);
        all
    }

    #[test]
    fn merges_disjoint_overlapping_and_contained() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 3, 5], &[2, 4, 6]),
            (&[1, 2, 3], &[2, 3, 4]),
            (&[1, 2, 3, 4], &[2, 3]),
            (&[], &[1, 2]),
            (&[1, 2], &[]),
            (&[], &[]),
        ];
        for &(a, b) in cases {
            for cap in [0, 1, 2, 3, 100] {
                let mut out = Vec::new();
                merge_sorted_capped_into(&ids(a), &ids(b), cap, &mut out);
                assert_eq!(
                    out,
                    reference(&ids(a), &ids(b), cap),
                    "a={a:?} b={b:?} cap={cap}"
                );
            }
        }
    }

    #[test]
    fn prefix_fast_path_is_a_noop() {
        let mut known = ids(&[1, 2, 3, 4, 5]);
        let mut scratch = vec![NodeId::new(99)];
        merge_sorted_capped(&mut known, &ids(&[1, 2, 3]), 4, &mut scratch);
        assert_eq!(known, ids(&[1, 2, 3, 4, 5]));
        // Scratch untouched on the fast path: no allocation, no copy.
        assert_eq!(scratch, vec![NodeId::new(99)]);
    }

    #[test]
    fn in_place_merge_matches_reference_randomized() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let cap = rng.random_range(1..64);
            let mut known: Vec<NodeId> = (0..rng.random_range(0..48))
                .map(|_| NodeId::new(rng.random_range(0..96)))
                .collect();
            known.sort_unstable();
            known.dedup();
            known.truncate(cap);
            let mut incoming: Vec<NodeId> = (0..rng.random_range(0..32))
                .map(|_| NodeId::new(rng.random_range(0..96)))
                .collect();
            incoming.sort_unstable();
            incoming.dedup();
            let want = reference(&known, &incoming, cap);
            let mut scratch = Vec::new();
            merge_sorted_capped(&mut known, &incoming, cap, &mut scratch);
            assert_eq!(known, want);
        }
    }

    #[test]
    fn tagged_merge_matches_untagged_and_carries_tags() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            let cap = rng.random_range(1..64);
            let mut known: Vec<NodeId> = (0..rng.random_range(0..48))
                .map(|_| NodeId::new(rng.random_range(0..96)))
                .collect();
            known.sort_unstable();
            known.dedup();
            known.truncate(cap);
            // Tag every existing id with its own value so provenance is
            // checkable after arbitrary rewrites.
            let mut tags: Vec<u64> = known.iter().map(|id| id.index() as u64).collect();
            let mut incoming: Vec<NodeId> = (0..rng.random_range(0..32))
                .map(|_| NodeId::new(rng.random_range(0..96)))
                .collect();
            incoming.sort_unstable();
            incoming.dedup();

            let mut untagged = known.clone();
            let mut scratch = Vec::new();
            merge_sorted_capped(&mut untagged, &incoming, cap, &mut scratch);

            let before = known.clone();
            let (mut s, mut ts) = (Vec::new(), Vec::new());
            let changed = merge_sorted_capped_tagged(
                &mut known,
                &mut tags,
                &incoming,
                u64::MAX,
                cap,
                &mut s,
                &mut ts,
            );
            assert_eq!(known, untagged);
            assert_eq!(changed, before != known);
            assert_eq!(tags.len(), known.len());
            for (id, &tag) in known.iter().zip(&tags) {
                if before.binary_search(id).is_ok() {
                    assert_eq!(tag, id.index() as u64, "surviving id keeps its tag");
                } else {
                    assert_eq!(tag, u64::MAX, "inserted id gets new_tag");
                }
            }
        }
    }

    #[test]
    fn iterated_capped_merges_match_global_sort() {
        // The workload-critical equivalence: folding batches one at a
        // time through capped merges equals one global sort+dedup+cap.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let cap = rng.random_range(1..32);
            let mut known: Vec<NodeId> = (0..rng.random_range(1..cap + 1))
                .map(|_| NodeId::new(rng.random_range(0..64)))
                .collect();
            known.sort_unstable();
            known.dedup();
            let batches: Vec<Vec<NodeId>> = (0..rng.random_range(0..6))
                .map(|_| {
                    let mut b: Vec<NodeId> = (0..rng.random_range(0..16))
                        .map(|_| NodeId::new(rng.random_range(0..64)))
                        .collect();
                    b.sort_unstable();
                    b.dedup();
                    b
                })
                .collect();
            let mut all: Vec<NodeId> = known.clone();
            for b in &batches {
                all.extend_from_slice(b);
            }
            all.sort_unstable();
            all.dedup();
            all.truncate(cap);
            let mut scratch = Vec::new();
            for b in &batches {
                merge_sorted_capped(&mut known, b, cap, &mut scratch);
            }
            assert_eq!(known, all);
        }
    }
}
