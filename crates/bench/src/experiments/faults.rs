//! **T5** — fault tolerance: completion under independent message drops.
//!
//! The HM algorithm carries an explicit reliability layer (report
//! epochs/acks, join retries, invite retries, roster rebroadcast);
//! Name-Dropper is naturally self-healing because it never stops
//! re-transferring. This experiment measures the round-count price of
//! increasing drop rates for both.

use crate::profile::Profile;
use rd_analysis::experiment::{sweep, SweepSpec};
use rd_analysis::Table;
use rd_core::runner::AlgorithmKind;
use rd_graphs::Topology;
use rd_sim::FaultPlan;

/// Drop probabilities measured.
pub fn drop_rates() -> Vec<f64> {
    vec![0.0, 0.01, 0.05, 0.10, 0.20]
}

/// Runs the drop sweep at the profile's survey size.
pub fn run(profile: Profile) -> Table {
    let n = profile.survey_n().min(2048);
    let kinds = [
        AlgorithmKind::Hm(Default::default()),
        AlgorithmKind::NameDropper,
    ];
    let mut headers = vec!["drop rate".to_string()];
    for kind in &kinds {
        headers.push(format!("{} rounds", kind.name()));
        headers.push(format!("{} completion", kind.name()));
    }
    let mut t = Table::new(headers);
    for p in drop_rates() {
        let mut row = vec![format!("{:.0}%", p * 100.0)];
        for &kind in &kinds {
            let cells = sweep(&SweepSpec {
                kinds: vec![kind],
                topology: Topology::KOut { k: 3 },
                ns: vec![n],
                seeds: profile.seeds(),
                faults: FaultPlan::new().with_drop_probability(p),
                max_rounds: 100_000,
                ..Default::default()
            });
            row.push(cells[0].rounds.mean_pm_std(1));
            row.push(format!("{}%", (cells[0].completion_rate * 100.0) as u32));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_start_fault_free() {
        let rates = drop_rates();
        assert_eq!(rates[0], 0.0);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
        assert!(*rates.last().unwrap() < 1.0);
    }
}
