//! Micro-benchmark of the routing phase itself: the serial
//! `EngineCore::route_batch` path (one shard) vs the parallel
//! `rd_exec::route_staged` fan-out/merge at 2/4/8 workers, under every
//! delivery policy the fault layer supports — fault-free synchronous
//! (the straight-line fast path), drop coins, delay jitter, and both
//! combined.
//!
//! The workload is pure routing: `n = 2¹⁴` senders stage four messages
//! each (64 Ki messages per round, enough to clear the parallel-merge
//! threshold), every payload a three-identifier `PointerList` that
//! stays in its inline representation — so the numbers isolate the
//! router (fate coins, tallies, bucket fan-out, canonical merge) rather
//! than payload shuffling. Both paths are bit-identical by construction
//! (pinned by `tests/prop_engine_equivalence.rs` and the engine-core
//! unit tests); this bench measures wall-clock only.
//!
//! Besides the criterion report, a `cargo bench` run writes a
//! machine-readable summary — rounds/sec and messages/sec per
//! configuration, speedup vs the serial router under the same policy —
//! to `BENCH_route.json` at the workspace root, with a note on host
//! parallelism (on a single-core host the parallel rows measure
//! sharding overhead, not scaling).
//!
//! ```text
//! cargo bench -p rd-bench --bench route
//! ```

use criterion::{BenchmarkId, Criterion};
use rd_exec::route_staged;
use rd_sim::{BufferPool, EngineCore, Envelope, FaultPlan, NodeId, PointerList};
use std::time::Instant;

const SEED: u64 = 11;
/// Population size: 2¹⁴ senders.
const LOG2_N: u32 = 14;
const N: usize = 1 << LOG2_N;
/// Messages staged per sender per round.
const FAN_OUT: usize = 4;
/// Rounds routed per timed run.
const ROUNDS: u64 = 40;
/// Worker counts for the parallel router (serial is the 1-shard path).
const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// The delivery policies under test.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// No faults, no jitter: the straight-line tally-and-push path.
    Fast,
    /// 5% drop probability: one coin per message.
    Drop,
    /// Delay jitter up to 3 rounds: one coin per message plus the
    /// pooled delay queue.
    Delay,
    /// Drops and delay together.
    DropDelay,
}

impl Policy {
    const ALL: [Policy; 4] = [Policy::Fast, Policy::Drop, Policy::Delay, Policy::DropDelay];

    fn label(self) -> &'static str {
        match self {
            Policy::Fast => "fast-path",
            Policy::Drop => "drop-0.05",
            Policy::Delay => "delay-3",
            Policy::DropDelay => "drop-0.05+delay-3",
        }
    }

    fn configure<M: rd_sim::MessageCost>(self, core: &mut EngineCore<M>) {
        if matches!(self, Policy::Drop | Policy::DropDelay) {
            core.set_faults(FaultPlan::new().with_drop_probability(0.05));
        }
        if matches!(self, Policy::Delay | Policy::DropDelay) {
            core.set_max_extra_delay(3);
        }
    }
}

/// One round's staged traffic in canonical `(sender, send-sequence)`
/// order: every sender ships `FAN_OUT` messages to deterministically
/// scattered destinations, each carrying a three-id inline
/// [`PointerList`].
fn make_staged(n: usize) -> Vec<Envelope<PointerList>> {
    let mut staged = Vec::with_capacity(n * FAN_OUT);
    for src in 0..n {
        for k in 0..FAN_OUT {
            let dst = (src.wrapping_mul(2_654_435_761) + k * 40_503 + 1) % n;
            let payload: PointerList = [
                NodeId::new(dst as u32),
                NodeId::new(src as u32),
                NodeId::new(k as u32),
            ]
            .as_slice()
            .into();
            staged.push(Envelope::new(
                NodeId::new(src as u32),
                NodeId::new(dst as u32),
                payload,
            ));
        }
    }
    staged
}

/// Splits the canonical staged buffer into `shards` contiguous-sender
/// chunks of `shard_len` senders each (the layout `route_staged`
/// expects).
fn split_shards(
    flat: &[Envelope<PointerList>],
    n: usize,
    shards: usize,
) -> Vec<Vec<Envelope<PointerList>>> {
    let shard_len = n.div_ceil(shards).max(1);
    let mut out: Vec<Vec<Envelope<PointerList>>> =
        (0..n.div_ceil(shard_len)).map(|_| Vec::new()).collect();
    for env in flat {
        out[env.src.index() / shard_len].push(env.clone());
    }
    out
}

/// Routes `rounds` rounds of the prototype traffic through a fresh
/// core under `policy`, with `shards` sender shards (1 = the serial
/// `route_batch` path). Each round re-stages the prototype (an inline
/// `PointerList` clone is a memcpy), routes, and clears the mailboxes
/// as a stand-in for node consumption — identical overhead across
/// configurations. Returns a message checksum and the wall-clock of
/// the loop.
fn run_route(proto: &[Vec<Envelope<PointerList>>], shards: usize, policy: Policy) -> (u64, f64) {
    let mut core: EngineCore<PointerList> = EngineCore::new(N, SEED);
    policy.configure(&mut core);
    let shard_len = N.div_ceil(shards).max(1);
    let mut routed_pool = BufferPool::new();
    let mut staged: Vec<Vec<Envelope<PointerList>>> = proto.iter().map(|_| Vec::new()).collect();
    let start = Instant::now();
    for _ in 0..ROUNDS {
        core.begin_round();
        for (buf, p) in staged.iter_mut().zip(proto) {
            buf.clear();
            buf.extend(p.iter().cloned());
        }
        route_staged(&mut core, &mut staged, shard_len, &mut routed_pool, None);
        for inbox in core.step_state().inboxes.iter_mut() {
            inbox.clear();
        }
        core.finish_round();
    }
    let secs = start.elapsed().as_secs_f64();
    (core.metrics().total_messages(), secs)
}

fn engine_label(shards: usize) -> String {
    if shards <= 1 {
        "serial".to_string()
    } else {
        format!("parallel:{shards}")
    }
}

/// The criterion-visible comparison at every policy × router config.
fn bench_route(c: &mut Criterion) {
    let flat = make_staged(N);
    let mut group = c.benchmark_group("route-throughput");
    group.sample_size(10);
    for policy in Policy::ALL {
        for shards in std::iter::once(1).chain(WORKER_COUNTS) {
            let proto = split_shards(&flat, N, shards);
            group.bench_with_input(
                BenchmarkId::new(engine_label(shards), policy.label()),
                &proto,
                |b, proto| b.iter(|| run_route(proto, shards, policy)),
            );
        }
    }
    group.finish();
}

struct Measurement {
    policy: Policy,
    shards: usize,
    best_seconds: f64,
}

/// Times each configuration directly (best of `reps`) and writes the
/// machine-readable summary to `BENCH_route.json` at the workspace
/// root.
fn write_json_summary() {
    let reps = 3;
    let flat = make_staged(N);
    let mut measurements = Vec::new();
    for policy in Policy::ALL {
        for shards in std::iter::once(1).chain(WORKER_COUNTS) {
            let proto = split_shards(&flat, N, shards);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let (msgs, secs) = run_route(&proto, shards, policy);
                std::hint::black_box(msgs);
                best = best.min(secs);
            }
            eprintln!(
                "[route-bench] {:<18} {:<11} best {:.3}s for {ROUNDS} rounds",
                policy.label(),
                engine_label(shards),
                best
            );
            measurements.push(Measurement {
                policy,
                shards,
                best_seconds: best,
            });
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let messages_per_round = (N * FAN_OUT) as f64;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"route-throughput\",\n");
    json.push_str(&format!(
        "  \"workload\": \"pure routing: 2^{LOG2_N} senders x {FAN_OUT} messages/round (inline 3-id PointerList payloads), {ROUNDS} rounds per run\",\n",
    ));
    json.push_str("  \"hardware\": {\n");
    json.push_str(&format!("    \"available_parallelism\": {cores},\n"));
    json.push_str(&format!(
        "    \"note\": \"recorded on a host with {cores} hardware thread(s); parallel speedup is bounded by physical cores, so on a single-core host the parallel rows measure sharding overhead, not scaling — rerun on a multi-core host for speedup\"\n",
    ));
    json.push_str("  },\n");
    json.push_str("  \"configs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let serial = measurements
            .iter()
            .find(|s| s.policy == m.policy && s.shards == 1)
            .expect("serial baseline present");
        let rounds_per_sec = ROUNDS as f64 / m.best_seconds;
        let msgs_per_sec = rounds_per_sec * messages_per_round;
        let speedup = serial.best_seconds / m.best_seconds;
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"engine\": \"{}\", \"workers\": {}, \"rounds\": {ROUNDS}, \"best_seconds\": {:.4}, \"rounds_per_sec\": {:.2}, \"messages_per_sec\": {:.0}, \"speedup_vs_serial\": {:.3}}}{}\n",
            m.policy.label(),
            engine_label(m.shards),
            m.shards,
            m.best_seconds,
            rounds_per_sec,
            msgs_per_sec,
            speedup,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_route.json");
    std::fs::write(path, &json).expect("write BENCH_route.json");
    eprintln!("[route-bench] wrote {path}");
}

/// Smoke check for test runs: under every policy, one routed round of
/// the serial path and the 4-way parallel path agree on metrics and on
/// every mailbox.
fn smoke() {
    let n = 512;
    let flat = make_staged_small(n);
    for policy in Policy::ALL {
        let mut serial: EngineCore<PointerList> = EngineCore::new(n, SEED);
        let mut parallel: EngineCore<PointerList> = EngineCore::new(n, SEED);
        policy.configure(&mut serial);
        policy.configure(&mut parallel);
        let mut pool_a = BufferPool::new();
        let mut pool_b = BufferPool::new();

        serial.begin_round();
        parallel.begin_round();
        let mut one_shard = vec![flat.clone()];
        route_staged(&mut serial, &mut one_shard, n, &mut pool_a, None);
        let shard_len = n.div_ceil(4);
        let mut four_shards = split_shards(&flat, n, 4);
        route_staged(
            &mut parallel,
            &mut four_shards,
            shard_len,
            &mut pool_b,
            None,
        );
        serial.finish_round();
        parallel.finish_round();

        assert_eq!(
            serial.metrics(),
            parallel.metrics(),
            "{}: metrics diverged",
            policy.label()
        );
        for (i, (a, b)) in serial
            .step_state()
            .inboxes
            .iter()
            .zip(parallel.step_state().inboxes.iter())
            .enumerate()
        {
            assert_eq!(a, b, "{}: mailbox {} diverged", policy.label(), i);
        }
    }
    eprintln!("[route-bench] smoke ok: serial and parallel:4 routers agree under every policy");
}

/// A smaller instance of [`make_staged`] for the smoke check.
fn make_staged_small(n: usize) -> Vec<Envelope<PointerList>> {
    let mut staged = Vec::with_capacity(n * FAN_OUT);
    for src in 0..n {
        for k in 0..FAN_OUT {
            let dst = (src.wrapping_mul(2_654_435_761) + k * 40_503 + 1) % n;
            let payload: PointerList = [NodeId::new(dst as u32), NodeId::new(src as u32)]
                .as_slice()
                .into();
            staged.push(Envelope::new(
                NodeId::new(src as u32),
                NodeId::new(dst as u32),
                payload,
            ));
        }
    }
    staged
}

fn main() {
    // Cargo passes `--bench` when launched via `cargo bench`; under
    // `cargo test` (or a bare run) stay fast and skip the timed pass.
    if !std::env::args().any(|a| a == "--bench") {
        smoke();
        return;
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_route(&mut criterion);
    write_json_summary();
}
