//! The reconstructed Haeupler–Malkhi sub-logarithmic discovery
//! algorithm.
//!
//! Nodes organise into leader-owned clusters that probe their knowledge
//! frontier *in parallel* — a cluster of size `s` explores `s` external
//! pointers per super-round — and merge along every discovered
//! cluster-to-cluster edge, always toward the larger leader identifier.
//! Parallel outreach makes large clusters grow multiplicatively faster,
//! collapsing the cluster count doubly exponentially once the spreading
//! phase (`O(log D)` super-rounds) has made the frontier dense:
//! `O(log D + log log n)` super-rounds in total, with every node sending
//! `O(1)` messages per round. See `DESIGN.md` §3.2–§3.4 for the protocol
//! narrative and the explicit reconstruction assumptions.
//!
//! # Example
//!
//! ```
//! use rd_core::algorithms::hm::{HmConfig, HmDiscovery};
//! use rd_core::{problem, DiscoveryAlgorithm};
//! use rd_graphs::Topology;
//! use rd_sim::Engine;
//!
//! let g = Topology::KOut { k: 3 }.generate(128, 1);
//! let alg = HmDiscovery::new(HmConfig::default());
//! let nodes = alg.make_nodes(&problem::initial_knowledge(&g));
//! let mut engine = Engine::new(nodes, 1);
//! let outcome = engine.run_until(10_000, problem::everyone_knows_everyone);
//! assert!(outcome.completed);
//! ```

mod config;
mod messages;
mod node;

pub use config::{HmConfig, MergeRule};
pub use messages::HmMsg;
pub use node::{HmNode, PHASES};

use crate::algorithms::DiscoveryAlgorithm;
use crate::problem::InitialKnowledge;
use rd_sim::NodeId;

/// Factory for the cluster-merge discovery algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HmDiscovery {
    cfg: HmConfig,
}

impl HmDiscovery {
    /// Creates the algorithm with the given configuration (use
    /// `HmConfig::default()` for the paper configuration).
    pub fn new(cfg: HmConfig) -> Self {
        HmDiscovery { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HmConfig {
        &self.cfg
    }
}

impl DiscoveryAlgorithm for HmDiscovery {
    type NodeState = HmNode;

    fn name(&self) -> String {
        self.cfg.name()
    }

    fn make_nodes(&self, initial: &InitialKnowledge) -> Vec<HmNode> {
        initial
            .rows()
            .enumerate()
            .map(|(u, ids)| HmNode::new(NodeId::new(u as u32), ids, self.cfg))
            .collect()
    }
}

/// Number of distinct clusters in a node population: the quantity whose
/// doubly-exponential collapse figure F3 plots. Counted as the number of
/// distinct *current leader pointers* held by live nodes.
pub fn cluster_count(nodes: &[HmNode]) -> usize {
    let mut leaders: Vec<NodeId> = nodes.iter().map(|n| n.leader()).collect();
    leaders.sort_unstable();
    leaders.dedup();
    leaders.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::KnowledgeView;
    use crate::problem;
    use rd_graphs::Topology;
    use rd_sim::{Engine, FaultPlan};

    fn run_hm(topo: Topology, n: usize, seed: u64) -> (rd_sim::RunOutcome, u64, u64) {
        run_hm_cfg(topo, n, seed, HmConfig::default())
    }

    fn run_hm_cfg(
        topo: Topology,
        n: usize,
        seed: u64,
        cfg: HmConfig,
    ) -> (rd_sim::RunOutcome, u64, u64) {
        let g = topo.generate(n, seed);
        let nodes = HmDiscovery::new(cfg).make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, seed);
        let outcome = engine.run_until(100_000, problem::everyone_knows_everyone);
        (
            outcome,
            engine.metrics().total_messages(),
            engine.metrics().total_pointers(),
        )
    }

    #[test]
    fn completes_on_every_survey_topology() {
        for topo in Topology::survey() {
            let (outcome, _, _) = run_hm(topo, 64, 5);
            assert!(outcome.completed, "{topo} did not complete");
        }
    }

    #[test]
    fn completes_on_random_overlay_quickly() {
        let (outcome, _, _) = run_hm(Topology::KOut { k: 3 }, 1024, 3);
        assert!(outcome.completed);
        // A handful of super-rounds (6 rounds each): log D + log log n
        // with small constants.
        assert!(outcome.rounds <= 12 * PHASES, "rounds = {}", outcome.rounds);
    }

    #[test]
    fn single_node_believes_done_immediately() {
        let (outcome, messages, _) = run_hm(Topology::Path, 1, 1);
        assert!(outcome.completed);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(messages, 0);
    }

    #[test]
    fn two_node_one_way_edge() {
        let (outcome, _, _) = run_hm(Topology::Path, 2, 1);
        assert!(outcome.completed);
    }

    #[test]
    fn messages_per_node_per_round_are_constant_ish() {
        let (outcome, messages, _) = run_hm(Topology::KOut { k: 3 }, 512, 7);
        assert!(outcome.completed);
        let per_node_per_round = messages as f64 / (512.0 * outcome.rounds as f64);
        assert!(
            per_node_per_round < 2.0,
            "per-node per-round messages = {per_node_per_round}"
        );
    }

    #[test]
    fn cluster_count_collapses_monotonically_to_one() {
        let g = Topology::KOut { k: 3 }.generate(256, 9);
        let nodes = HmDiscovery::default().make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, 9);
        let mut counts = vec![cluster_count(engine.nodes())];
        let outcome =
            engine.run_observed(100_000, problem::everyone_knows_everyone, |round, nodes| {
                if round % PHASES == 0 {
                    counts.push(cluster_count(nodes));
                }
            });
        assert!(outcome.completed);
        assert_eq!(counts[0], 256);
        // Knowledge can complete while the last Adopt messages are still
        // in flight; a couple more super-rounds settle every pointer.
        for _ in 0..2 * PHASES {
            engine.step();
        }
        assert_eq!(cluster_count(engine.nodes()), 1);
        assert!(
            counts.windows(2).filter(|w| w[1] > w[0]).count() <= 2,
            "cluster counts mostly non-increasing: {counts:?}"
        );
        assert!(*counts.last().unwrap() <= 4, "{counts:?}");
    }

    #[test]
    fn final_leader_is_global_max_and_quiescent() {
        let g = Topology::Cycle.generate(64, 2);
        let nodes = HmDiscovery::default().make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, 2);
        let outcome = engine.run_until(100_000, problem::everyone_knows_everyone);
        assert!(outcome.completed);
        // Merges always go toward larger ids, so the surviving leader is
        // the global maximum.
        let leaders: Vec<_> = engine.nodes().iter().filter(|n| n.is_leader()).collect();
        assert_eq!(leaders.len(), 1);
        assert_eq!(leaders[0].leader(), rd_sim::NodeId::new(63));
        assert_eq!(leaders[0].cluster_size(), 64);
    }

    #[test]
    fn local_termination_matches_global_completion() {
        let g = Topology::KOut { k: 3 }.generate(128, 4);
        let nodes = HmDiscovery::default().make_nodes(&problem::initial_knowledge(&g));
        let mut engine = Engine::new(nodes, 4);
        let outcome = engine.run_until(100_000, |nodes: &[HmNode]| {
            nodes.iter().all(|n| n.believes_done())
        });
        assert!(outcome.completed);
        assert!(problem::everyone_knows_everyone(engine.nodes()));
    }

    #[test]
    fn all_merge_rules_complete() {
        for rule in [
            MergeRule::MaxId,
            MergeRule::RandomAbove,
            MergeRule::MinAbove,
        ] {
            let cfg = HmConfig {
                merge_rule: rule,
                ..Default::default()
            };
            let (outcome, _, _) = run_hm_cfg(Topology::KOut { k: 3 }, 128, 6, cfg);
            assert!(outcome.completed, "{} did not complete", rule.name());
        }
    }

    #[test]
    fn serial_probing_completes_but_slower() {
        // The parallel-outreach advantage emerges once clusters are large
        // enough to have big frontiers; at n = 1024 it is consistent.
        let serial = HmConfig {
            parallel_probes: false,
            ..Default::default()
        };
        let (mut fast_total, mut slow_total) = (0u64, 0u64);
        for seed in [8u64, 9, 10] {
            let (fast, _, _) = run_hm(Topology::KOut { k: 3 }, 1024, seed);
            let (slow, _, _) = run_hm_cfg(Topology::KOut { k: 3 }, 1024, seed, serial);
            assert!(fast.completed && slow.completed);
            fast_total += fast.rounds;
            slow_total += slow.rounds;
        }
        assert!(
            slow_total > fast_total,
            "serial {slow_total} <= parallel {fast_total}"
        );
    }

    #[test]
    fn survives_message_drops() {
        let g = Topology::KOut { k: 3 }.generate(128, 11);
        let nodes = HmDiscovery::default().make_nodes(&problem::initial_knowledge(&g));
        let mut engine =
            Engine::new(nodes, 11).with_faults(FaultPlan::new().with_drop_probability(0.10));
        let outcome = engine.run_until(100_000, problem::everyone_knows_everyone);
        assert!(outcome.completed, "did not survive 10% drops");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_hm(Topology::ErdosRenyi { avg_degree: 4 }, 200, 13);
        let b = run_hm(Topology::ErdosRenyi { avg_degree: 4 }, 200, 13);
        assert_eq!(a, b);
    }

    #[test]
    fn survives_crash_of_the_emerging_leader() {
        use crate::runner::{run_algorithm, RunConfig};
        // Merges always flow toward the maximum id, so node n-1 is the
        // leader-to-be; kill it mid-consolidation. With the failure
        // detector, its cluster fails over and the survivors still reach
        // full completion.
        let n = 64;
        let faults = FaultPlan::new()
            .with_crash_at(n - 1, 14)
            .with_crash_detection_after(6);
        let report = run_algorithm(
            &HmDiscovery::default(),
            &RunConfig::new(Topology::KOut { k: 4 }, n, 3)
                .with_faults(faults)
                .with_max_rounds(100_000),
        );
        assert!(report.completed, "failover did not converge");
        assert!(report.sound);
    }

    #[test]
    fn survives_cascading_leader_crashes() {
        use crate::runner::{run_algorithm, RunConfig};
        // The top three ids die one after another while consolidation is
        // in flight.
        let n = 96;
        let faults = FaultPlan::new()
            .with_crash_at(n - 1, 12)
            .with_crash_at(n - 2, 24)
            .with_crash_at(n - 3, 36)
            .with_crash_detection_after(6);
        let report = run_algorithm(
            &HmDiscovery::default(),
            &RunConfig::new(Topology::KOut { k: 4 }, n, 7)
                .with_faults(faults)
                .with_max_rounds(100_000),
        );
        assert!(report.completed, "cascading failover did not converge");
        assert!(report.sound);
    }

    #[test]
    fn fail_over_preserves_all_knowledge_leads() {
        use crate::runner::{run_algorithm, RunConfig};
        // A mid-cluster crash on a sparse graph: if any frontier lead
        // were lost in the failover, some survivor would stay unknown.
        let n = 48;
        let faults = FaultPlan::new()
            .with_crash_at(n - 1, 20)
            .with_crash_detection_after(12);
        let report = run_algorithm(
            &HmDiscovery::default(),
            &RunConfig::new(Topology::Cycle, n, 2)
                .with_faults(faults)
                .with_max_rounds(100_000),
        );
        assert!(report.completed);
        assert!(report.sound);
    }

    #[test]
    fn path_costs_log_rounds_not_more() {
        // On the path the spreading phase dominates: O(log D) = O(log n)
        // super-rounds.
        let (outcome, _, _) = run_hm(Topology::Path, 256, 1);
        assert!(outcome.completed);
        assert!(outcome.rounds <= 40 * PHASES, "rounds = {}", outcome.rounds);
    }
}
