//! Counter / gauge / histogram registry.
//!
//! A flat, name-keyed metrics store: counters are monotone `u64`s,
//! gauges are last-write-wins `f64`s, histograms are
//! [`Histogram`](crate::hist::Histogram)s. Names follow the Prometheus
//! convention (`snake_case`, `_total` suffix on counters) so the text
//! exposition is a straight dump. `BTreeMap` keys keep every iteration
//! order — and therefore every exported artifact — deterministic.

use crate::hist::Histogram;
use std::collections::BTreeMap;

/// The run-wide metrics store fed by the [`Recorder`](crate::Recorder)
/// and dumped by every exporter.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name`, creating it at zero.
    pub fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into the histogram `name`, creating it empty.
    pub fn record(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Merges a pre-built histogram into the one stored under `name`
    /// (used when timings are aggregated outside the registry first).
    pub fn record_hist_merge(&mut self, name: &str, hist: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Current value of counter `name`, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of gauge `name`, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.add_counter("messages_total", 3);
        r.add_counter("messages_total", 4);
        r.set_gauge("pool_hit_rate", 0.5);
        r.set_gauge("pool_hit_rate", 0.75);
        assert_eq!(r.counter("messages_total"), Some(7));
        assert_eq!(r.gauge("pool_hit_rate"), Some(0.75));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = MetricsRegistry::new();
        r.add_counter("zeta_total", 1);
        r.add_counter("alpha_total", 1);
        r.record("z_hist", 1);
        r.record("a_hist", 2);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["alpha_total", "zeta_total"]);
        let hists: Vec<&str> = r.histograms().map(|(k, _)| k).collect();
        assert_eq!(hists, ["a_hist", "z_hist"]);
    }
}
