//! **F6** — the Ω(log D) information-propagation floor, demonstrated on
//! paths.
//!
//! On a directed path the diameter is `n − 1`, so *no* algorithm can
//! beat `Θ(log n)` rounds (DESIGN.md §1.1). This experiment shows every
//! algorithm — including the sub-logarithmic one — paying that floor,
//! which is the honest counterpart to the flat curves of F1.

use crate::profile::Profile;
use rd_analysis::experiment::{sweep, SweepSpec};
use rd_analysis::Table;
use rd_core::runner::AlgorithmKind;
use rd_graphs::Topology;

/// Runs all four algorithms on paths of growing length and reports mean
/// rounds per size (respecting the profile's per-algorithm caps).
pub fn run(profile: Profile) -> Table {
    let ns = profile.scaling_ns();
    let kinds = AlgorithmKind::contenders();
    let mut headers = vec!["algorithm".to_string()];
    headers.extend(ns.iter().map(|n| format!("n={n}")));
    let mut t = Table::new(headers);
    for &kind in &kinds {
        let capped: Vec<usize> = ns
            .iter()
            .copied()
            .filter(|&n| n <= profile.cap_for(kind))
            .collect();
        let cells = sweep(&SweepSpec {
            kinds: vec![kind],
            topology: Topology::Path,
            ns: capped.clone(),
            seeds: profile.seeds(),
            ..Default::default()
        });
        let mut row = vec![kind.name()];
        for &n in &ns {
            row.push(match cells.iter().find(|c| c.n == n) {
                Some(c) => format!("{:.0}", c.rounds.mean),
                None => "—".into(),
            });
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::runner::{run as run_one, RunConfig};

    #[test]
    fn every_algorithm_pays_at_least_log_n_on_the_path() {
        // Doubling the knowledge radius per round is the physical limit:
        // n = 128 needs at least log2(127) ≈ 7 rounds, for everyone.
        for kind in AlgorithmKind::contenders() {
            let report = run_one(kind, &RunConfig::new(Topology::Path, 128, 1));
            assert!(report.completed);
            assert!(
                report.rounds >= 7,
                "{} broke the information-propagation floor: {} rounds",
                report.algorithm,
                report.rounds
            );
        }
    }
}
