//! **T5** — fault tolerance: completion under independent message drops.
//!
//! The HM algorithm carries an explicit reliability layer (report
//! epochs/acks, join retries, invite retries, roster rebroadcast);
//! Name-Dropper is naturally self-healing because it never stops
//! re-transferring. This experiment measures the round-count price of
//! increasing drop rates for both.

use crate::profile::Profile;
use rd_analysis::experiment::{sweep, SweepSpec};
use rd_analysis::Table;
use rd_core::runner::AlgorithmKind;
use rd_graphs::Topology;
use rd_sim::{FaultPlan, RetryPolicy};

/// Drop probabilities measured.
pub fn drop_rates() -> Vec<f64> {
    vec![0.0, 0.01, 0.05, 0.10, 0.20]
}

/// Runs the drop sweep at the profile's survey size.
pub fn run(profile: Profile) -> Table {
    let n = profile.survey_n().min(2048);
    let kinds = [
        AlgorithmKind::Hm(Default::default()),
        AlgorithmKind::NameDropper,
    ];
    let mut headers = vec!["drop rate".to_string()];
    for kind in &kinds {
        headers.push(format!("{} rounds", kind.name()));
        headers.push(format!("{} completion", kind.name()));
    }
    let mut t = Table::new(headers);
    for p in drop_rates() {
        let mut row = vec![format!("{:.0}%", p * 100.0)];
        for &kind in &kinds {
            let cells = sweep(&SweepSpec {
                kinds: vec![kind],
                topology: Topology::KOut { k: 3 },
                ns: vec![n],
                seeds: profile.seeds(),
                faults: FaultPlan::new().with_drop_probability(p),
                max_rounds: 100_000,
                ..Default::default()
            });
            row.push(cells[0].rounds.mean_pm_std(1));
            row.push(format!("{}%", (cells[0].completion_rate * 100.0) as u32));
        }
        t.row(row);
    }
    t
}

/// **T5b** — churn: a 5% crash wave, then recoveries, a mid-run
/// partition, and coin drops stacked one on top of the other, with
/// reliable delivery and the convergence watchdog armed. Reports the
/// per-cause drop counters and the retransmission bill next to the
/// completion mix.
pub fn run_churn(profile: Profile) -> Table {
    let n = profile.survey_n().min(1024);
    let crash_wave = || {
        let mut f = FaultPlan::new().with_crash_detection_after(5);
        for node in (10..n).step_by(20) {
            f = f.with_crash_at(node, 5);
        }
        f
    };
    let with_recoveries = |mut f: FaultPlan| {
        for (i, node) in (10..n).step_by(20).enumerate() {
            if i % 2 == 0 {
                f = f.with_recovery_at(node, 15);
            }
        }
        f
    };
    let with_partition = |f: FaultPlan| {
        let cut = n / 2;
        f.with_partition(
            [(0..cut).collect::<Vec<_>>(), (cut..n).collect::<Vec<_>>()],
            12,
            18,
        )
    };
    let scenarios: Vec<(&str, FaultPlan, Option<RetryPolicy>)> = vec![
        ("5% crashes", crash_wave(), None),
        (
            "+ half recover",
            with_recoveries(crash_wave()),
            Some(RetryPolicy::default()),
        ),
        (
            "+ partition 12..18",
            with_partition(with_recoveries(crash_wave())),
            Some(RetryPolicy::default()),
        ),
        (
            "+ 1% drops",
            with_partition(with_recoveries(crash_wave())).with_drop_probability(0.01),
            Some(RetryPolicy::default()),
        ),
    ];
    let mut t = Table::new(
        [
            "churn",
            "rounds",
            "complete",
            "degraded",
            "stalled",
            "dropped",
            "retransmitted",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (label, faults, reliable) in scenarios {
        let cells = sweep(&SweepSpec {
            kinds: vec![AlgorithmKind::Hm(Default::default())],
            topology: Topology::KOut { k: 3 },
            ns: vec![n],
            seeds: profile.seeds(),
            faults,
            reliable,
            stall_window: Some(300),
            max_rounds: 100_000,
            ..Default::default()
        });
        let c = &cells[0];
        t.row(vec![
            label.to_string(),
            c.rounds.mean_pm_std(1),
            format!("{}%", (c.completion_rate * 100.0) as u32),
            format!("{}%", (c.degraded_rate * 100.0) as u32),
            format!("{}%", (c.stall_rate * 100.0) as u32),
            format!("{:.0}", c.dropped.mean),
            format!("{:.0}", c.retransmissions.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_start_fault_free() {
        let rates = drop_rates();
        assert_eq!(rates[0], 0.0);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
        assert!(*rates.last().unwrap() < 1.0);
    }
}
