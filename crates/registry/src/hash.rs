//! A small, self-contained 64-bit mixing hash.
//!
//! Rendezvous hashing needs a fast keyed hash whose outputs behave like
//! independent uniform draws per `(key, node)` pair. This is a
//! SplitMix64-style finalizer over an FNV-style combine — deterministic
//! across platforms (the placement decision must be identical on every
//! machine), with avalanche quality validated by the tests.

/// Combines and scrambles two 64-bit inputs into one well-mixed output.
pub fn mix2(a: u64, b: u64) -> u64 {
    finalize(a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
}

/// The 64-bit finalizer (xorshift-multiply avalanche).
pub fn finalize(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(mix2(1, 2), mix2(1, 2));
        assert_ne!(mix2(1, 2), mix2(2, 1), "order matters");
    }

    #[test]
    fn no_collisions_on_dense_inputs() {
        let outs: HashSet<u64> = (0..10_000).map(|i| mix2(i, 7)).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn single_bit_flips_avalanche() {
        // Flipping one input bit should flip roughly half the output
        // bits on average.
        let mut total = 0u32;
        let samples = 256;
        for i in 0..samples {
            let base = mix2(i, 99);
            let flipped = mix2(i ^ 1, 99);
            total += (base ^ flipped).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((24.0..40.0).contains(&avg), "weak avalanche: {avg}");
    }

    #[test]
    fn finalize_is_bijective_spotcheck() {
        // A bijection cannot collide; spot-check a dense range.
        let outs: HashSet<u64> = (0..10_000).map(finalize).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
