//! End-to-end SLO-monitor coverage through the public runner: a
//! genuinely wedged run (permanent partition, so the completion
//! predicate is unreachable) must fire the `stall` rule exactly once,
//! land it as a schema-v4 `alert` record in the archive AND in the
//! shared [`AlertLog`] side-channel — while the deterministic
//! `RunReport` stays byte-for-byte what a blind run produces.

use resource_discovery::core::runner::{AlertLog, AlertRule, LiveSpec};
use resource_discovery::obs::archive;
use resource_discovery::prelude::*;

const N: usize = 32;
const SEED: u64 = 7;
const STALL_WINDOW: u64 = 20;

/// A run that can never complete: two permanently partitioned halves.
/// Each half converges internally within a few rounds of HM doubling,
/// after which global knowledge is frozen until the budget runs out.
fn wedged_config() -> RunConfig {
    let faults = FaultPlan::new().with_partition([0..N / 2, N / 2..N], 0, 100);
    RunConfig::new(Topology::KOut { k: 3 }, N, SEED)
        .with_max_rounds(100)
        .with_faults(faults)
}

/// A live spec armed with only the stall rule, tightened far below the
/// 10_000-round default so the wedge above trips it within the budget.
fn stall_spec(log: &AlertLog) -> LiveSpec {
    LiveSpec::new()
        .with_rules(vec![AlertRule::Stall {
            window: STALL_WINDOW,
        }])
        .with_log(log.clone())
}

#[test]
fn a_wedged_run_fires_the_stall_alert_into_archive_and_log() {
    let dir = std::env::temp_dir().join(format!("rd-live-stall-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wedged.jsonl");

    let log = AlertLog::new();
    let spec = ObsSpec::new()
        .with_archive(&path)
        .with_live(stall_spec(&log));
    let report = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &wedged_config().with_obs(spec),
    );
    assert!(
        !report.completed,
        "a permanently partitioned run must not complete"
    );

    // The side-channel: exactly one latched firing, despite dozens of
    // stagnant rounds after it.
    let alerts = log.snapshot();
    assert_eq!(alerts.len(), 1, "stall rule must latch after first fire");
    assert_eq!(alerts[0].rule, "stall");
    assert!(
        alerts[0].round >= STALL_WINDOW && alerts[0].round < 100,
        "fired at round {} — expected inside the run, after the window",
        alerts[0].round
    );
    assert!((alerts[0].threshold - STALL_WINDOW as f64).abs() < 1e-9);

    // The archive: a valid schema-v4 document whose alert section
    // agrees with the side-channel.
    let text = std::fs::read_to_string(&path).unwrap();
    let problems = archive::validate(&text);
    assert!(problems.is_empty(), "invalid archive: {problems:?}");
    let parsed = archive::parse(&text).unwrap();
    assert_eq!(parsed.header.schema, 4, "alerts must bump the schema to 4");
    assert_eq!(parsed.alerts.len(), 1);
    assert_eq!(parsed.alerts[0].rule, "stall");
    assert_eq!(parsed.alerts[0].round, alerts[0].round);
    assert_eq!(parsed.counters["alerts_total"], 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_firing_alert_never_touches_the_run_report() {
    let kind = AlgorithmKind::Hm(HmConfig::default());
    for engine in [EngineKind::Sequential, EngineKind::Sharded { workers: 2 }] {
        let blind = run(kind, &wedged_config().with_engine(engine));
        let log = AlertLog::new();
        let observed = run(
            kind,
            &wedged_config()
                .with_engine(engine)
                .with_obs(ObsSpec::new().with_live(stall_spec(&log))),
        );
        assert!(
            !log.snapshot().is_empty(),
            "the stall rule must actually fire for this check to mean anything"
        );
        assert_eq!(observed, blind, "a fired alert perturbed the RunReport");
    }
}
