//! Benchmark harness: regenerates every table and figure of the
//! evaluation defined in `DESIGN.md` §4.
//!
//! Each experiment lives in its own module under [`experiments`] and
//! returns renderable [`Table`](rd_analysis::Table)s plus the raw data,
//! so the `figures` binary, the integration tests, and EXPERIMENTS.md
//! all draw from the same code path:
//!
//! ```text
//! cargo run --release -p rd-bench --bin figures           # everything, full profile
//! cargo run --release -p rd-bench --bin figures -- --quick t1 f1
//! ```
//!
//! Criterion wall-clock micro-benchmarks of the simulator and protocols
//! live in `benches/`.

pub mod experiments;
pub mod profile;
pub mod workload;

pub use profile::Profile;
