//! The [`ObsSink`] trait and the built-in exporters.
//!
//! A sink sees telemetry as it is recorded (`on_span`, `on_round`) and
//! once at the end with the fully assembled [`ObsReport`]
//! (`on_finish`). The three built-ins — JSONL archive, Chrome
//! trace-event JSON, Prometheus text exposition — do all their writing
//! in `on_finish`, because the most useful views (distributions,
//! knowledge deltas, worker imbalance) only exist once the run is
//! complete. Streaming consumers (a live dashboard, a test harness
//! counting events) implement the per-event hooks.

use crate::json::{escape, fmt_f64};
use crate::recorder::{ObsReport, RoundObs};
use crate::span::SpanEvent;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Where exported telemetry goes. All hooks have empty defaults, so a
/// sink implements only what it consumes.
pub trait ObsSink: Send {
    /// A span was recorded (called in recording order).
    fn on_span(&mut self, _span: &SpanEvent) {}
    /// A round closed out.
    fn on_round(&mut self, _round: &RoundObs) {}
    /// The run ended; `report` is final. Exporters write here.
    fn on_finish(&mut self, _report: &ObsReport) -> io::Result<()> {
        Ok(())
    }
}

/// Writes the schema-versioned JSONL run archive (one file per run,
/// one record per line — see `crate::archive` for the schema).
pub struct JsonlArchiveSink {
    path: PathBuf,
}

impl JsonlArchiveSink {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonlArchiveSink { path: path.into() }
    }
}

impl ObsSink for JsonlArchiveSink {
    fn on_finish(&mut self, report: &ObsReport) -> io::Result<()> {
        write_atomic(&self.path, &crate::archive::render(report))
    }
}

/// Writes Chrome trace-event JSON (the "JSON object format"), loadable
/// in Perfetto / `chrome://tracing` for a flame-style view of a run:
/// one track per worker, one slice per span.
pub struct ChromeTraceSink {
    path: PathBuf,
}

impl ChromeTraceSink {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        ChromeTraceSink { path: path.into() }
    }
}

impl ObsSink for ChromeTraceSink {
    fn on_finish(&mut self, report: &ObsReport) -> io::Result<()> {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        // Metadata events first, so Perfetto labels the process and
        // every shard lane instead of showing bare pid/tid numbers.
        // Everything here derives from run identity and the span set,
        // so the trace stays deterministic for a deterministic run.
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":{}}}}}",
                escape(&format!(
                    "{} on {} (n={})",
                    report.meta.algorithm, report.meta.engine, report.meta.n
                ))
            ),
        );
        let mut workers: Vec<u32> = report.spans.iter().map(|s| s.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        let lane = if report.meta.workers > 1 {
            "shard"
        } else {
            "worker"
        };
        for w in workers {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"args\":{{\"name\":\"{lane} {w}\"}}}}"
                ),
            );
        }
        for s in &report.spans {
            // Trace-event timestamps are microseconds; keep sub-µs
            // resolution as a fraction.
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":{},\"cat\":\"engine\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"round\":{}}}}}",
                    escape(s.phase.name()),
                    fmt_f64(s.start_ns as f64 / 1e3),
                    fmt_f64(s.dur_ns as f64 / 1e3),
                    s.worker,
                    s.round
                ),
            );
        }
        let _ = write!(
            out,
            "\n],\"otherData\":{{\"algorithm\":{},\"engine\":{},\"n\":{},\"seed\":{},\"span_overflow\":{}}}}}\n",
            escape(&report.meta.algorithm),
            escape(&report.meta.engine),
            report.meta.n,
            escape(&report.meta.seed.to_string()),
            report.span_overflow
        );
        write_atomic(&self.path, &out)
    }
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(event);
}

/// Writes Prometheus text exposition (format 0.0.4): every registry
/// counter and gauge as an `rd_`-prefixed metric with run-identity
/// labels, histograms as summaries with `quantile` labels.
pub struct PrometheusSink {
    path: PathBuf,
}

impl PrometheusSink {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        PrometheusSink { path: path.into() }
    }
}

impl ObsSink for PrometheusSink {
    fn on_finish(&mut self, report: &ObsReport) -> io::Result<()> {
        let m = &report.meta;
        let labels = format!(
            "algorithm=\"{}\",topology=\"{}\",engine=\"{}\",n=\"{}\",seed=\"{}\"",
            m.algorithm, m.topology, m.engine, m.n, m.seed
        );
        let mut out = String::new();
        for (name, v) in report.registry.counters() {
            let _ = writeln!(out, "# TYPE rd_{name} counter");
            let _ = writeln!(out, "rd_{name}{{{labels}}} {v}");
        }
        for (name, v) in report.registry.gauges() {
            let _ = writeln!(out, "# TYPE rd_{name} gauge");
            let _ = writeln!(out, "rd_{name}{{{labels}}} {}", fmt_f64(v));
        }
        for (name, h) in report.registry.histograms() {
            let _ = writeln!(out, "# TYPE rd_{name} summary");
            for q in [0.5, 0.9, 0.99, 1.0] {
                let _ = writeln!(
                    out,
                    "rd_{name}{{{labels},quantile=\"{q}\"}} {}",
                    h.quantile(q)
                );
            }
            let _ = writeln!(out, "rd_{name}_sum{{{labels}}} {}", fmt_f64(h.sum() as f64));
            let _ = writeln!(out, "rd_{name}_count{{{labels}}} {}", h.count());
        }
        write_atomic(&self.path, &out)
    }
}

/// Writes via a temp file + rename so a crashing run never leaves a
/// half-written artifact where a complete one is expected.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RunMeta, RunOutcomeObs};
    use crate::span::Phase;
    use std::time::Instant;

    fn sample_report() -> ObsReport {
        let mut rec = Recorder::new(RunMeta {
            algorithm: "hm".into(),
            topology: "k-out-3".into(),
            n: 64,
            seed: 7,
            engine: "sharded:2".into(),
            workers: 2,
            latency_model: None,
        });
        rec.begin_round();
        rec.span_from(Phase::OnRound, 1, 0, Instant::now());
        rec.span_from(Phase::OnRound, 1, 1, Instant::now());
        rec.end_round(RoundObs {
            round: 1,
            wall_ns: 0,
            messages: 12,
            pointers: 30,
            dropped_coin: 0,
            dropped_crash: 0,
            dropped_partition: 0,
            dropped_link: 0,
            dropped_suppression: 0,
            retransmissions: 0,
            knowledge_delta: None,
        });
        rec.finish(
            RunOutcomeObs {
                verdict: "complete-sound".into(),
                completed: true,
                sound: true,
                rounds: 1,
                messages: 12,
                pointers: 30,
                trace_events: 0,
                trace_overflow: 0,
                last_progress: None,
            },
            &[3, 1],
            &[2, 2],
            &[],
            &[("delay", 4, 2)],
        )
        .unwrap()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_slice_per_span() {
        let report = sample_report();
        let dir = std::env::temp_dir().join("rd_obs_sink_test_chrome");
        let path = dir.join("trace.json");
        ChromeTraceSink::new(&path).on_finish(&report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = crate::json::Json::parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let slices = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        assert_eq!(slices, report.spans.len());
        // Perfetto labelling: one process_name metadata event, and one
        // thread_name per lane (meta.workers > 1 ⇒ lanes are shards).
        let meta_name = |event: &crate::json::Json| -> Option<String> {
            event.get("args")?.get("name")?.as_str().map(str::to_string)
        };
        let process = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .expect("process_name metadata event");
        assert_eq!(meta_name(process).unwrap(), "hm on sharded:2 (n=64)");
        let threads: Vec<String> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .map(|e| meta_name(e).unwrap())
            .collect();
        assert_eq!(threads, vec!["shard 0", "shard 1"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prometheus_exposition_has_counters_and_quantiles() {
        let report = sample_report();
        let dir = std::env::temp_dir().join("rd_obs_sink_test_prom");
        let path = dir.join("run.prom");
        PrometheusSink::new(&path).on_finish(&report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# TYPE rd_messages_total counter"));
        assert!(text.contains("rd_messages_total{algorithm=\"hm\""));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("rd_pool_delay_hit_rate"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
