//! Message envelopes, pointer payloads, and cost accounting.

use crate::id::NodeId;
use std::fmt;

/// Number of header bits charged to every message regardless of payload
/// (source, destination, and a small type tag) when converting pointer
/// counts to bit complexity.
pub const HEADER_BITS: u64 = 96;

/// Cost model every protocol message must implement.
///
/// The resource-discovery literature measures communication in
/// *pointers*: the number of node identifiers a message carries. Bit
/// complexity follows as `pointers × ⌈log₂ n⌉ + O(1)` and is derived by
/// the metrics layer, so protocols only report pointer counts.
pub trait MessageCost {
    /// Number of node identifiers carried by this message.
    fn pointers(&self) -> usize;

    /// Visits every node identifier this message *teaches* its
    /// receiver — the payload ids whose arrival can grow the
    /// receiver's knowledge. Causal tracing uses this to record
    /// knowledge-provenance edges; the default visits nothing, which
    /// keeps messages without learnable content (acks, probes) out of
    /// the provenance DAG. Implementations should visit the same ids
    /// [`pointers`](Self::pointers) counts.
    fn visit_ids(&self, _visit: &mut dyn FnMut(NodeId)) {}
}

/// A routed message: payload plus source and destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, payload: M) -> Self {
        Envelope { src, dst, payload }
    }
}

/// Identifiers an inline list holds before spilling to the heap.
const INLINE_POINTERS: usize = 4;

/// A list of node identifiers with a small-payload inline
/// representation.
///
/// Resource-discovery messages overwhelmingly carry *short* pointer
/// lists — a single learned identifier, a two-element frontier — yet a
/// `Vec<NodeId>` payload heap-allocates for every one of them, so the
/// routing hot path pays an allocator round-trip per message.
/// `PointerList` stores up to four identifiers inline in the envelope
/// and only spills to a heap `Vec` beyond that, which removes the
/// per-message allocation for bounded-gossip traffic entirely.
///
/// The type behaves like a read-mostly `Vec<NodeId>`: build it with
/// [`push`](Self::push), [`collect`](Iterator::collect), or a
/// `From<Vec<NodeId>>` / `From<&[NodeId]>` conversion, and read it as a
/// slice (it derefs to `[NodeId]`) or by value iteration.
#[derive(Clone)]
pub struct PointerList(Repr);

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        ids: [NodeId; INLINE_POINTERS],
    },
    Heap(Vec<NodeId>),
}

impl PointerList {
    /// An empty list (inline, no allocation).
    pub fn new() -> Self {
        PointerList(Repr::Inline {
            len: 0,
            ids: [NodeId::new(0); INLINE_POINTERS],
        })
    }

    /// Appends an identifier, spilling to the heap past the inline
    /// capacity.
    pub fn push(&mut self, id: NodeId) {
        match &mut self.0 {
            Repr::Inline { len, ids } => {
                if (*len as usize) < INLINE_POINTERS {
                    ids[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(INLINE_POINTERS * 2);
                    spilled.extend_from_slice(&ids[..]);
                    spilled.push(id);
                    self.0 = Repr::Heap(spilled);
                }
            }
            Repr::Heap(v) => v.push(id),
        }
    }

    /// Number of identifiers.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// `true` when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The identifiers as a slice.
    pub fn as_slice(&self) -> &[NodeId] {
        match &self.0 {
            Repr::Inline { len, ids } => &ids[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Iterates the identifiers by value.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.as_slice().iter().copied()
    }
}

impl Default for PointerList {
    fn default() -> Self {
        PointerList::new()
    }
}

impl std::ops::Deref for PointerList {
    type Target = [NodeId];
    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl fmt::Debug for PointerList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for PointerList {
    fn eq(&self, other: &Self) -> bool {
        // Representation (inline vs heap) is invisible to equality.
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PointerList {}

impl From<&[NodeId]> for PointerList {
    fn from(ids: &[NodeId]) -> Self {
        if ids.len() <= INLINE_POINTERS {
            let mut inline = [NodeId::new(0); INLINE_POINTERS];
            inline[..ids.len()].copy_from_slice(ids);
            PointerList(Repr::Inline {
                len: ids.len() as u8,
                ids: inline,
            })
        } else {
            PointerList(Repr::Heap(ids.to_vec()))
        }
    }
}

impl From<Vec<NodeId>> for PointerList {
    fn from(ids: Vec<NodeId>) -> Self {
        if ids.len() <= INLINE_POINTERS {
            PointerList::from(ids.as_slice())
        } else {
            PointerList(Repr::Heap(ids))
        }
    }
}

impl FromIterator<NodeId> for PointerList {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut list = PointerList::new();
        for id in iter {
            list.push(id);
        }
        list
    }
}

impl Extend<NodeId> for PointerList {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.push(id);
        }
    }
}

/// By-value iterator over a [`PointerList`].
pub struct PointerListIter {
    list: PointerList,
    pos: usize,
}

impl Iterator for PointerListIter {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.list.as_slice().get(self.pos).copied()?;
        self.pos += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.list.len() - self.pos;
        (left, Some(left))
    }
}

impl IntoIterator for PointerList {
    type Item = NodeId;
    type IntoIter = PointerListIter;
    fn into_iter(self) -> PointerListIter {
        PointerListIter { list: self, pos: 0 }
    }
}

impl<'a> IntoIterator for &'a PointerList {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

impl MessageCost for PointerList {
    fn pointers(&self) -> usize {
        self.len()
    }

    fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
        for &id in self.as_slice() {
            visit(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ids(Vec<NodeId>);
    impl MessageCost for Ids {
        fn pointers(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn envelope_carries_endpoints() {
        let e = Envelope::new(NodeId::new(1), NodeId::new(2), Ids(vec![NodeId::new(3)]));
        assert_eq!(e.src, NodeId::new(1));
        assert_eq!(e.dst, NodeId::new(2));
        assert_eq!(e.payload.pointers(), 1);
    }

    #[test]
    fn pointer_count_tracks_payload() {
        let ids: Vec<NodeId> = (0..7).map(NodeId::new).collect();
        assert_eq!(Ids(ids).pointers(), 7);
        assert_eq!(Ids(vec![]).pointers(), 0);
    }

    fn nid(xs: impl IntoIterator<Item = u32>) -> Vec<NodeId> {
        xs.into_iter().map(NodeId::new).collect()
    }

    #[test]
    fn pointer_list_stays_inline_up_to_four() {
        let mut list = PointerList::new();
        assert!(list.is_empty());
        for i in 0..4 {
            list.push(NodeId::new(i));
        }
        assert!(matches!(list.0, Repr::Inline { len: 4, .. }));
        assert_eq!(list.as_slice(), nid(0..4).as_slice());
        list.push(NodeId::new(4));
        assert!(matches!(list.0, Repr::Heap(_)));
        assert_eq!(list.as_slice(), nid(0..5).as_slice());
        assert_eq!(list.pointers(), 5);
    }

    #[test]
    fn pointer_list_conversions_pick_the_representation() {
        let short = PointerList::from(nid(0..3));
        assert!(matches!(short.0, Repr::Inline { len: 3, .. }));
        let long = PointerList::from(nid(0..9));
        assert!(matches!(long.0, Repr::Heap(_)));
        let collected: PointerList = (0..3).map(NodeId::new).collect();
        assert_eq!(collected, short);
    }

    #[test]
    fn pointer_list_equality_ignores_representation() {
        let inline = PointerList::from(nid(0..3));
        let heap = PointerList(Repr::Heap(nid(0..3)));
        assert_eq!(inline, heap);
        assert_ne!(inline, PointerList::from(nid(0..4)));
    }

    #[test]
    fn pointer_list_iterates_by_value_and_by_ref() {
        let list = PointerList::from(nid(0..6));
        let by_ref: Vec<NodeId> = (&list).into_iter().collect();
        assert_eq!(by_ref, nid(0..6));
        let by_val: Vec<NodeId> = list.into_iter().collect();
        assert_eq!(by_val, nid(0..6));
    }

    #[test]
    fn pointer_list_debug_prints_ids() {
        let list = PointerList::from(nid([2]));
        assert_eq!(format!("{list:?}"), "[NodeId(2)]");
    }
}
