//! Causal message-level provenance: the knowledge-provenance DAG.
//!
//! When causal tracing is enabled, the routing phase offers one
//! [`ProvEdge`] per identifier carried by every delivered message. The
//! [`CausalTrace`] keeps, for each `(id, node)` pair, the *first
//! delivery* — which message, from whom, sent and delivered in which
//! rounds — that could have taught `node` about `id`. Edges chain into
//! a DAG: the sender of the edge for `(id, y)` learned `id` through its
//! own edge `(id, src)`, and walking those links backwards yields the
//! causal history of any single fact (see
//! [`critical_path`](crate::critical_path)).
//!
//! Like the [`Recorder`](crate::Recorder), the trace lives strictly
//! outside the determinism boundary: it is write-only from the engine's
//! perspective, offers arrive in the canonical `(sender, send
//! sequence)` order on every engine and worker count, and sampling is a
//! pure function of `(seed, src, round, seq)` — so the retained DAG is
//! byte-identical across engines and cannot perturb a run.

use std::collections::BTreeMap;

/// One provenance edge: a delivered message from `src` that offered
/// identifier `id` to `node`.
///
/// Rounds are 1-based, matching the archive's `round` records: a
/// message sent during round `sent` is processed by its receiver during
/// round `round = sent + 1 + extra_delay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvEdge {
    /// The identifier being learned.
    pub id: u32,
    /// The node learning it (the receiver).
    pub node: u32,
    /// The sender that already knew `id`.
    pub src: u32,
    /// 1-based round the message was sent in.
    pub sent: u64,
    /// 1-based round the message was delivered (processed) in.
    pub round: u64,
    /// The sender's send-sequence number within `sent`.
    pub seq: u64,
}

impl ProvEdge {
    /// Delivery-order key: earlier delivery wins; among same-round
    /// deliveries the earlier send, then the canonical `(src, seq)`
    /// routing order, breaks ties deterministically.
    fn rank(&self) -> (u64, u64, u32, u64) {
        (self.round, self.sent, self.src, self.seq)
    }
}

/// The per-run knowledge-provenance DAG, bounded in memory.
///
/// `capacity` bounds the number of retained `(id, node)` pairs; offers
/// for *new* pairs past the cap are counted in `overflow` and dropped
/// (offers that improve an already-retained pair always land).
/// `sample_ppm` is the per-message sampling rate in parts per million;
/// the sampling decision itself is made by the engine (it owns the run
/// seed), the trace only records how many messages were skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalTrace {
    capacity: usize,
    sample_ppm: u32,
    /// `(id, node) → (src, sent, round, seq)` — the best edge seen.
    edges: BTreeMap<(u32, u32), ProvEdge>,
    /// `(id, node)` pairs known at round 0 (initial knowledge): these
    /// are DAG roots and never get an edge. Sorted for binary search.
    known: Vec<(u32, u32)>,
    /// Identifier offers inspected (post-sampling).
    candidates: u64,
    /// Messages skipped by the deterministic sampler.
    sampled_out: u64,
    /// Offers for new pairs dropped at capacity.
    overflow: u64,
}

impl CausalTrace {
    /// A trace retaining at most `capacity` `(id, node)` pairs, with
    /// messages sampled at `sample_ppm` parts per million (values
    /// `>= 1_000_000` trace every message).
    pub fn new(capacity: usize, sample_ppm: u32) -> Self {
        CausalTrace {
            capacity,
            sample_ppm,
            edges: BTreeMap::new(),
            known: Vec::new(),
            candidates: 0,
            sampled_out: 0,
            overflow: 0,
        }
    }

    /// Declares the initially-known `(id, node)` pairs: the DAG roots.
    /// Offers for these pairs are ignored — nothing *caused* them.
    pub fn seed_known<I: IntoIterator<Item = (u32, u32)>>(&mut self, pairs: I) {
        self.known.extend(pairs);
        self.known.sort_unstable();
        self.known.dedup();
    }

    /// Whether `(id, node)` was declared initially known.
    pub fn is_root(&self, id: u32, node: u32) -> bool {
        self.known.binary_search(&(id, node)).is_ok()
    }

    /// Offers one edge. Self-knowledge and declared roots are skipped;
    /// otherwise the edge is kept iff it is the first for its pair or
    /// beats the retained one in delivery order.
    pub fn offer(&mut self, edge: ProvEdge) {
        self.candidates += 1;
        if edge.id == edge.node || self.is_root(edge.id, edge.node) {
            return;
        }
        let key = (edge.id, edge.node);
        match self.edges.get_mut(&key) {
            Some(best) => {
                if edge.rank() < best.rank() {
                    *best = edge;
                }
            }
            None => {
                if self.edges.len() < self.capacity {
                    self.edges.insert(key, edge);
                } else {
                    self.overflow += 1;
                }
            }
        }
    }

    /// Counts a message the sampler skipped (its id offers were never
    /// inspected).
    #[inline]
    pub fn note_sampled_out(&mut self) {
        self.sampled_out += 1;
    }

    /// Counts `extra` skipped messages in one shot — hot routing loops
    /// tally locally and flush once per batch.
    #[inline]
    pub fn note_sampled_out_by(&mut self, extra: u64) {
        self.sampled_out += extra;
    }

    /// The configured pair capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-message sampling rate in parts per million.
    #[inline]
    pub fn sample_ppm(&self) -> u32 {
        self.sample_ppm
    }

    /// The retained edges in `(id, node)` order.
    pub fn edges(&self) -> impl Iterator<Item = &ProvEdge> {
        self.edges.values()
    }

    /// The retained edge for `(id, node)`, if any.
    pub fn edge(&self, id: u32, node: u32) -> Option<&ProvEdge> {
        self.edges.get(&(id, node))
    }

    /// Number of retained `(id, node)` pairs.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were retained.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Identifier offers inspected (post-sampling).
    pub fn candidates(&self) -> u64 {
        self.candidates
    }

    /// Messages the deterministic sampler skipped.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Offers for new pairs dropped because the capacity was reached —
    /// when nonzero the DAG is a prefix of the full provenance story.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Folds counters and edges of a per-worker fragment in. Fragments
    /// must be folded in canonical shard order for determinism; edge
    /// conflicts resolve by delivery order exactly as in [`offer`].
    ///
    /// [`offer`]: Self::offer
    pub fn fold(&mut self, edges: &[ProvEdge], sampled_out: u64) {
        self.sampled_out += sampled_out;
        for &edge in edges {
            self.offer(edge);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(id: u32, node: u32, src: u32, sent: u64, round: u64, seq: u64) -> ProvEdge {
        ProvEdge {
            id,
            node,
            src,
            sent,
            round,
            seq,
        }
    }

    #[test]
    fn first_delivery_wins_regardless_of_offer_order() {
        let mut t = CausalTrace::new(16, 1_000_000);
        // Sent earlier but delayed: delivered round 6.
        t.offer(edge(1, 2, 3, 2, 6, 0));
        // Sent later, delivered earlier: round 5 must win.
        t.offer(edge(1, 2, 4, 4, 5, 1));
        assert_eq!(t.edge(1, 2).unwrap().src, 4);
        // A still-later delivery does not displace it.
        t.offer(edge(1, 2, 5, 5, 6, 0));
        assert_eq!(t.edge(1, 2).unwrap().src, 4);
        assert_eq!(t.candidates(), 3);
    }

    #[test]
    fn ties_break_toward_canonical_routing_order() {
        let mut t = CausalTrace::new(16, 1_000_000);
        t.offer(edge(1, 2, 7, 3, 4, 5));
        t.offer(edge(1, 2, 7, 3, 4, 2));
        t.offer(edge(1, 2, 6, 3, 4, 9));
        assert_eq!(t.edge(1, 2).unwrap().src, 6);
        assert_eq!(t.edge(1, 2).unwrap().seq, 9);
    }

    #[test]
    fn roots_and_self_knowledge_are_never_recorded() {
        let mut t = CausalTrace::new(16, 1_000_000);
        t.seed_known([(3, 1)]);
        t.offer(edge(3, 1, 0, 1, 2, 0));
        t.offer(edge(5, 5, 0, 1, 2, 0));
        assert!(t.is_empty());
        assert!(t.is_root(3, 1));
        assert_eq!(t.candidates(), 2);
    }

    #[test]
    fn capacity_bounds_pairs_and_counts_overflow() {
        let mut t = CausalTrace::new(2, 1_000_000);
        t.offer(edge(1, 2, 0, 1, 2, 0));
        t.offer(edge(1, 3, 0, 1, 2, 1));
        t.offer(edge(1, 4, 0, 1, 2, 2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.overflow(), 1);
        // Improving a retained pair still lands at capacity.
        t.offer(edge(1, 3, 9, 1, 1, 0));
        assert_eq!(t.edge(1, 3).unwrap().src, 9);
    }

    #[test]
    fn fold_merges_fragments_in_offer_order() {
        let mut t = CausalTrace::new(16, 500_000);
        t.fold(&[edge(1, 2, 3, 1, 2, 0)], 4);
        t.fold(&[edge(1, 2, 4, 1, 2, 1)], 1);
        assert_eq!(t.edge(1, 2).unwrap().src, 3);
        assert_eq!(t.sampled_out(), 5);
        assert_eq!(t.sample_ppm(), 500_000);
    }
}
