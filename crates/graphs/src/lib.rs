#![warn(missing_docs)]

//! Directed-graph substrate for the resource-discovery reproduction.
//!
//! This crate provides everything the simulator and the discovery
//! algorithms need to know about *knowledge graphs*:
//!
//! * [`DiGraph`] — a compact adjacency-list directed graph,
//! * [`CsrAdjacency`] — the frozen compressed-sparse-row form of a
//!   finished graph (one flat edge array + offsets) for cache-friendly
//!   read-side traversal,
//! * [`UnionFind`] — disjoint sets with union-by-rank and path compression,
//! * connectivity analysis ([`connectivity`]) — weak components, Tarjan
//!   strongly connected components, reachability,
//! * structural metrics ([`metrics`]) — BFS distances, eccentricity,
//!   diameter of the undirected closure, degree statistics,
//! * a topology zoo ([`topology`]) — the fourteen initial knowledge-graph
//!   families used throughout the evaluation (paths, trees, random k-out
//!   graphs, clique chains, hypercubes, …), all guaranteed weakly
//!   connected.
//!
//! # Example
//!
//! ```
//! use rd_graphs::{topology::Topology, connectivity};
//!
//! let g = Topology::KOut { k: 3 }.generate(128, 42);
//! assert_eq!(g.node_count(), 128);
//! assert!(connectivity::is_weakly_connected(&g));
//! ```

pub mod connectivity;
pub mod csr;
pub mod digraph;
pub mod metrics;
pub mod topology;
pub mod unionfind;

pub use csr::CsrAdjacency;
pub use digraph::DiGraph;
pub use topology::Topology;
pub use unionfind::UnionFind;
