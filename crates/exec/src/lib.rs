#![warn(missing_docs)]

//! A sharded, multi-threaded execution engine for large discovery runs.
//!
//! [`ShardedEngine`] drives the same [`Node`] programs as the sequential
//! [`rd_sim::Engine`], at the same [`RoundEngine`] interface, but steps
//! nodes on several worker threads per round. The population is sharded
//! *statically by `NodeId`* into contiguous blocks — one block of nodes
//! and the matching block of mailboxes per worker — so workers need no
//! locks: each owns its slice of nodes and inboxes for the duration of
//! the stepping phase.
//!
//! # Determinism
//!
//! The engine is **bit-identical** to the sequential engine: same seed,
//! same nodes, same faults ⇒ same `RunOutcome`, same `RunMetrics`, same
//! trace, round for round. Three properties make this work:
//!
//! 1. *Node steps are order-independent.* Every node draws from a
//!    private per-`(seed, node, round)` random stream
//!    ([`rd_sim::rng::node_round_rng`]) and sees only its own inbox, so
//!    stepping nodes concurrently cannot change what any node computes.
//! 2. *Outboxes merge in canonical `(sender, sequence)` order.* Each
//!    worker stages its shard's sends in node-index order (each node's
//!    sends in send order). Because shards are contiguous index blocks,
//!    concatenating the per-shard batches in shard order reproduces
//!    exactly the global sender-index order the sequential engine
//!    produces.
//! 3. *Routing stays serial.* The fault and delay random streams are
//!    consumed one message at a time, in the merged order, by the shared
//!    [`EngineCore`] — the single accounting layer both engines use, so
//!    metrics and fault semantics cannot drift between them.
//!
//! Phase 1 and 3 (round bookkeeping and routing) are inherited from
//! [`EngineCore`]; only phase 2 — the embarrassingly parallel part,
//! which dominates wall-clock for compute-heavy protocols at large `n`
//! — is fanned out across `crossbeam` scoped threads.
//!
//! # Example
//!
//! ```
//! use rd_exec::ShardedEngine;
//! use rd_sim::{Engine, Envelope, MessageCost, Node, NodeId, RoundContext, RoundEngine};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl MessageCost for Ping {
//!     fn pointers(&self) -> usize { 0 }
//! }
//!
//! #[derive(Clone)]
//! struct Player { peer: NodeId, hits: u32 }
//! impl Node for Player {
//!     type Msg = Ping;
//!     fn on_round(
//!         &mut self,
//!         inbox: Vec<Envelope<Ping>>,
//!         ctx: &mut RoundContext<'_, Ping>,
//!     ) {
//!         if ctx.round() == 0 && ctx.id() == NodeId::new(0) {
//!             ctx.send(self.peer, Ping);
//!         }
//!         for _ in inbox {
//!             self.hits += 1;
//!             if self.hits < 3 { ctx.send(self.peer, Ping); }
//!         }
//!     }
//! }
//!
//! let players = vec![
//!     Player { peer: NodeId::new(1), hits: 0 },
//!     Player { peer: NodeId::new(0), hits: 0 },
//! ];
//! let done = |nodes: &[Player]| nodes.iter().all(|p| p.hits >= 2);
//!
//! let mut sharded = ShardedEngine::new(players.clone(), 42, 2);
//! let mut sequential = Engine::new(players, 42);
//! assert_eq!(
//!     sharded.run_until(20, done),
//!     sequential.run_until(20, done),
//! );
//! assert_eq!(sharded.metrics(), sequential.metrics());
//! ```

use rd_sim::engine_core::{step_node, take_capped, EngineCore};
use rd_sim::{Envelope, FaultPlan, Node, RoundEngine, RunMetrics, RunOutcome, Trace};

/// A round engine that steps nodes on `workers` threads.
///
/// Construction and the builder knobs mirror [`rd_sim::Engine`]; see the
/// [crate docs](crate) for the sharding scheme and the determinism
/// argument.
pub struct ShardedEngine<N: Node> {
    nodes: Vec<N>,
    core: EngineCore<N::Msg>,
    workers: usize,
}

impl<N> ShardedEngine<N>
where
    N: Node + Send,
    N::Msg: Send,
{
    /// Creates an engine over `nodes` with the given worker-thread
    /// count, where node `i` has identifier `NodeId::new(i)`. `seed`
    /// determines all protocol and fault randomness, exactly as in the
    /// sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(nodes: Vec<N>, seed: u64, workers: usize) -> Self {
        assert!(workers > 0, "a sharded engine needs at least one worker");
        let core = EngineCore::new(nodes.len(), seed);
        ShardedEngine {
            nodes,
            core,
            workers,
        }
    }

    /// Installs a fault plan (drops, crashes).
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes a node index that does not exist.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.core.set_faults(faults);
        self
    }

    /// Enables message tracing with the given event capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.core.enable_trace(capacity);
        self
    }

    /// Caps deliveries at `cap` messages per node per round; excess
    /// messages queue (in arrival order) for later rounds.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_receive_cap(mut self, cap: usize) -> Self {
        self.core.set_receive_cap(cap);
        self
    }

    /// Makes delivery asynchronous: every message independently takes
    /// `1 + U{0..=max_extra}` rounds to arrive instead of exactly one.
    pub fn with_max_extra_delay(mut self, max_extra: u64) -> Self {
        self.core.set_max_extra_delay(max_extra);
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The configured worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Read access to the node programs.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.core.round()
    }

    /// The complexity record.
    pub fn metrics(&self) -> &RunMetrics {
        self.core.metrics()
    }

    /// The message trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace()
    }

    /// Executes one synchronous round; see the [crate docs](crate) for
    /// the three phases and which of them run in parallel.
    pub fn step(&mut self) {
        let round = self.core.begin_round();
        let suspects = self.core.suspects().to_vec();
        let n = self.nodes.len();
        // Contiguous blocks of ⌈n / workers⌉ nodes; the final shard may
        // be short. A worker without nodes is never spawned.
        let workers = self.workers.min(n).max(1);
        let shard_len = n.div_ceil(workers).max(1);
        let state = self.core.step_state();

        let staged: Vec<Envelope<N::Msg>> = if workers == 1 {
            // One worker degenerates to the sequential loop; skip the
            // thread machinery (and its overhead) entirely.
            let mut staged = Vec::new();
            for (i, node) in self.nodes.iter_mut().enumerate() {
                let inbox = take_capped(&mut state.inboxes[i], state.receive_cap);
                if state.faults.is_crashed_at(i, round) {
                    continue; // crashed nodes neither run nor receive
                }
                step_node(node, i, round, state.seed, &suspects, inbox, &mut staged);
            }
            staged
        } else {
            let faults = state.faults;
            let seed = state.seed;
            let cap = state.receive_cap;
            let suspects = &suspects[..];
            let node_shards = self.nodes.chunks_mut(shard_len);
            let inbox_shards = state.inboxes.chunks_mut(shard_len);
            let batches = crossbeam::thread::scope(move |scope| {
                let handles: Vec<_> = node_shards
                    .zip(inbox_shards)
                    .enumerate()
                    .map(|(shard, (nodes, inboxes))| {
                        scope.spawn(move |_| {
                            let mut staged = Vec::new();
                            for (offset, node) in nodes.iter_mut().enumerate() {
                                let i = shard * shard_len + offset;
                                let inbox = take_capped(&mut inboxes[offset], cap);
                                if faults.is_crashed_at(i, round) {
                                    continue;
                                }
                                step_node(node, i, round, seed, suspects, inbox, &mut staged);
                            }
                            staged
                        })
                    })
                    .collect();
                // Join in shard order: concatenating the per-shard
                // batches yields global (sender, sequence) order. A
                // panicking node program panics the engine, exactly as
                // in the sequential engine.
                let mut staged = Vec::new();
                for handle in handles {
                    match handle.join() {
                        Ok(mut batch) => staged.append(&mut batch),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                staged
            });
            match batches {
                Ok(staged) => staged,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        };

        for env in staged {
            self.core.route(env);
        }
        self.core.finish_round();
    }

    /// Runs until `done(nodes)` holds (checked before the first round and
    /// after every round) or `max_rounds` have executed.
    pub fn run_until(&mut self, max_rounds: u64, done: impl FnMut(&[N]) -> bool) -> RunOutcome {
        RoundEngine::run_until(self, max_rounds, done)
    }

    /// Like [`run_until`](Self::run_until), additionally invoking
    /// `observe(round, nodes)` after every round.
    pub fn run_observed(
        &mut self,
        max_rounds: u64,
        done: impl FnMut(&[N]) -> bool,
        observe: impl FnMut(u64, &[N]),
    ) -> RunOutcome {
        RoundEngine::run_observed(self, max_rounds, done, observe)
    }
}

impl<N> RoundEngine<N> for ShardedEngine<N>
where
    N: Node + Send,
    N::Msg: Send,
{
    fn step(&mut self) {
        ShardedEngine::step(self)
    }

    fn nodes(&self) -> &[N] {
        ShardedEngine::nodes(self)
    }

    fn round(&self) -> u64 {
        ShardedEngine::round(self)
    }

    fn metrics(&self) -> &RunMetrics {
        ShardedEngine::metrics(self)
    }

    fn trace(&self) -> Option<&Trace> {
        ShardedEngine::trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_sim::{Engine, MessageCost, NodeId, RoundContext};

    /// Gossip probe exercising every determinism-sensitive surface:
    /// randomness, fan-out, and inbox contents.
    #[derive(Clone, Debug, PartialEq)]
    struct Gossiper {
        n: u32,
        heard: Vec<NodeId>,
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Rumor(Vec<NodeId>);
    impl MessageCost for Rumor {
        fn pointers(&self) -> usize {
            self.0.len()
        }
    }

    impl Node for Gossiper {
        type Msg = Rumor;
        fn on_round(&mut self, inbox: Vec<Envelope<Rumor>>, ctx: &mut RoundContext<'_, Rumor>) {
            use rand::Rng;
            for env in inbox {
                self.heard.push(env.src);
                self.heard.extend(env.payload.0);
            }
            // Two random contacts per round, avoiding self-sends.
            for _ in 0..2 {
                let dst = NodeId::new(ctx.rng().random_range(0..self.n));
                if dst != ctx.id() {
                    ctx.send(dst, Rumor(self.heard.clone()));
                }
            }
            self.heard.truncate(8);
        }
    }

    fn gossipers(n: u32) -> Vec<Gossiper> {
        (0..n)
            .map(|_| Gossiper {
                n,
                heard: Vec::new(),
            })
            .collect()
    }

    fn states(nodes: &[Gossiper]) -> Vec<Gossiper> {
        nodes.to_vec()
    }

    /// Runs both engines for `rounds` rounds under the same plan and
    /// asserts identical nodes, metrics, and traces.
    fn assert_engines_agree(
        n: u32,
        seed: u64,
        workers: usize,
        rounds: u64,
        configure: impl Fn(Engine<Gossiper>) -> Engine<Gossiper>,
        configure_sharded: impl Fn(ShardedEngine<Gossiper>) -> ShardedEngine<Gossiper>,
    ) {
        let mut seq = configure(Engine::new(gossipers(n), seed).with_trace(1 << 14));
        let mut par =
            configure_sharded(ShardedEngine::new(gossipers(n), seed, workers).with_trace(1 << 14));
        for _ in 0..rounds {
            seq.step();
            par.step();
        }
        assert_eq!(states(seq.nodes()), states(par.nodes()));
        assert_eq!(seq.metrics(), par.metrics());
        assert_eq!(seq.trace().unwrap().events(), par.trace().unwrap().events());
    }

    #[test]
    fn matches_sequential_engine_exactly() {
        for workers in [1, 2, 3, 8] {
            assert_engines_agree(23, 7, workers, 12, |e| e, |e| e);
        }
    }

    #[test]
    fn matches_under_faults_and_detection() {
        let plan = || {
            FaultPlan::new()
                .with_crashes([3])
                .with_crash_at(11, 4)
                .with_drop_probability(0.2)
                .with_crash_detection_after(2)
        };
        assert_engines_agree(
            19,
            5,
            4,
            15,
            |e| e.with_faults(plan()),
            |e| e.with_faults(plan()),
        );
    }

    #[test]
    fn matches_under_receive_cap_and_delay() {
        assert_engines_agree(
            17,
            9,
            3,
            15,
            |e| e.with_receive_cap(2).with_max_extra_delay(3),
            |e| e.with_receive_cap(2).with_max_extra_delay(3),
        );
    }

    #[test]
    fn more_workers_than_nodes_is_fine() {
        assert_engines_agree(3, 1, 16, 6, |e| e, |e| e);
    }

    #[test]
    fn run_until_agrees_on_outcome() {
        let done = |nodes: &[Gossiper]| nodes.iter().all(|g| !g.heard.is_empty());
        let mut seq = Engine::new(gossipers(32), 2);
        let mut par = ShardedEngine::new(gossipers(32), 2, 4);
        assert_eq!(seq.run_until(64, done), par.run_until(64, done));
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ShardedEngine::new(gossipers(4), 1, 0);
    }

    #[test]
    fn empty_population_steps_harmlessly() {
        let mut engine = ShardedEngine::new(Vec::<Gossiper>::new(), 1, 4);
        engine.step();
        assert_eq!(engine.round(), 1);
    }
}
