//! Random Pointer Jump (Harchol-Balter, Leighton, Lewin — PODC '99):
//! the third classic baseline of the original paper, kept because it is
//! instructively *broken* on weakly connected inputs.
//!
//! Every round, every machine asks one uniformly random machine it
//! knows for that machine's complete knowledge (a pull). Crucially — and
//! faithfully to HLL '99 — the contacted machine does **not** learn the
//! requester's identifier: information only ever flows *along* knowledge
//! edges. HLL '99 observe that this breaks the algorithm on weakly
//! connected graphs (a machine nobody points at is never discovered),
//! and fixing exactly this — by having the receiver record the sender,
//! the "reverse edge" — is the innovation that turns Random Pointer Jump
//! into Name-Dropper. The tests below reproduce the failure on the
//! directed path and the out-star, and the fast completion on strongly
//! connected inputs.

use crate::algorithms::{DiscoveryAlgorithm, KnowledgeView};
use crate::knowledge::KnowledgeSet;
use crate::problem::InitialKnowledge;
use rd_sim::{Envelope, MessageCost, Node, NodeId, RoundContext};

/// Factory for the random-pointer-jump baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomPointerJump;

/// Random-pointer-jump messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpjMsg {
    /// "Send me everything you know" (anonymously, per HLL '99: the
    /// receiver must not exploit the transport-level sender).
    Pull,
    /// The puller's reward: the target's complete knowledge.
    Transfer {
        /// Every identifier the sender knows.
        ids: Vec<NodeId>,
    },
}

impl MessageCost for RpjMsg {
    fn pointers(&self) -> usize {
        match self {
            RpjMsg::Pull => 0,
            RpjMsg::Transfer { ids } => ids.len(),
        }
    }

    fn visit_ids(&self, visit: &mut dyn FnMut(NodeId)) {
        match self {
            RpjMsg::Pull => {}
            RpjMsg::Transfer { ids } => {
                for &id in ids {
                    visit(id);
                }
            }
        }
    }
}

/// Per-node state of random pointer jump.
#[derive(Debug, Clone)]
pub struct RandomPointerJumpNode {
    knowledge: KnowledgeSet,
}

impl Node for RandomPointerJumpNode {
    type Msg = RpjMsg;

    fn on_round(&mut self, inbox: &mut Vec<Envelope<RpjMsg>>, ctx: &mut RoundContext<'_, RpjMsg>) {
        let me = ctx.id();
        let mut pullers: Vec<NodeId> = Vec::new();
        for env in inbox.drain(..) {
            match env.payload {
                // Deliberately *not* learning env.src here: that reverse
                // edge is Name-Dropper's fix, not this algorithm.
                RpjMsg::Pull => pullers.push(env.src),
                RpjMsg::Transfer { ids } => {
                    self.knowledge.extend(ids);
                }
            }
        }
        pullers.sort_unstable();
        pullers.dedup();
        for p in pullers {
            if p != me {
                let ids: Vec<NodeId> = self.knowledge.iter().filter(|&v| v != p).collect();
                ctx.send(p, RpjMsg::Transfer { ids });
            }
        }
        if let Some(target) = {
            let rng = ctx.rng();
            self.knowledge.sample_other(rng, me)
        } {
            ctx.send(target, RpjMsg::Pull);
        }
    }
}

impl KnowledgeView for RandomPointerJumpNode {
    fn knows(&self, id: NodeId) -> bool {
        self.knowledge.contains(id)
    }
    fn knows_count(&self) -> usize {
        self.knowledge.len()
    }
    fn known_ids(&self) -> Vec<NodeId> {
        self.knowledge.to_vec()
    }
    fn resident_bytes(&self) -> u64 {
        self.knowledge.resident_bytes() as u64
    }
}

impl DiscoveryAlgorithm for RandomPointerJump {
    type NodeState = RandomPointerJumpNode;

    fn name(&self) -> String {
        "random-pointer-jump".into()
    }

    fn make_nodes(&self, initial: &InitialKnowledge) -> Vec<RandomPointerJumpNode> {
        initial
            .rows()
            .enumerate()
            .map(|(u, ids)| {
                let mut knowledge = KnowledgeSet::new(NodeId::new(u as u32));
                knowledge.extend(ids.iter().copied());
                RandomPointerJumpNode { knowledge }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_algorithm, Completion, RunConfig};
    use rd_graphs::Topology;

    fn run_rpj(topo: Topology, n: usize, seed: u64, budget: u64) -> crate::RunReport {
        run_algorithm(
            &RandomPointerJump,
            &RunConfig::new(topo, n, seed).with_max_rounds(budget),
        )
    }

    #[test]
    fn completes_on_strongly_connected_graphs() {
        for topo in [Topology::Cycle, Topology::Hypercube, Topology::Complete] {
            let report = run_rpj(topo, 64, 3, 10_000);
            assert!(report.completed, "{topo} incomplete");
            assert!(report.sound);
        }
    }

    #[test]
    fn fails_forever_on_the_directed_path() {
        // Nobody points at node 0, and pulls never reveal the puller:
        // node 0's identifier is undiscoverable. This is HLL '99's
        // motivation for the reverse edge.
        let report = run_rpj(Topology::Path, 32, 5, 3_000);
        assert!(!report.completed);
        // Not even the weaker completion notion is reachable.
        let weaker = run_algorithm(
            &RandomPointerJump,
            &RunConfig::new(Topology::Path, 32, 5)
                .with_completion(Completion::LeaderKnowsAll)
                .with_max_rounds(3_000),
        );
        assert!(!weaker.completed);
    }

    #[test]
    fn fails_forever_on_the_out_star() {
        // Leaves know nobody and are known only by the silent centre.
        let report = run_rpj(Topology::StarOut, 16, 1, 2_000);
        assert!(!report.completed);
    }

    #[test]
    fn name_dropper_fixes_exactly_this() {
        use crate::algorithms::NameDropper;
        let nd = run_algorithm(&NameDropper, &RunConfig::new(Topology::Path, 32, 5));
        assert!(nd.completed, "the reverse edge makes the difference");
    }

    #[test]
    fn bounded_fan_in_per_round() {
        let report = run_rpj(Topology::Cycle, 32, 1, 10_000);
        // Pulls: n per round; transfers: at most one per pull.
        assert!(report.messages <= 2 * 32 * report.rounds);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            run_rpj(Topology::Hypercube, 64, 9, 10_000),
            run_rpj(Topology::Hypercube, 64, 9, 10_000)
        );
    }
}
