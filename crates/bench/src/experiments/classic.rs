//! **T7** — the complete historical suite: all three PODC '99
//! algorithms (Flooding, Swamping, Random Pointer Jump, plus their
//! successor Name-Dropper), the deterministic pointer-doubling line, and
//! the paper's algorithm, side by side on the same instances.

use crate::profile::Profile;
use rd_analysis::experiment::{sweep, SweepSpec};
use rd_analysis::Table;
use rd_core::runner::AlgorithmKind;
use rd_graphs::Topology;

/// Runs the suite on the random overlay and the directed path (the
/// friendly and the adversarial instance) at a size every algorithm can
/// afford.
pub fn run(profile: Profile) -> Table {
    let n = match profile {
        Profile::Quick => 128,
        Profile::Full => 512,
    };
    let topologies = [Topology::KOut { k: 3 }, Topology::Path];
    let mut headers = vec!["algorithm".to_string()];
    for topo in &topologies {
        headers.push(format!("{} rounds", topo.name()));
        headers.push(format!("{} messages", topo.name()));
        headers.push(format!("{} pointers", topo.name()));
    }
    let mut t = Table::new(headers);
    for kind in AlgorithmKind::classic_suite() {
        let mut row = vec![kind.name()];
        for &topology in &topologies {
            let cells = sweep(&SweepSpec {
                kinds: vec![kind],
                topology,
                ns: vec![n],
                seeds: profile.seeds(),
                // Random pointer jump legitimately never completes on
                // the path (see its module docs); bound its futile runs.
                max_rounds: 5_000,
                ..Default::default()
            });
            let c = &cells[0];
            if c.completion_rate == 1.0 {
                row.push(format!("{:.0}", c.rounds.mean));
            } else {
                row.push(format!(
                    "{:.0} ({}% done)",
                    c.rounds.mean,
                    (c.completion_rate * 100.0) as u32
                ));
            }
            row.push(format!("{:.0}", c.messages.mean));
            row.push(format!("{:.1e}", c.pointers.mean));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_six_algorithms() {
        assert_eq!(AlgorithmKind::classic_suite().len(), 6);
    }
}
