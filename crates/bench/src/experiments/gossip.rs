//! **T6** — direct-addressing gossip versus random push–pull: the
//! PODC '14 message-complexity separation.

use crate::profile::Profile;
use rd_analysis::{summarize, Table};
use rd_core::gossip::{run_gossip, GossipStrategy};

/// Runs both strategies across sizes; cells hold `rounds / messages`.
pub fn run(profile: Profile) -> Table {
    let ns = profile.scaling_ns();
    let strategies = [GossipStrategy::AddressedSplit, GossipStrategy::PushPull];
    let mut headers = vec!["strategy".to_string()];
    headers.extend(ns.iter().map(|n| format!("n={n}")));
    let mut t = Table::new(headers);
    for strategy in strategies {
        let mut row = vec![strategy.name().to_string()];
        for &n in &ns {
            let mut rounds = Vec::new();
            let mut messages = Vec::new();
            for seed in profile.seeds() {
                let r = run_gossip(strategy, n, seed);
                assert!(r.completed, "{} n={n} seed={seed}", strategy.name());
                rounds.push(r.rounds as f64);
                messages.push(r.messages as f64);
            }
            row.push(format!(
                "{:.0} rds / {:.0} msgs",
                summarize(&rounds).mean,
                summarize(&messages).mean
            ));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_beats_push_pull_on_messages() {
        let n = 512;
        let split = run_gossip(GossipStrategy::AddressedSplit, n, 1);
        let pp = run_gossip(GossipStrategy::PushPull, n, 1);
        assert!(split.messages * 3 < pp.messages);
    }
}
