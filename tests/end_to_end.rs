//! Cross-crate integration tests: topology generation → simulation →
//! discovery → verification, through the public API only.

use resource_discovery::prelude::*;

#[test]
fn all_algorithms_agree_on_the_final_state() {
    // Different algorithms, same instance: every one must converge to
    // the identical (complete) knowledge state.
    let config = RunConfig::new(Topology::ErdosRenyi { avg_degree: 4 }, 200, 11);
    let reports: Vec<RunReport> = AlgorithmKind::contenders()
        .into_iter()
        .map(|kind| run(kind, &config))
        .collect();
    for report in &reports {
        assert!(report.completed, "{} incomplete", report.algorithm);
        assert!(report.sound, "{} unsound", report.algorithm);
        assert_eq!(report.n, 200);
    }
    // They differ wildly in cost, though — that is the whole point.
    let pointers: Vec<u64> = reports.iter().map(|r| r.pointers).collect();
    assert!(pointers.iter().max() > pointers.iter().min());
}

#[test]
fn hm_dominates_baselines_on_pointer_complexity() {
    let config = RunConfig::new(Topology::KOut { k: 3 }, 512, 3);
    let hm = run(AlgorithmKind::Hm(HmConfig::default()), &config);
    for kind in [
        AlgorithmKind::Flooding,
        AlgorithmKind::NameDropper,
        AlgorithmKind::PointerDoubling,
    ] {
        let baseline = run(kind, &config);
        assert!(
            hm.pointers * 3 < baseline.pointers,
            "{}: hm {} vs baseline {}",
            baseline.algorithm,
            hm.pointers,
            baseline.pointers
        );
    }
}

#[test]
fn hm_round_count_is_flat_while_name_dropper_grows() {
    let rounds = |kind, n| run(kind, &RunConfig::new(Topology::KOut { k: 3 }, n, 5)).rounds as f64;
    let hm_small = rounds(AlgorithmKind::Hm(HmConfig::default()), 128);
    let hm_large = rounds(AlgorithmKind::Hm(HmConfig::default()), 2048);
    let nd_small = rounds(AlgorithmKind::NameDropper, 128);
    let nd_large = rounds(AlgorithmKind::NameDropper, 2048);
    // 16x the machines: HM grows by at most two super-rounds, while
    // Name-Dropper's growth is clearly visible.
    assert!(hm_large <= hm_small + 12.0, "hm {hm_small} -> {hm_large}");
    assert!(nd_large > nd_small, "nd {nd_small} -> {nd_large}");
}

#[test]
fn every_topology_is_discoverable_end_to_end() {
    for topology in Topology::survey() {
        let report = run(
            AlgorithmKind::Hm(HmConfig::default()),
            &RunConfig::new(topology, 100, 7),
        );
        assert!(report.completed, "{topology} incomplete");
        assert!(report.sound, "{topology} unsound");
    }
}

#[test]
fn reports_compose_with_the_analysis_toolkit() {
    // The headline analysis path: sweep -> summarize -> fit.
    use resource_discovery::analysis::experiment::{sweep, SweepSpec};
    use resource_discovery::analysis::fit::best_fit;

    let cells = sweep(&SweepSpec {
        kinds: vec![AlgorithmKind::PointerDoubling],
        topology: Topology::KOut { k: 3 },
        ns: vec![64, 128, 256, 512, 1024],
        seeds: 0..3,
        ..Default::default()
    });
    let ns: Vec<f64> = cells.iter().map(|c| c.n as f64).collect();
    let ys: Vec<f64> = cells.iter().map(|c| c.rounds.mean).collect();
    let fits = best_fit(&ns, &ys);
    assert!(!fits.is_empty());
    assert!(fits[0].r2 >= fits.last().unwrap().r2, "ranking broken");
}

#[test]
fn leader_completion_upgrade_costs_little() {
    // EveryoneKnowsEveryone is one roster broadcast after LeaderKnowsAll.
    let base = RunConfig::new(Topology::KOut { k: 3 }, 256, 9);
    let leader = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &base.clone().with_completion(Completion::LeaderKnowsAll),
    );
    let everyone = run(AlgorithmKind::Hm(HmConfig::default()), &base);
    assert!(leader.completed && everyone.completed);
    assert!(everyone.rounds >= leader.rounds);
    assert!(
        everyone.rounds <= leader.rounds + 12,
        "upgrade cost too high: {} -> {}",
        leader.rounds,
        everyone.rounds
    );
}

#[test]
fn gossip_composes_with_discovery_membership() {
    // After discovery the membership is complete, so gossip's complete-
    // knowledge assumption holds; the optimal broadcast costs n - 1.
    let n = 300;
    let discovery = run(
        AlgorithmKind::Hm(HmConfig::default()),
        &RunConfig::new(Topology::RandomTree, n, 13),
    );
    assert!(discovery.completed);
    let broadcast = run_gossip(GossipStrategy::AddressedSplit, n, 13);
    assert!(broadcast.completed);
    assert_eq!(broadcast.messages, (n - 1) as u64);
}
