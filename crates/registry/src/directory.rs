//! The directory: membership + placement, with change diffs.

use crate::placement;
use rd_sim::NodeId;

/// A resource directory over a discovered membership.
///
/// Construction sorts and deduplicates the membership so that two
/// machines building a `Directory` from the same discovered *set* (in
/// any order) agree on every lookup.
///
/// # Example
///
/// ```
/// use rd_registry::Directory;
/// use rd_sim::NodeId;
///
/// let dir = Directory::new((0..5).map(NodeId::new));
/// assert_eq!(dir.len(), 5);
/// let moved = dir.without(NodeId::new(2)).moved_keys(&dir, 0..100);
/// // Only keys owned by the removed machine move.
/// assert!(moved.iter().all(|&k| dir.owner(k) == NodeId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    members: Vec<NodeId>,
}

impl Directory {
    /// Builds a directory from a membership (deduplicated, any order).
    ///
    /// # Panics
    ///
    /// Panics on an empty membership.
    pub fn new(members: impl IntoIterator<Item = NodeId>) -> Self {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "a directory needs at least one member");
        Directory { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// A directory is never empty (construction forbids it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The membership, sorted.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The machine responsible for `key`.
    pub fn owner(&self, key: u64) -> NodeId {
        placement::owner(key, &self.members)
    }

    /// The `r` machines holding `key`'s replicas, primary first.
    pub fn replicas(&self, key: u64, r: usize) -> Vec<NodeId> {
        placement::replicas(key, &self.members, r)
    }

    /// This directory minus one machine (e.g. after a crash report).
    ///
    /// # Panics
    ///
    /// Panics if `member` is the only member.
    pub fn without(&self, member: NodeId) -> Directory {
        Directory::new(self.members.iter().copied().filter(|&m| m != member))
    }

    /// This directory plus one machine (e.g. after a join).
    pub fn with(&self, member: NodeId) -> Directory {
        Directory::new(self.members.iter().copied().chain([member]))
    }

    /// The keys in `keys` whose owner differs between `other` and
    /// `self` — the migration set of a membership change.
    pub fn moved_keys(&self, other: &Directory, keys: impl IntoIterator<Item = u64>) -> Vec<u64> {
        keys.into_iter()
            .filter(|&k| self.owner(k) != other.owner(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(n: u32) -> Directory {
        Directory::new((0..n).map(NodeId::new))
    }

    #[test]
    fn construction_dedups_and_sorts() {
        let d = Directory::new([3, 1, 3, 2].map(NodeId::new));
        assert_eq!(d.len(), 3);
        assert_eq!(d.members(), &[1, 2, 3].map(NodeId::new));
    }

    #[test]
    fn order_independent_lookups() {
        let a = Directory::new([5, 1, 9].map(NodeId::new));
        let b = Directory::new([9, 5, 1].map(NodeId::new));
        for key in 0..100 {
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn removal_diff_is_exactly_the_victims_keys() {
        let full = dir(10);
        let victim = NodeId::new(7);
        let reduced = full.without(victim);
        let keys = 0..1000u64;
        let moved = reduced.moved_keys(&full, keys.clone());
        let owned: Vec<u64> = keys.filter(|&k| full.owner(k) == victim).collect();
        assert_eq!(moved, owned);
        assert!(!owned.is_empty(), "victim owned nothing; test is vacuous");
    }

    #[test]
    fn addition_diff_lands_on_the_newcomer() {
        let base = dir(9);
        let grown = base.with(NodeId::new(9));
        for k in grown.moved_keys(&base, 0..1000) {
            assert_eq!(grown.owner(k), NodeId::new(9));
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn sole_member_cannot_be_removed() {
        let _ = dir(1).without(NodeId::new(0));
    }

    #[test]
    fn replica_sets_shrink_gracefully() {
        let d = dir(4);
        assert_eq!(d.replicas(11, 3).len(), 3);
        assert_eq!(d.replicas(11, 9).len(), 4);
    }
}
